//! The cross-batch pipelined training driver: depth-D casting lookahead
//! over a streaming [`BatchSource`].
//!
//! [`Trainer::step`] submits batch N's indices at the top of step N, so
//! casting can only overlap batch N's *own* forward pass — at small
//! batches the exposed wait dominates and the pipeline's hidden fraction
//! sits far from the Fig. 9b ideal. The paper's runtime (Section IV-B)
//! instead keeps the casting unit busy with *future* mini-batches.
//! [`TrainLoop`] is that runtime's host-side embodiment: it begins up to
//! `depth` steps ahead of the one it is completing, so batch N+1..N+D's
//! casting jobs run on the pipeline worker while batch N trains.
//!
//! Correctness is structural, not probabilistic: [`Trainer::begin_step`]
//! touches no model state (casting is a pure function of the index
//! arrays, which exist before forward starts), and completions run
//! strictly in submission order — so **any depth produces bit-identical
//! weights and losses to the serial `step` loop** (property-tested in
//! `tests/pipelined_training.rs` across both backward modes and all five
//! optimizers).
//!
//! The lookahead depth itself can be *closed-loop*: a
//! [`DepthController`] under [`DepthPolicy::Adaptive`] reads each
//! completed step's [`StepReport::exposed_cast_wait`] and hill-climbs
//! the depth between configured bounds — additive increase while
//! casting latency stays exposed, multiplicative decrease once it has
//! been hidden for long enough (the AIMD shape DeepRecSys uses for
//! SLA-driven batch sizing, applied to the paper's Fig. 9b metric).
//! Because depth only decides *when* casting jobs are submitted, the
//! adaptation is observation-only: any depth trajectory trains
//! bit-identically.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::checkpoint::{read_train_checkpoint, CheckpointError, CheckpointStore};
use crate::trainer::{InFlightStep, PhaseTimings, StepReport, Trainer};
use tcast_core::PipelineStats;
use tcast_datasets::{BatchSource, CtrBatch};
use tcast_embedding::EmbeddingError;

/// Errors from a [`TrainLoop`] run: a training-step failure or — when a
/// checkpoint cadence is configured — a checkpoint I/O failure.
#[derive(Debug)]
pub enum DriverError {
    /// A training step failed (shape/index inconsistencies).
    Train(EmbeddingError),
    /// Writing a periodic checkpoint failed; training stopped cleanly
    /// at the failed boundary (the trainer and model remain valid).
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Train(e) => write!(f, "training step failed: {e}"),
            DriverError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Train(e) => Some(e),
            DriverError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<EmbeddingError> for DriverError {
    fn from(e: EmbeddingError) -> Self {
        DriverError::Train(e)
    }
}

impl From<CheckpointError> for DriverError {
    fn from(e: CheckpointError) -> Self {
        DriverError::Checkpoint(e)
    }
}

/// Aggregate result of a [`TrainLoop::run`] stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Steps completed.
    pub steps: usize,
    /// Per-step mini-batch losses, in order.
    pub losses: Vec<f32>,
    /// Summed per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// Total time the completed steps blocked waiting for casted arrays
    /// — the run's exposed casting latency (always zero in baseline
    /// mode). Lookahead exists to drive this to zero.
    pub exposed_cast_wait: Duration,
    /// Casting time spent by the pipeline worker during this run.
    pub casting_time: Duration,
    /// Total time [`TrainLoop::run`] blocked in the source's
    /// `next_batch` — the run's exposed batch-*generation* latency.
    /// With an inline source this is the full generation cost; wrapping
    /// the source in a `PrefetchSource` moves generation onto a
    /// producer thread and collapses this to the residual the producer
    /// could not stay ahead of.
    pub batch_wait: Duration,
    /// Lookahead depth in effect as each step completed — the
    /// [`DepthController`] trajectory (constant under
    /// [`DepthPolicy::Fixed`]).
    pub depths: Vec<usize>,
}

impl RunSummary {
    /// Fraction of this run's casting time hidden under training work
    /// (1.0 = fully hidden, the Fig. 9b ideal; also 1.0 when no casting
    /// ran, e.g. baseline mode). Delegates to
    /// [`PipelineStats::hidden_fraction`] so the metric has one
    /// definition.
    pub fn hidden_fraction(&self) -> f64 {
        PipelineStats {
            casting_time: self.casting_time,
            exposed_wait: self.exposed_cast_wait,
            ..Default::default()
        }
        .hidden_fraction()
    }

    /// Mean lookahead depth over the run (0.0 for an empty run).
    pub fn mean_depth(&self) -> f64 {
        if self.depths.is_empty() {
            return 0.0;
        }
        self.depths.iter().sum::<usize>() as f64 / self.depths.len() as f64
    }

    /// Depth in effect when the last step completed.
    pub fn final_depth(&self) -> usize {
        self.depths.last().copied().unwrap_or(0)
    }
}

/// How a [`TrainLoop`] chooses its lookahead depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepthPolicy {
    /// A constant depth — exactly the PR-3 driver behaviour
    /// ([`TrainLoop::new`] is `with_policy(.., Fixed(depth))`).
    Fixed(usize),
    /// Closed-loop AIMD between bounds, driven by measured exposed
    /// casting waits.
    Adaptive(AdaptiveDepth),
}

impl DepthPolicy {
    /// The largest depth this policy can ever select (sizes the
    /// in-flight queue).
    fn max_depth(&self) -> usize {
        match *self {
            DepthPolicy::Fixed(depth) => depth,
            DepthPolicy::Adaptive(a) => a.max,
        }
    }
}

/// Knobs of the adaptive depth controller.
///
/// The controller aggregates [`StepReport::exposed_cast_wait`] over
/// `window`-step observation windows. A window whose mean exposed wait
/// exceeds `target_exposed_ns` is a *congestion* signal — casting is
/// not hidden, so the lookahead additively deepens by one. After
/// `decrease_after` consecutive hidden windows the depth halves
/// (multiplicative decrease) to shed the batches a deeper-than-needed
/// queue keeps alive; if the shallower depth re-exposes casting within
/// its first window, the controller climbs back and pins a floor just
/// above the depth that failed. Each failed trial therefore ratchets
/// the floor upward — successive halvings probe the knee from *below*
/// until the floor reaches the shallowest depth that hides casting,
/// rather than oscillating around it (or locking in a
/// deeper-than-necessary depth, as pinning the pre-trial depth would).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveDepth {
    /// Smallest depth the controller may select (and the initial one —
    /// adaptation is observation-driven, so runs start shallow and
    /// climb only when measurements say to).
    pub min: usize,
    /// Largest depth the controller may select. Keep at or below the
    /// casting pipeline's in-flight cap; a deeper queue would only
    /// block in `begin_step`.
    pub max: usize,
    /// Steps per observation window.
    pub window: usize,
    /// Mean per-step exposed casting wait (nanoseconds) below which a
    /// window counts as hidden.
    pub target_exposed_ns: u64,
    /// Consecutive hidden windows before the controller tries a
    /// shallower depth.
    pub decrease_after: usize,
    /// Consecutive hidden windows spent *pinned at the floor* before
    /// the floor decays by one, re-enabling a decrease trial. A failed
    /// trial used to pin the floor forever, so a transient congestion
    /// burst (a cache-cold phase, a noisy neighbour) locked the
    /// controller at an unnecessarily deep lookahead for the rest of
    /// the run; sustained hidden windows are evidence the knee has
    /// moved back down, and decaying the floor lets the controller
    /// re-probe it. `0` disables decay (the pre-decay behaviour).
    pub floor_decay_after: usize,
}

impl AdaptiveDepth {
    /// An adaptive policy between `min` and `max` with the default
    /// cadence: 4-step windows, a 1 us per-step hidden threshold, a
    /// decrease trial after 4 consecutive hidden windows, and floor
    /// decay after 16 consecutive hidden windows at the floor.
    pub fn new(min: usize, max: usize) -> Self {
        Self {
            min,
            max,
            window: 4,
            target_exposed_ns: 1_000,
            decrease_after: 4,
            floor_decay_after: 16,
        }
    }
}

/// The closed-loop lookahead controller (see [`AdaptiveDepth`] for the
/// decision rule). Deterministic by construction: decisions are a pure
/// function of the observed wait sequence — no clocks, no randomness —
/// so identical measurements reproduce the identical depth trajectory
/// (property-tested in `tests/pipelined_training.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthController {
    policy: DepthPolicy,
    depth: usize,
    window_wait: Duration,
    window_steps: usize,
    hidden_streak: usize,
    /// Depth below which a past decrease trial re-exposed casting; the
    /// controller does not descend below it until it decays.
    floor: usize,
    /// Consecutive hidden windows spent pinned at the floor — drives
    /// [`AdaptiveDepth::floor_decay_after`].
    floor_streak: usize,
    /// The previous decision was a decrease trial (so a congested next
    /// window pins the floor).
    trialing: bool,
}

/// A plain-data snapshot of a [`DepthController`]'s mutable state, the
/// `DCTL` checkpoint section. The policy itself is *not* part of the
/// snapshot: resuming supplies the policy (it is configuration, not
/// state) and [`DepthController::restore`] re-validates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthControllerState {
    /// Depth in effect.
    pub depth: usize,
    /// Exposed wait accumulated in the current observation window.
    pub window_wait_ns: u64,
    /// Steps observed in the current window.
    pub window_steps: usize,
    /// Consecutive hidden windows.
    pub hidden_streak: usize,
    /// The pinned decrease floor.
    pub floor: usize,
    /// Consecutive hidden windows spent pinned at the floor.
    pub floor_streak: usize,
    /// Whether the last decision was a decrease trial.
    pub trialing: bool,
}

impl DepthController {
    /// Builds a controller; the initial depth is the fixed depth or the
    /// adaptive minimum.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate adaptive policy (`min > max` or a zero
    /// window).
    pub fn new(policy: DepthPolicy) -> Self {
        let depth = match policy {
            DepthPolicy::Fixed(depth) => depth,
            DepthPolicy::Adaptive(a) => {
                assert!(a.min <= a.max, "adaptive depth bounds inverted");
                assert!(a.window > 0, "adaptive window must be positive");
                a.min
            }
        };
        Self {
            policy,
            depth,
            window_wait: Duration::ZERO,
            window_steps: 0,
            hidden_streak: 0,
            floor: match policy {
                DepthPolicy::Fixed(d) => d,
                DepthPolicy::Adaptive(a) => a.min,
            },
            floor_streak: 0,
            trialing: false,
        }
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> DepthPolicy {
        self.policy
    }

    /// The depth currently in effect.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Snapshots the controller's mutable state for checkpointing.
    pub fn state(&self) -> DepthControllerState {
        DepthControllerState {
            depth: self.depth,
            window_wait_ns: self.window_wait.as_nanos() as u64,
            window_steps: self.window_steps,
            hidden_streak: self.hidden_streak,
            floor: self.floor,
            floor_streak: self.floor_streak,
            trialing: self.trialing,
        }
    }

    /// Rebuilds a controller mid-trajectory from a checkpoint snapshot:
    /// the resumed controller makes exactly the depth decisions the
    /// saved one would have made.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate adaptive policy (as
    /// [`DepthController::new`] does).
    pub fn restore(policy: DepthPolicy, state: DepthControllerState) -> Self {
        let mut c = Self::new(policy);
        c.depth = state.depth;
        c.window_wait = Duration::from_nanos(state.window_wait_ns);
        c.window_steps = state.window_steps;
        c.hidden_streak = state.hidden_streak;
        c.floor = state.floor;
        c.floor_streak = state.floor_streak;
        c.trialing = state.trialing;
        c
    }

    /// Feeds one completed step's exposed casting wait; returns the
    /// depth to use from now on (unchanged until a window boundary).
    pub fn observe(&mut self, exposed_cast_wait: Duration) -> usize {
        let DepthPolicy::Adaptive(a) = self.policy else {
            return self.depth;
        };
        self.window_wait += exposed_cast_wait;
        self.window_steps += 1;
        if self.window_steps < a.window {
            return self.depth;
        }
        let mean_ns = self.window_wait.as_nanos() as u64 / a.window as u64;
        self.window_wait = Duration::ZERO;
        self.window_steps = 0;
        if mean_ns > a.target_exposed_ns {
            // Congestion: casting is exposed at this depth. If we just
            // stepped down, the shallower depth is proven too shallow —
            // pin the floor where we climb back to.
            if self.trialing {
                self.floor = (self.depth + 1).min(a.max);
            }
            self.depth = (self.depth + 1).min(a.max);
            self.hidden_streak = 0;
            self.floor_streak = 0;
        } else {
            self.hidden_streak += 1;
            // Floor decay: sustained hidden windows while pinned at the
            // floor are evidence the knee has moved — lower the floor
            // one step so the decrease logic below can re-probe it. A
            // re-exposed trial pins it straight back.
            if self.depth == self.floor && self.floor > a.min {
                self.floor_streak += 1;
                if a.floor_decay_after > 0 && self.floor_streak >= a.floor_decay_after {
                    self.floor -= 1;
                    self.floor_streak = 0;
                }
            } else {
                self.floor_streak = 0;
            }
            if self.hidden_streak >= a.decrease_after && self.depth > self.floor {
                self.depth = (self.depth / 2).max(self.floor).max(a.min);
                self.hidden_streak = 0;
                self.trialing = true;
                return self.depth;
            }
        }
        self.trialing = false;
        self.depth
    }
}

/// The cross-batch pipelined training driver.
///
/// `depth` is the lookahead: how many *future* batches may have casting
/// jobs in flight while a step completes. Depth 0 is exactly the serial
/// `step` loop (begin, then immediately complete); depth 1 is classic
/// double-buffering; deeper queues give the casting worker more slack at
/// the cost of holding more batches alive. The casting pipeline's own
/// bounded in-flight cap backstops the queue: a `depth` beyond the cap
/// blocks in [`Trainer::begin_step`] instead of growing it.
///
/// The depth is either pinned ([`TrainLoop::new`] /
/// [`DepthPolicy::Fixed`]) or driven at run time by the
/// [`DepthController`] ([`TrainLoop::with_policy`] with
/// [`DepthPolicy::Adaptive`]), which adapts it to the measured exposed
/// casting wait.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tcast_dlrm::{BackwardMode, DlrmConfig, Trainer, TrainLoop};
/// use tcast_datasets::{BatchSource, SyntheticCtr, SyntheticSource};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DlrmConfig::tiny();
/// let mut source =
///     SyntheticSource::new(SyntheticCtr::new(config.table_workloads(), config.dense_features, 1), 32);
/// let trainer = Trainer::new(config, BackwardMode::Casted, 42)?;
/// let mut driver = TrainLoop::new(trainer, 2);
/// let summary = driver.run(&mut source, 8)?;
/// assert_eq!(summary.steps, 8);
/// assert!(summary.hidden_fraction() >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TrainLoop {
    trainer: Trainer,
    controller: DepthController,
    queue: VecDeque<InFlightStep>,
    checkpoint: Option<CheckpointCadence>,
}

/// Periodic-checkpoint configuration of a [`TrainLoop`].
#[derive(Debug)]
struct CheckpointCadence {
    every: u64,
    store: CheckpointStore,
    last: Option<PathBuf>,
    /// Step count at the last commit — guards against re-committing the
    /// same boundary (e.g. when a run ends exactly on one).
    last_step: u64,
}

impl TrainLoop {
    /// Wraps a trainer into a driver with the given casting lookahead
    /// depth (0 = serial) — a [`DepthPolicy::Fixed`] driver.
    pub fn new(trainer: Trainer, depth: usize) -> Self {
        Self::with_policy(trainer, DepthPolicy::Fixed(depth))
    }

    /// Wraps a trainer into a driver whose lookahead depth follows
    /// `policy`. Under [`DepthPolicy::Adaptive`] every completed step's
    /// [`StepReport::exposed_cast_wait`] feeds the [`DepthController`],
    /// which retunes the depth at window boundaries — observation-only,
    /// so the trajectory stays bit-identical to any fixed depth.
    pub fn with_policy(trainer: Trainer, policy: DepthPolicy) -> Self {
        Self {
            queue: VecDeque::with_capacity(policy.max_depth() + 1),
            trainer,
            controller: DepthController::new(policy),
            checkpoint: None,
        }
    }

    /// Enables crash-safe checkpointing: every `every` completed steps,
    /// [`TrainLoop::run`] drains the in-flight queue and commits full
    /// training state (model, optimizer slabs, step counter, batch
    /// source position, depth controller) to `store`.
    ///
    /// Draining at the boundary is trajectory-neutral — completions
    /// happen in the same order with the same inputs, just earlier — so
    /// a run with checkpointing enabled trains bit-identically to one
    /// without, and a run resumed from any of the checkpoints continues
    /// bit-identically to the uninterrupted run
    /// (`tests/checkpoint_resume.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn checkpoint_every(mut self, every: u64, store: CheckpointStore) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        let last_step = self.trainer.steps() + self.queue.len() as u64;
        self.checkpoint = Some(CheckpointCadence {
            every,
            store,
            last: None,
            last_step,
        });
        self
    }

    /// The most recent checkpoint committed by [`TrainLoop::run`].
    pub fn last_checkpoint(&self) -> Option<&Path> {
        self.checkpoint.as_ref().and_then(|c| c.last.as_deref())
    }

    /// Resumes a killed run: loads the checkpoint at `path`, restores
    /// full training state into `trainer` (which must be freshly built
    /// with the architecture, optimizer and learning rate of the saved
    /// run), rewinds `source` to the saved stream position, and rebuilds
    /// the depth controller mid-trajectory under `policy`.
    ///
    /// The returned loop continues the killed run **bit-identically**:
    /// weights, per-step losses and depth decisions match an
    /// uninterrupted run step for step.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on unreadable/corrupt checkpoints or
    /// trainer mismatches.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's source state does not match the kind
    /// of `source` (see [`BatchSource::restore`]).
    pub fn resume(
        path: impl AsRef<Path>,
        mut trainer: Trainer,
        policy: DepthPolicy,
        source: &mut dyn BatchSource,
    ) -> Result<Self, CheckpointError> {
        let mut file = std::fs::File::open(path)?;
        let ckpt = read_train_checkpoint(&mut file)?;
        ckpt.restore_into(&mut trainer)?;
        if let Some(state) = ckpt.source_state() {
            source.restore(&state);
        }
        let controller = match ckpt.controller_state() {
            Some(state) => DepthController::restore(policy, state),
            None => DepthController::new(policy),
        };
        Ok(Self {
            queue: VecDeque::with_capacity(policy.max_depth() + 1),
            trainer,
            controller,
            checkpoint: None,
        })
    }

    /// The lookahead depth currently in effect.
    pub fn depth(&self) -> usize {
        self.controller.depth()
    }

    /// The depth controller (its policy and current depth).
    pub fn controller(&self) -> &DepthController {
        &self.controller
    }

    /// Steps begun but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to the wrapped trainer.
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Mutable access to the wrapped trainer, for out-of-band weight
    /// surgery between runs (e.g. hot-swapping in a checkpoint-restored
    /// model mid-traffic before republishing a snapshot).
    ///
    /// # Panics
    ///
    /// Panics if steps are still in flight: mutating the trainer under
    /// queued casting jobs would corrupt the pipeline's bookkeeping.
    pub fn trainer_mut(&mut self) -> &mut Trainer {
        assert!(
            self.queue.is_empty(),
            "{} steps still in flight: call finish() first",
            self.queue.len()
        );
        &mut self.trainer
    }

    /// Feeds one batch into the pipeline: begins its casting job and —
    /// once more than `depth` steps are in flight — completes the oldest
    /// one, returning its report together with its batch (so the caller
    /// can recycle the buffers into a [`BatchSource`] free-list).
    ///
    /// Completions come back in push order, `depth` pushes behind. An
    /// adaptive policy may lower the depth mid-stream, leaving more
    /// than `depth + 1` steps in flight; each push still completes at
    /// most one step, so the queue drains by one per push — use
    /// [`TrainLoop::complete_excess`] (as [`TrainLoop::run`] does) to
    /// drain immediately.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies in the completed
    /// step's batch.
    pub fn push(
        &mut self,
        batch: Arc<CtrBatch>,
    ) -> Result<Option<(StepReport, Arc<CtrBatch>)>, EmbeddingError> {
        let step = self.trainer.begin_step(batch);
        self.queue.push_back(step);
        if self.queue.len() > self.controller.depth() {
            return self.complete_front().map(Some);
        }
        Ok(None)
    }

    /// Completes in-flight steps until no more than the current depth
    /// remain — the drain a mid-stream depth *decrease* calls for.
    /// Returns the completed reports and batches in order (usually
    /// empty).
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies; steps after the
    /// failing one remain in flight.
    pub fn complete_excess(&mut self) -> Result<Vec<(StepReport, Arc<CtrBatch>)>, EmbeddingError> {
        let mut out = Vec::new();
        while self.queue.len() > self.controller.depth() {
            out.push(self.complete_front()?);
        }
        Ok(out)
    }

    /// Completes every in-flight step, returning their reports and
    /// batches in order. Call at the end of a stream (or before
    /// [`TrainLoop::into_trainer`]) to drain the lookahead queue.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies; steps after the
    /// failing one remain in flight.
    pub fn finish(&mut self) -> Result<Vec<(StepReport, Arc<CtrBatch>)>, EmbeddingError> {
        let mut out = Vec::with_capacity(self.queue.len());
        while !self.queue.is_empty() {
            out.push(self.complete_front()?);
        }
        Ok(out)
    }

    fn complete_front(&mut self) -> Result<(StepReport, Arc<CtrBatch>), EmbeddingError> {
        let step = self.queue.pop_front().expect("queue non-empty");
        let batch = Arc::clone(step.batch());
        let report = self.trainer.complete_step(step)?;
        // Close the control loop: every completed step's measured
        // exposed wait feeds the controller (a no-op under Fixed).
        self.controller.observe(report.exposed_cast_wait);
        Ok((report, batch))
    }

    /// Streams up to `steps` batches from `source` through the pipelined
    /// loop, recycling every completed batch back into the source's
    /// free-list, and reports the run's losses, timings and casting
    /// overlap. Stops early if the source ends (finite trace replay).
    ///
    /// With [`TrainLoop::checkpoint_every`] configured, full training
    /// state is committed at every cadence boundary (the in-flight queue
    /// is drained first — trajectory-neutral, see `checkpoint_every`).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Train`] on shape/index inconsistencies in
    /// any batch and [`DriverError::Checkpoint`] if a periodic
    /// checkpoint cannot be committed.
    pub fn run(
        &mut self,
        source: &mut dyn BatchSource,
        steps: usize,
    ) -> Result<RunSummary, DriverError> {
        let stats_before = self.pipeline_stats_or_default();
        let mut summary = RunSummary::default();
        for _ in 0..steps {
            let t0 = Instant::now();
            let next = source.next_batch();
            summary.batch_wait += t0.elapsed();
            let Some(batch) = next else {
                break;
            };
            if let Some((report, done)) = self.push(batch)? {
                self.record(&mut summary, &report);
                source.recycle(done);
            }
            // An adaptive depth decrease leaves excess steps in flight;
            // complete them now so the queue tracks the new depth.
            for (report, done) in self.complete_excess()? {
                self.record(&mut summary, &report);
                source.recycle(done);
            }
            if self.checkpoint_due() {
                for (report, done) in self.finish()? {
                    self.record(&mut summary, &report);
                    source.recycle(done);
                }
                self.commit_checkpoint(source)?;
            }
        }
        for (report, done) in self.finish()? {
            self.record(&mut summary, &report);
            source.recycle(done);
        }
        if self.checkpoint_due() {
            self.commit_checkpoint(source)?;
        }
        let stats_after = self.pipeline_stats_or_default();
        summary.casting_time = stats_after.casting_time - stats_before.casting_time;
        Ok(summary)
    }

    /// Whether the trainer has crossed a checkpoint-cadence boundary
    /// since the last commit. Compared against the *pushed* step count
    /// (completed + in flight), so the decision is the same whatever the
    /// lookahead depth happens to be when the boundary is crossed.
    fn checkpoint_due(&self) -> bool {
        self.checkpoint.as_ref().is_some_and(|c| {
            let pushed = self.trainer.steps() + self.queue.len() as u64;
            pushed > 0 && pushed.is_multiple_of(c.every) && pushed != c.last_step
        })
    }

    /// Drains nothing itself (callers drain first): captures source +
    /// controller state and commits one checkpoint.
    fn commit_checkpoint(&mut self, source: &mut dyn BatchSource) -> Result<(), CheckpointError> {
        debug_assert!(self.queue.is_empty(), "drain before checkpointing");
        let source_state = source.state();
        let controller_state = self.controller.state();
        if let Some(c) = self.checkpoint.as_mut() {
            let path = c.store.save(
                &self.trainer,
                source_state.as_ref(),
                Some(&controller_state),
            )?;
            c.last = Some(path);
            c.last_step = self.trainer.steps();
        }
        Ok(())
    }

    fn record(&self, summary: &mut RunSummary, report: &StepReport) {
        summary.steps += 1;
        summary.losses.push(report.loss);
        summary.timings += report.timings;
        summary.exposed_cast_wait += report.exposed_cast_wait;
        summary.depths.push(self.controller.depth());
    }

    fn pipeline_stats_or_default(&self) -> PipelineStats {
        self.trainer.pipeline_stats().unwrap_or_default()
    }

    /// Unwraps the trainer.
    ///
    /// # Panics
    ///
    /// Panics if steps are still in flight — [`TrainLoop::finish`] them
    /// first, so no begun batch is silently dropped untrained.
    pub fn into_trainer(self) -> Trainer {
        assert!(
            self.queue.is_empty(),
            "{} steps still in flight: call finish() first",
            self.queue.len()
        );
        self.trainer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DlrmConfig;
    use crate::trainer::BackwardMode;
    use tcast_datasets::{SyntheticCtr, SyntheticSource};

    fn source(seed: u64, batch: usize) -> SyntheticSource {
        let cfg = DlrmConfig::tiny();
        SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed),
            batch,
        )
    }

    #[test]
    fn depth_zero_run_matches_the_plain_step_loop() {
        let mut serial = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 3).unwrap();
        let mut stream = SyntheticCtr::new(
            DlrmConfig::tiny().table_workloads(),
            DlrmConfig::tiny().dense_features,
            8,
        );
        let serial_losses: Vec<f32> = (0..5)
            .map(|_| serial.step(&stream.next_batch(16)).unwrap().loss)
            .collect();

        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 3).unwrap();
        let mut driver = TrainLoop::new(trainer, 0);
        let summary = driver.run(&mut source(8, 16), 5).unwrap();
        assert_eq!(summary.losses, serial_losses);
        let pipelined = driver.into_trainer();
        for i in 0..serial.model().num_tables() {
            assert_eq!(
                serial
                    .model()
                    .table(i)
                    .max_abs_diff(pipelined.model().table(i))
                    .unwrap(),
                0.0
            );
        }
    }

    #[test]
    fn push_defers_completion_by_depth() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 1).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = source(5, 8);
        assert!(driver.push(src.next_batch().unwrap()).unwrap().is_none());
        assert!(driver.push(src.next_batch().unwrap()).unwrap().is_none());
        assert_eq!(driver.in_flight(), 2);
        // The third push completes the FIRST batch.
        let first = src_batches(&mut source(5, 8), 1).pop().unwrap();
        let (report, done) = driver.push(src.next_batch().unwrap()).unwrap().unwrap();
        assert!(report.loss.is_finite());
        assert_eq!(*done, *first, "completions must come back in push order");
        assert_eq!(driver.in_flight(), 2);
        let rest = driver.finish().unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(driver.in_flight(), 0);
        assert_eq!(driver.trainer().steps(), 3);
    }

    fn src_batches(src: &mut SyntheticSource, n: usize) -> Vec<Arc<CtrBatch>> {
        (0..n).map(|_| src.next_batch().unwrap()).collect()
    }

    #[test]
    fn run_recycles_batches_into_the_free_list() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 2).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = source(9, 16);
        let summary = driver.run(&mut src, 6).unwrap();
        assert_eq!(summary.steps, 6);
        assert_eq!(summary.losses.len(), 6);
        // Every batch came back: the free-list holds depth+1 or fewer
        // buffers (some may still be Arc-shared, but none are lost).
        assert!(src.free_list_len() >= 1);
        assert!(summary.timings.total() > Duration::ZERO);
    }

    #[test]
    fn baseline_mode_reports_full_hiding() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Baseline, 2).unwrap();
        let mut driver = TrainLoop::new(trainer, 3);
        let summary = driver.run(&mut source(13, 16), 4).unwrap();
        assert_eq!(summary.steps, 4);
        assert_eq!(summary.exposed_cast_wait, Duration::ZERO);
        assert_eq!(summary.hidden_fraction(), 1.0);
    }

    #[test]
    fn fixed_policy_reports_a_constant_depth_trajectory() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 7).unwrap();
        let mut driver = TrainLoop::with_policy(trainer, DepthPolicy::Fixed(2));
        let summary = driver.run(&mut source(3, 8), 5).unwrap();
        assert_eq!(summary.depths, vec![2; 5]);
        assert_eq!(summary.mean_depth(), 2.0);
        assert_eq!(summary.final_depth(), 2);
    }

    #[test]
    fn controller_climbs_on_exposed_waits_and_respects_bounds() {
        let mut c = DepthController::new(DepthPolicy::Adaptive(AdaptiveDepth {
            min: 1,
            max: 3,
            window: 2,
            target_exposed_ns: 1_000,
            decrease_after: 2,
            floor_decay_after: 0,
        }));
        assert_eq!(c.depth(), 1);
        let exposed = Duration::from_micros(50);
        // Every window congested: +1 per window, clamped at max.
        for _ in 0..10 {
            c.observe(exposed);
        }
        assert_eq!(c.depth(), 3, "additive increase must stop at max");
        // Fully hidden: after `decrease_after` windows the depth halves,
        // never below min.
        for _ in 0..40 {
            c.observe(Duration::ZERO);
        }
        assert_eq!(c.depth(), 1, "multiplicative decrease must stop at min");
    }

    #[test]
    fn controller_pins_a_floor_after_a_failed_decrease_trial() {
        let a = AdaptiveDepth {
            min: 0,
            max: 8,
            window: 1,
            target_exposed_ns: 1_000,
            decrease_after: 2,
            floor_decay_after: 0,
        };
        let mut c = DepthController::new(DepthPolicy::Adaptive(a));
        let exposed = Duration::from_micros(100);
        // Simulate a knee at depth 2: exposed below 2, hidden at >= 2.
        let mut trace = Vec::new();
        for _ in 0..40 {
            let wait = if c.depth() >= 2 {
                Duration::ZERO
            } else {
                exposed
            };
            trace.push(c.observe(wait));
        }
        // The tail must sit at the knee: a decrease trial to 1 exposes
        // casting, the controller climbs back and pins floor = 2.
        assert!(
            trace[20..].iter().all(|&d| d == 2),
            "controller failed to converge on the knee: {trace:?}"
        );
    }

    #[test]
    fn floor_decays_after_sustained_hidden_windows() {
        // Same knee-at-2 workload as the pinning test, but the workload
        // then shifts: casting becomes hidden at *every* depth. With
        // floor decay enabled the controller must shed the stale floor
        // and walk back down to min instead of idling pinned at 2.
        let a = AdaptiveDepth {
            min: 0,
            max: 8,
            window: 1,
            target_exposed_ns: 1_000,
            decrease_after: 2,
            floor_decay_after: 4,
        };
        let mut c = DepthController::new(DepthPolicy::Adaptive(a));
        let exposed = Duration::from_micros(100);
        // Phase 1: knee at depth 2 — converge and pin the floor there.
        for _ in 0..40 {
            let wait = if c.depth() >= 2 {
                Duration::ZERO
            } else {
                exposed
            };
            c.observe(wait);
        }
        assert_eq!(c.depth(), 2, "must converge on the knee first");
        // Phase 2: casting now always hidden. Each floor decay needs
        // `floor_decay_after` hidden windows plus a successful trial.
        let mut trace = Vec::new();
        for _ in 0..40 {
            trace.push(c.observe(Duration::ZERO));
        }
        assert_eq!(
            *trace.last().unwrap(),
            0,
            "floor never decayed to min: {trace:?}"
        );

        // With decay disabled the floor is sticky forever.
        let mut pinned = DepthController::new(DepthPolicy::Adaptive(AdaptiveDepth {
            floor_decay_after: 0,
            ..a
        }));
        for _ in 0..40 {
            let wait = if pinned.depth() >= 2 {
                Duration::ZERO
            } else {
                exposed
            };
            pinned.observe(wait);
        }
        for _ in 0..80 {
            pinned.observe(Duration::ZERO);
        }
        assert_eq!(pinned.depth(), 2, "disabled decay must keep the floor");
    }

    #[test]
    fn controller_state_roundtrips_mid_trajectory() {
        // Snapshot the controller mid-run, rebuild from the snapshot,
        // and feed both the same tail: decisions must match bit for bit.
        let a = AdaptiveDepth {
            min: 0,
            max: 6,
            window: 2,
            target_exposed_ns: 1_000,
            decrease_after: 2,
            floor_decay_after: 3,
        };
        let mut c = DepthController::new(DepthPolicy::Adaptive(a));
        let waits = [900_u64, 5_000, 0, 2_000, 0, 0, 3_000, 0, 0, 0, 0];
        for &w in &waits[..7] {
            c.observe(Duration::from_nanos(w));
        }
        let snap = c.state();
        let mut r = DepthController::restore(DepthPolicy::Adaptive(a), snap);
        assert_eq!(r.depth(), c.depth());
        for &w in &waits[7..] {
            assert_eq!(
                c.observe(Duration::from_nanos(w)),
                r.observe(Duration::from_nanos(w)),
                "restored controller diverged"
            );
        }
        assert_eq!(c.state(), r.state());
    }

    #[test]
    fn run_with_checkpointing_is_trajectory_neutral() {
        // A cadenced run must train bit-identically to an uncadenced
        // one: the drain at each boundary only reorders *when* steps
        // complete, never what they compute.
        let dir = std::env::temp_dir().join(format!("tckp-neutral-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = || Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 3).unwrap();
        let mut plain = TrainLoop::new(mk(), 2);
        let plain_summary = plain.run(&mut source(9, 16), 9).unwrap();

        let store = CheckpointStore::new(&dir, 2).unwrap();
        let mut cadenced = TrainLoop::new(mk(), 2).checkpoint_every(3, store);
        let cadenced_summary = cadenced.run(&mut source(9, 16), 9).unwrap();

        assert_eq!(
            plain_summary
                .losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            cadenced_summary
                .losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            "checkpoint drains changed the trajectory"
        );
        let last = cadenced
            .last_checkpoint()
            .expect("a checkpoint was committed");
        assert!(
            last.ends_with("ckpt-000000000009.tckp"),
            "unexpected {last:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adaptive_depth_decrease_drains_the_queue_mid_run() {
        // A policy that *starts* deep and collapses once hidden: the
        // drain path (complete_excess) must keep in_flight <= depth and
        // the run bit-identical to serial.
        let a = AdaptiveDepth {
            min: 0,
            max: 4,
            window: 1,
            target_exposed_ns: u64::MAX, // every window counts as hidden
            decrease_after: 1,
            floor_decay_after: 0,
        };
        let mk = || Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 3).unwrap();
        let mut adaptive = TrainLoop::with_policy(mk(), DepthPolicy::Adaptive(a));
        let summary = adaptive.run(&mut source(8, 16), 8).unwrap();
        assert_eq!(summary.steps, 8);
        assert_eq!(adaptive.in_flight(), 0);
        let mut serial = TrainLoop::new(mk(), 0);
        let serial_summary = serial.run(&mut source(8, 16), 8).unwrap();
        assert_eq!(summary.losses, serial_summary.losses);
        // With every window hidden the depth can only fall; it must end
        // at min and never exceed max.
        assert!(summary.depths.iter().all(|&d| d <= 4));
        assert_eq!(summary.final_depth(), 0);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_adaptive_bounds_rejected() {
        DepthController::new(DepthPolicy::Adaptive(AdaptiveDepth::new(5, 2)));
    }

    #[test]
    fn run_measures_generation_wait() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 2).unwrap();
        let mut driver = TrainLoop::new(trainer, 1);
        let summary = driver.run(&mut source(4, 32), 4).unwrap();
        // Inline generation always costs *something* measurable.
        assert!(summary.batch_wait > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "still in flight")]
    fn into_trainer_refuses_to_drop_begun_steps() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 1).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = source(5, 8);
        driver.push(src.next_batch().unwrap()).unwrap();
        let _ = driver.into_trainer();
    }

    #[test]
    fn finite_source_ends_the_run_early() {
        // A trace-replay style finite stream: run() asks for more steps
        // than the source has and must stop cleanly.
        struct Finite {
            inner: SyntheticSource,
            left: usize,
        }
        impl BatchSource for Finite {
            fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
                if self.left == 0 {
                    return None;
                }
                self.left -= 1;
                self.inner.next_batch()
            }
            fn recycle(&mut self, batch: Arc<CtrBatch>) {
                self.inner.recycle(batch);
            }
        }
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 4).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = Finite {
            inner: source(21, 8),
            left: 3,
        };
        let summary = driver.run(&mut src, 10).unwrap();
        assert_eq!(summary.steps, 3);
        assert_eq!(driver.in_flight(), 0);
    }
}

//! The cross-batch pipelined training driver: depth-D casting lookahead
//! over a streaming [`BatchSource`].
//!
//! [`Trainer::step`] submits batch N's indices at the top of step N, so
//! casting can only overlap batch N's *own* forward pass — at small
//! batches the exposed wait dominates and the pipeline's hidden fraction
//! sits far from the Fig. 9b ideal. The paper's runtime (Section IV-B)
//! instead keeps the casting unit busy with *future* mini-batches.
//! [`TrainLoop`] is that runtime's host-side embodiment: it begins up to
//! `depth` steps ahead of the one it is completing, so batch N+1..N+D's
//! casting jobs run on the pipeline worker while batch N trains.
//!
//! Correctness is structural, not probabilistic: [`Trainer::begin_step`]
//! touches no model state (casting is a pure function of the index
//! arrays, which exist before forward starts), and completions run
//! strictly in submission order — so **any depth produces bit-identical
//! weights and losses to the serial `step` loop** (property-tested in
//! `tests/pipelined_training.rs` across both backward modes and all five
//! optimizers).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crate::trainer::{InFlightStep, PhaseTimings, StepReport, Trainer};
use tcast_core::PipelineStats;
use tcast_datasets::{BatchSource, CtrBatch};
use tcast_embedding::EmbeddingError;

/// Aggregate result of a [`TrainLoop::run`] stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Steps completed.
    pub steps: usize,
    /// Per-step mini-batch losses, in order.
    pub losses: Vec<f32>,
    /// Summed per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// Total time the completed steps blocked waiting for casted arrays
    /// — the run's exposed casting latency (always zero in baseline
    /// mode). Lookahead exists to drive this to zero.
    pub exposed_cast_wait: Duration,
    /// Casting time spent by the pipeline worker during this run.
    pub casting_time: Duration,
}

impl RunSummary {
    /// Fraction of this run's casting time hidden under training work
    /// (1.0 = fully hidden, the Fig. 9b ideal; also 1.0 when no casting
    /// ran, e.g. baseline mode). Delegates to
    /// [`PipelineStats::hidden_fraction`] so the metric has one
    /// definition.
    pub fn hidden_fraction(&self) -> f64 {
        PipelineStats {
            casting_time: self.casting_time,
            exposed_wait: self.exposed_cast_wait,
            ..Default::default()
        }
        .hidden_fraction()
    }
}

/// The cross-batch pipelined training driver.
///
/// `depth` is the lookahead: how many *future* batches may have casting
/// jobs in flight while a step completes. Depth 0 is exactly the serial
/// `step` loop (begin, then immediately complete); depth 1 is classic
/// double-buffering; deeper queues give the casting worker more slack at
/// the cost of holding more batches alive. The casting pipeline's own
/// bounded in-flight cap backstops the queue: a `depth` beyond the cap
/// blocks in [`Trainer::begin_step`] instead of growing it.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tcast_dlrm::{BackwardMode, DlrmConfig, Trainer, TrainLoop};
/// use tcast_datasets::{BatchSource, SyntheticCtr, SyntheticSource};
///
/// # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
/// let config = DlrmConfig::tiny();
/// let mut source =
///     SyntheticSource::new(SyntheticCtr::new(config.table_workloads(), config.dense_features, 1), 32);
/// let trainer = Trainer::new(config, BackwardMode::Casted, 42)?;
/// let mut driver = TrainLoop::new(trainer, 2);
/// let summary = driver.run(&mut source, 8)?;
/// assert_eq!(summary.steps, 8);
/// assert!(summary.hidden_fraction() >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TrainLoop {
    trainer: Trainer,
    depth: usize,
    queue: VecDeque<InFlightStep>,
}

impl TrainLoop {
    /// Wraps a trainer into a driver with the given casting lookahead
    /// depth (0 = serial).
    pub fn new(trainer: Trainer, depth: usize) -> Self {
        Self {
            queue: VecDeque::with_capacity(depth + 1),
            trainer,
            depth,
        }
    }

    /// The lookahead depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Steps begun but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to the wrapped trainer.
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Feeds one batch into the pipeline: begins its casting job and —
    /// once more than `depth` steps are in flight — completes the oldest
    /// one, returning its report together with its batch (so the caller
    /// can recycle the buffers into a [`BatchSource`] free-list).
    ///
    /// Completions come back in push order, `depth` pushes behind.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies in the completed
    /// step's batch.
    pub fn push(
        &mut self,
        batch: Arc<CtrBatch>,
    ) -> Result<Option<(StepReport, Arc<CtrBatch>)>, EmbeddingError> {
        let step = self.trainer.begin_step(batch);
        self.queue.push_back(step);
        if self.queue.len() > self.depth {
            return self.complete_front().map(Some);
        }
        Ok(None)
    }

    /// Completes every in-flight step, returning their reports and
    /// batches in order. Call at the end of a stream (or before
    /// [`TrainLoop::into_trainer`]) to drain the lookahead queue.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies; steps after the
    /// failing one remain in flight.
    pub fn finish(&mut self) -> Result<Vec<(StepReport, Arc<CtrBatch>)>, EmbeddingError> {
        let mut out = Vec::with_capacity(self.queue.len());
        while !self.queue.is_empty() {
            out.push(self.complete_front()?);
        }
        Ok(out)
    }

    fn complete_front(&mut self) -> Result<(StepReport, Arc<CtrBatch>), EmbeddingError> {
        let step = self.queue.pop_front().expect("queue non-empty");
        let batch = Arc::clone(step.batch());
        let report = self.trainer.complete_step(step)?;
        Ok((report, batch))
    }

    /// Streams up to `steps` batches from `source` through the pipelined
    /// loop, recycling every completed batch back into the source's
    /// free-list, and reports the run's losses, timings and casting
    /// overlap. Stops early if the source ends (finite trace replay).
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies in any batch.
    pub fn run(
        &mut self,
        source: &mut dyn BatchSource,
        steps: usize,
    ) -> Result<RunSummary, EmbeddingError> {
        let stats_before = self.pipeline_stats_or_default();
        let mut summary = RunSummary::default();
        for _ in 0..steps {
            let Some(batch) = source.next_batch() else {
                break;
            };
            if let Some((report, done)) = self.push(batch)? {
                Self::record(&mut summary, &report);
                source.recycle(done);
            }
        }
        for (report, done) in self.finish()? {
            Self::record(&mut summary, &report);
            source.recycle(done);
        }
        let stats_after = self.pipeline_stats_or_default();
        summary.casting_time = stats_after.casting_time - stats_before.casting_time;
        Ok(summary)
    }

    fn record(summary: &mut RunSummary, report: &StepReport) {
        summary.steps += 1;
        summary.losses.push(report.loss);
        summary.timings += report.timings;
        summary.exposed_cast_wait += report.exposed_cast_wait;
    }

    fn pipeline_stats_or_default(&self) -> PipelineStats {
        self.trainer.pipeline_stats().unwrap_or_default()
    }

    /// Unwraps the trainer.
    ///
    /// # Panics
    ///
    /// Panics if steps are still in flight — [`TrainLoop::finish`] them
    /// first, so no begun batch is silently dropped untrained.
    pub fn into_trainer(self) -> Trainer {
        assert!(
            self.queue.is_empty(),
            "{} steps still in flight: call finish() first",
            self.queue.len()
        );
        self.trainer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DlrmConfig;
    use crate::trainer::BackwardMode;
    use tcast_datasets::{SyntheticCtr, SyntheticSource};

    fn source(seed: u64, batch: usize) -> SyntheticSource {
        let cfg = DlrmConfig::tiny();
        SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed),
            batch,
        )
    }

    #[test]
    fn depth_zero_run_matches_the_plain_step_loop() {
        let mut serial = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 3).unwrap();
        let mut stream = SyntheticCtr::new(
            DlrmConfig::tiny().table_workloads(),
            DlrmConfig::tiny().dense_features,
            8,
        );
        let serial_losses: Vec<f32> = (0..5)
            .map(|_| serial.step(&stream.next_batch(16)).unwrap().loss)
            .collect();

        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 3).unwrap();
        let mut driver = TrainLoop::new(trainer, 0);
        let summary = driver.run(&mut source(8, 16), 5).unwrap();
        assert_eq!(summary.losses, serial_losses);
        let pipelined = driver.into_trainer();
        for i in 0..serial.model().num_tables() {
            assert_eq!(
                serial
                    .model()
                    .table(i)
                    .max_abs_diff(pipelined.model().table(i))
                    .unwrap(),
                0.0
            );
        }
    }

    #[test]
    fn push_defers_completion_by_depth() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 1).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = source(5, 8);
        assert!(driver.push(src.next_batch().unwrap()).unwrap().is_none());
        assert!(driver.push(src.next_batch().unwrap()).unwrap().is_none());
        assert_eq!(driver.in_flight(), 2);
        // The third push completes the FIRST batch.
        let first = src_batches(&mut source(5, 8), 1).pop().unwrap();
        let (report, done) = driver.push(src.next_batch().unwrap()).unwrap().unwrap();
        assert!(report.loss.is_finite());
        assert_eq!(*done, *first, "completions must come back in push order");
        assert_eq!(driver.in_flight(), 2);
        let rest = driver.finish().unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(driver.in_flight(), 0);
        assert_eq!(driver.trainer().steps(), 3);
    }

    fn src_batches(src: &mut SyntheticSource, n: usize) -> Vec<Arc<CtrBatch>> {
        (0..n).map(|_| src.next_batch().unwrap()).collect()
    }

    #[test]
    fn run_recycles_batches_into_the_free_list() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 2).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = source(9, 16);
        let summary = driver.run(&mut src, 6).unwrap();
        assert_eq!(summary.steps, 6);
        assert_eq!(summary.losses.len(), 6);
        // Every batch came back: the free-list holds depth+1 or fewer
        // buffers (some may still be Arc-shared, but none are lost).
        assert!(src.free_list_len() >= 1);
        assert!(summary.timings.total() > Duration::ZERO);
    }

    #[test]
    fn baseline_mode_reports_full_hiding() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Baseline, 2).unwrap();
        let mut driver = TrainLoop::new(trainer, 3);
        let summary = driver.run(&mut source(13, 16), 4).unwrap();
        assert_eq!(summary.steps, 4);
        assert_eq!(summary.exposed_cast_wait, Duration::ZERO);
        assert_eq!(summary.hidden_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "still in flight")]
    fn into_trainer_refuses_to_drop_begun_steps() {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 1).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = source(5, 8);
        driver.push(src.next_batch().unwrap()).unwrap();
        let _ = driver.into_trainer();
    }

    #[test]
    fn finite_source_ends_the_run_early() {
        // A trace-replay style finite stream: run() asks for more steps
        // than the source has and must stop cleanly.
        struct Finite {
            inner: SyntheticSource,
            left: usize,
        }
        impl BatchSource for Finite {
            fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
                if self.left == 0 {
                    return None;
                }
                self.left -= 1;
                self.inner.next_batch()
            }
            fn recycle(&mut self, batch: Arc<CtrBatch>) {
                self.inner.recycle(batch);
            }
        }
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 4).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = Finite {
            inner: source(21, 8),
            left: 3,
        };
        let summary = driver.run(&mut src, 10).unwrap();
        assert_eq!(summary.steps, 3);
        assert_eq!(driver.in_flight(), 0);
    }
}

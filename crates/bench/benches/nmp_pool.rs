//! Bench: the instruction-level NMP pool (functional compute +
//! cycle-level DRAM timing). Reported wall time is simulator throughput;
//! the *simulated* latencies appear in the pool's PoolExec results and
//! are validated against the analytic model in
//! `tests/model_crossvalidation.rs`.

use std::hint::black_box;
use tcast_bench::harness::BenchGroup;
use tcast_core::tensor_casting;
use tcast_datasets::{DatasetPreset, TableWorkload};
use tcast_embedding::{gradient_expand_coalesce, EmbeddingTable};
use tcast_nmp::{NmpPool, PoolConfig};
use tcast_tensor::Matrix;

fn main() {
    let mut group = BenchGroup::new("nmp_pool");
    let dim = 64;
    let rows = 20_000;
    let table = EmbeddingTable::seeded(rows, dim, 1);
    let workload = TableWorkload::new(DatasetPreset::CriteoKaggle.popularity().with_rows(rows), 10);

    for batch in [128usize, 512] {
        let index = workload.generator(3).next_batch(batch);
        let grads = Matrix::filled(batch, dim, 0.05);
        let casted = tensor_casting(&index);
        let coalesced = gradient_expand_coalesce(&grads, &index).unwrap();

        {
            let mut pool = NmpPool::new(PoolConfig::small(4));
            let h = pool.load_table(&table).unwrap();
            group.bench(&format!("gather_reduce/{batch}"), || {
                pool.gather_reduce(h, black_box(&index)).unwrap()
            });
        }
        {
            let mut pool = NmpPool::new(PoolConfig::small(4));
            let h = pool.load_table(&table).unwrap();
            group.bench(&format!("casted_backward/{batch}"), || {
                pool.casted_gather_reduce(h, black_box(&grads), black_box(&casted))
                    .unwrap()
            });
        }
        {
            let mut pool = NmpPool::new(PoolConfig::small(4));
            let h = pool.load_table(&table).unwrap();
            group.bench(&format!("scatter_sgd/{batch}"), || {
                pool.scatter_sgd(h, black_box(&coalesced), 0.01, false)
                    .unwrap()
            });
        }
    }
    group.finish();
}

//! Criterion bench: the instruction-level NMP pool (functional compute +
//! cycle-level DRAM timing). Reported wall time is simulator throughput;
//! the *simulated* latencies appear in the pool's PoolExec results and
//! are validated against the analytic model in
//! `tests/model_crossvalidation.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcast_core::tensor_casting;
use tcast_datasets::{DatasetPreset, TableWorkload};
use tcast_embedding::{gradient_expand_coalesce, EmbeddingTable};
use tcast_nmp::{NmpPool, PoolConfig};
use tcast_tensor::Matrix;

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("nmp_pool");
    let dim = 64;
    let rows = 20_000;
    let table = EmbeddingTable::seeded(rows, dim, 1);
    let workload = TableWorkload::new(
        DatasetPreset::CriteoKaggle.popularity().with_rows(rows),
        10,
    );

    for batch in [128usize, 512] {
        let index = workload.generator(3).next_batch(batch);
        let grads = Matrix::filled(batch, dim, 0.05);
        let casted = tensor_casting(&index);
        let coalesced = gradient_expand_coalesce(&grads, &index).unwrap();

        group.bench_with_input(BenchmarkId::new("gather_reduce", batch), &index, |b, idx| {
            let mut pool = NmpPool::new(PoolConfig::small(4));
            let h = pool.load_table(&table).unwrap();
            b.iter(|| pool.gather_reduce(h, black_box(idx)).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("casted_backward", batch),
            &casted,
            |b, casted| {
                let mut pool = NmpPool::new(PoolConfig::small(4));
                let h = pool.load_table(&table).unwrap();
                b.iter(|| {
                    pool.casted_gather_reduce(h, black_box(&grads), black_box(casted))
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scatter_sgd", batch),
            &coalesced,
            |b, coalesced| {
                let mut pool = NmpPool::new(PoolConfig::small(4));
                let h = pool.load_table(&table).unwrap();
                b.iter(|| {
                    pool.scatter_sgd(h, black_box(coalesced), 0.01, false)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pool
}
criterion_main!(benches);

//! Criterion bench: the casting stage itself (Algorithm 2), comparison
//! sort vs counting sort (the DESIGN.md sort ablation), against the
//! baseline's in-path coalesce sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tcast_core::{tensor_casting, tensor_casting_counting};
use tcast_datasets::{Popularity, TableWorkload};

fn bench_casting(c: &mut Criterion) {
    let mut group = c.benchmark_group("casting");
    for (name, rows) in [("dense_ids", 20_000u32), ("sparse_ids", 5_000_000u32)] {
        let workload = TableWorkload::new(
            Popularity::Zipf {
                rows: rows as usize,
                exponent: 1.05,
            },
            10,
        );
        let index = workload.generator(5).next_batch(2048);
        group.throughput(Throughput::Elements(index.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("comparison_sort", name),
            &index,
            |b, idx| {
                b.iter(|| tensor_casting(black_box(idx)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("counting_sort", name),
            &index,
            |b, idx| {
                b.iter(|| tensor_casting_counting(black_box(idx)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sorted_by_src_only", name),
            &index,
            |b, idx| {
                b.iter(|| black_box(idx).sorted_by_src());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_casting
}
criterion_main!(benches);

//! Bench: the casting stage itself (Algorithm 2) — comparison sort vs
//! counting sort (the DESIGN.md sort ablation) vs the pool-parallel
//! MSB-partitioned sort, against the baseline's in-path coalesce sort.

use std::hint::black_box;
use tcast_bench::harness::BenchGroup;
use tcast_core::{tensor_casting, tensor_casting_counting, tensor_casting_parallel};
use tcast_datasets::{Popularity, TableWorkload};

fn main() {
    let mut group = BenchGroup::new("casting");
    for (name, rows) in [("dense_ids", 20_000u32), ("sparse_ids", 5_000_000u32)] {
        let workload = TableWorkload::new(
            Popularity::Zipf {
                rows: rows as usize,
                exponent: 1.05,
            },
            10,
        );
        let index = workload.generator(5).next_batch(2048);
        group.throughput_elements(index.len() as u64);

        group.bench(&format!("comparison_sort/{name}"), || {
            tensor_casting(black_box(&index))
        });
        group.bench(&format!("counting_sort/{name}"), || {
            tensor_casting_counting(black_box(&index))
        });
        group.bench(&format!("parallel4/{name}"), || {
            tensor_casting_parallel(black_box(&index), 4)
        });
        group.bench(&format!("sorted_by_src_only/{name}"), || {
            black_box(&index).sorted_by_src()
        });
    }
    group.finish();
}

//! Criterion bench — THE paper comparison on real hardware: baseline
//! gradient expand-coalesce (Algorithm 1) vs the T.Casted gradient
//! gather-reduce (Algorithms 2+3), measured both with casting on the
//! critical path and with casted arrays precomputed (the runtime-hidden
//! case that the backward pass actually observes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tcast_core::{casted_gather_reduce, tensor_casting};
use tcast_datasets::{Popularity, TableWorkload};
use tcast_embedding::{gradient_coalesce, gradient_expand, gradient_expand_coalesce};
use tcast_tensor::Matrix;

fn bench_backward_paths(c: &mut Criterion) {
    let dim = 64;
    let workload = TableWorkload::new(
        Popularity::Zipf {
            rows: 100_000,
            exponent: 1.05,
        },
        10,
    );
    let mut group = c.benchmark_group("embedding_backward");
    for batch in [512usize, 2048] {
        let index = workload.generator(3).next_batch(batch);
        let mut grads = Matrix::zeros(batch, dim);
        for (i, v) in grads.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.7).sin();
        }
        let bytes = (index.len() * dim * 4) as u64;
        group.throughput(Throughput::Bytes(bytes));

        group.bench_with_input(
            BenchmarkId::new("baseline_expand_coalesce", batch),
            &index,
            |b, idx| {
                b.iter(|| gradient_expand_coalesce(black_box(&grads), black_box(idx)).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_two_kernels", batch),
            &index,
            |b, idx| {
                b.iter(|| {
                    let e = gradient_expand(black_box(&grads), idx).unwrap();
                    gradient_coalesce(&e, idx).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("casted_including_casting", batch),
            &index,
            |b, idx| {
                b.iter(|| {
                    let casted = tensor_casting(black_box(idx));
                    casted_gather_reduce(black_box(&grads), &casted).unwrap()
                });
            },
        );
        let precomputed = tensor_casting(&index);
        group.bench_with_input(
            BenchmarkId::new("casted_precomputed", batch),
            &precomputed,
            |b, casted| {
                b.iter(|| casted_gather_reduce(black_box(&grads), black_box(casted)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_backward_paths
}
criterion_main!(benches);

//! Bench — THE paper comparison on real hardware: baseline gradient
//! expand-coalesce (Algorithm 1) vs the T.Casted gradient gather-reduce
//! (Algorithms 2+3), measured both with casting on the critical path and
//! with casted arrays precomputed (the runtime-hidden case that the
//! backward pass actually observes).

use std::hint::black_box;
use tcast_bench::harness::BenchGroup;
use tcast_core::{casted_gather_reduce, tensor_casting};
use tcast_datasets::{Popularity, TableWorkload};
use tcast_embedding::{gradient_coalesce, gradient_expand, gradient_expand_coalesce};
use tcast_tensor::Matrix;

fn main() {
    let dim = 64;
    let workload = TableWorkload::new(
        Popularity::Zipf {
            rows: 100_000,
            exponent: 1.05,
        },
        10,
    );
    let mut group = BenchGroup::new("embedding_backward");
    for batch in [512usize, 2048] {
        let index = workload.generator(3).next_batch(batch);
        let mut grads = Matrix::zeros(batch, dim);
        for (i, v) in grads.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.7).sin();
        }
        let bytes = (index.len() * dim * 4) as u64;
        group.throughput_bytes(bytes);

        group.bench(&format!("baseline_expand_coalesce/{batch}"), || {
            gradient_expand_coalesce(black_box(&grads), black_box(&index)).unwrap()
        });
        group.bench(&format!("baseline_two_kernels/{batch}"), || {
            let e = gradient_expand(black_box(&grads), &index).unwrap();
            gradient_coalesce(&e, &index).unwrap()
        });
        group.bench(&format!("casted_including_casting/{batch}"), || {
            let casted = tensor_casting(black_box(&index));
            casted_gather_reduce(black_box(&grads), &casted).unwrap()
        });
        let precomputed = tensor_casting(&index);
        group.bench(&format!("casted_precomputed/{batch}"), || {
            casted_gather_reduce(black_box(&grads), black_box(&precomputed)).unwrap()
        });
    }
    group.finish();
}

//! Bench: the dense MLP substrate (forward and backward) at
//! DLRM-relevant layer shapes, on both the allocating and the
//! zero-allocation step paths.

use std::hint::black_box;
use tcast_bench::harness::BenchGroup;
use tcast_tensor::{Activation, Exec, Matrix, Mlp};

fn main() {
    let mut group = BenchGroup::new("mlp");
    // (name, input dim, widths) — RM1's bottom and top stacks.
    let shapes: [(&str, usize, &[usize]); 2] = [
        ("bottom_256_128_64", 13, &[256, 128, 64]),
        ("top_256_64_1", 119, &[256, 64, 1]),
    ];
    for (name, input, widths) in shapes {
        for batch in [256usize, 1024] {
            let mut mlp = Mlp::new(input, widths, Activation::Relu, 1).unwrap();
            let flops = mlp.forward_flops(batch);
            let mut x = Matrix::zeros(batch, input);
            for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
                *v = (i as f32 * 0.1).sin();
            }
            group.throughput_elements(flops);
            group.bench(&format!("{name}/forward/{batch}"), || {
                mlp.forward(black_box(&x)).unwrap()
            });
            let y = mlp.forward(&x).unwrap();
            let dy = Matrix::filled(y.rows(), y.cols(), 1.0);
            group.bench(&format!("{name}/fwd_bwd/{batch}"), || {
                mlp.forward(black_box(&x)).unwrap();
                mlp.backward(black_box(&dy)).unwrap()
            });
            // Zero-allocation step path (the trainer's hot path).
            let mut out = Matrix::default();
            let mut dx = Matrix::default();
            group.bench(&format!("{name}/fwd_bwd_into/{batch}"), || {
                mlp.forward_into(black_box(&x), &mut out, Exec::Serial)
                    .unwrap();
                mlp.backward_into(black_box(&dy), &mut dx, Exec::Serial)
                    .unwrap();
            });
        }
    }
    group.finish();
}

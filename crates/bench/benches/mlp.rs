//! Criterion bench: the dense MLP substrate (forward and backward) at
//! DLRM-relevant layer shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tcast_tensor::{Activation, Matrix, Mlp};

fn bench_mlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp");
    // (name, input dim, widths) — RM1's bottom and top stacks.
    let shapes: [(&str, usize, &[usize]); 2] = [
        ("bottom_256_128_64", 13, &[256, 128, 64]),
        ("top_256_64_1", 119, &[256, 64, 1]),
    ];
    for (name, input, widths) in shapes {
        for batch in [256usize, 1024] {
            let mut mlp = Mlp::new(input, widths, Activation::Relu, 1).unwrap();
            let flops = mlp.forward_flops(batch);
            let mut x = Matrix::zeros(batch, input);
            for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
                *v = (i as f32 * 0.1).sin();
            }
            group.throughput(Throughput::Elements(flops));
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/forward"), batch),
                &x,
                |b, x| {
                    b.iter(|| mlp.forward(black_box(x)).unwrap());
                },
            );
            let y = mlp.forward(&x).unwrap();
            let dy = Matrix::filled(y.rows(), y.cols(), 1.0);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/fwd_bwd"), batch),
                &x,
                |b, x| {
                    b.iter(|| {
                        mlp.forward(black_box(x)).unwrap();
                        mlp.backward(black_box(&dy)).unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mlp
}
criterion_main!(benches);

//! Criterion bench: the forward gather-reduce primitive.
//!
//! Ablations: fused vs unfused (the Fig. 2a footnote — fusion saves the
//! `n x D` intermediate) and serial vs parallel (the paper's tuned
//! multi-threaded baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tcast_datasets::{Popularity, TableWorkload};
use tcast_embedding::{
    gather, gather_reduce, gather_reduce_parallel, reduce_by_dst, EmbeddingTable,
};

fn bench_gather_reduce(c: &mut Criterion) {
    let dim = 64;
    let table = EmbeddingTable::seeded(100_000, dim, 1);
    let workload = TableWorkload::new(
        Popularity::Zipf {
            rows: 100_000,
            exponent: 1.05,
        },
        10,
    );
    let mut group = c.benchmark_group("gather_reduce");
    for batch in [512usize, 2048] {
        let index = workload.generator(7).next_batch(batch);
        let bytes = (index.len() * dim * 4) as u64;
        group.throughput(Throughput::Bytes(bytes));

        group.bench_with_input(BenchmarkId::new("fused", batch), &index, |b, idx| {
            b.iter(|| gather_reduce(black_box(&table), black_box(idx)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("unfused", batch), &index, |b, idx| {
            b.iter(|| {
                let g = gather(black_box(&table), black_box(idx)).unwrap();
                reduce_by_dst(&g, idx).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel4", batch), &index, |b, idx| {
            b.iter(|| gather_reduce_parallel(black_box(&table), black_box(idx), 4).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gather_reduce
}
criterion_main!(benches);

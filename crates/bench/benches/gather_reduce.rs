//! Bench: the forward gather-reduce primitive.
//!
//! Ablations: fused vs unfused (the Fig. 2a footnote — fusion saves the
//! `n x D` intermediate) and serial vs pool-parallel (the paper's tuned
//! multi-threaded baseline).

use std::hint::black_box;
use tcast_bench::harness::BenchGroup;
use tcast_datasets::{Popularity, TableWorkload};
use tcast_embedding::{
    gather, gather_reduce, gather_reduce_parallel, reduce_by_dst, EmbeddingTable,
};

fn main() {
    let dim = 64;
    let table = EmbeddingTable::seeded(100_000, dim, 1);
    let workload = TableWorkload::new(
        Popularity::Zipf {
            rows: 100_000,
            exponent: 1.05,
        },
        10,
    );
    let mut group = BenchGroup::new("gather_reduce");
    for batch in [512usize, 2048] {
        let index = workload.generator(7).next_batch(batch);
        let bytes = (index.len() * dim * 4) as u64;
        group.throughput_bytes(bytes);

        group.bench(&format!("fused/{batch}"), || {
            gather_reduce(black_box(&table), black_box(&index)).unwrap()
        });
        group.bench(&format!("unfused/{batch}"), || {
            let g = gather(black_box(&table), black_box(&index)).unwrap();
            reduce_by_dst(&g, &index).unwrap()
        });
        group.bench(&format!("parallel4/{batch}"), || {
            gather_reduce_parallel(black_box(&table), black_box(&index), 4).unwrap()
        });
    }
    group.finish();
}

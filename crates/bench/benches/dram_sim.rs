//! Criterion bench: DRAM-simulator throughput across address mappings and
//! row policies (the DESIGN.md mapping/policy ablation). Reported
//! criterion throughput here is simulator speed; the *simulated*
//! effective bandwidths are printed by `table1_memory`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcast_dram::{streams, AddressMapping, DramConfig, MemorySystem, RowPolicy};

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_sim");
    let rows: Vec<u32> = (0..2_000u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 100_000)
        .collect();
    let configs = [
        ("open_rowbank", AddressMapping::RowBankColumn, RowPolicy::Open),
        ("open_colfirst", AddressMapping::ColumnFirst, RowPolicy::Open),
        (
            "closed_bankint",
            AddressMapping::BankInterleaved,
            RowPolicy::Closed,
        ),
    ];
    for (name, mapping, policy) in configs {
        let cfg = DramConfig::ddr4_3200()
            .with_mapping(mapping)
            .with_row_policy(policy);
        group.bench_with_input(
            BenchmarkId::new("gather256B", name),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut mem = MemorySystem::new(cfg.clone());
                    mem.run_trace(streams::gather_reads(black_box(&rows), 256, 0))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("sequential", name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut mem = MemorySystem::new(cfg.clone());
                mem.run_trace(streams::sequential_reads(8_000))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dram
}
criterion_main!(benches);

//! Bench: DRAM-simulator throughput across address mappings and row
//! policies (the DESIGN.md mapping/policy ablation). Reported throughput
//! here is simulator speed; the *simulated* effective bandwidths are
//! printed by `table1_memory`.

use std::hint::black_box;
use tcast_bench::harness::BenchGroup;
use tcast_dram::{streams, AddressMapping, DramConfig, MemorySystem, RowPolicy};

fn main() {
    let mut group = BenchGroup::new("dram_sim");
    let rows: Vec<u32> = (0..2_000u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 100_000)
        .collect();
    let configs = [
        (
            "open_rowbank",
            AddressMapping::RowBankColumn,
            RowPolicy::Open,
        ),
        (
            "open_colfirst",
            AddressMapping::ColumnFirst,
            RowPolicy::Open,
        ),
        (
            "closed_bankint",
            AddressMapping::BankInterleaved,
            RowPolicy::Closed,
        ),
    ];
    for (name, mapping, policy) in configs {
        let cfg = DramConfig::ddr4_3200()
            .with_mapping(mapping)
            .with_row_policy(policy);
        group.bench(&format!("gather256B/{name}"), || {
            let mut mem = MemorySystem::new(cfg.clone());
            mem.run_trace(streams::gather_reads(black_box(&rows), 256, 0))
        });
        group.bench(&format!("sequential/{name}"), || {
            let mut mem = MemorySystem::new(cfg.clone());
            mem.run_trace(streams::sequential_reads(8_000))
        });
    }
    group.finish();
}

//! Minimal JSON-lines emission for machine-readable benchmark tracking.
//!
//! Every figure/bench binary can append rows to a `BENCH_*.json` file so
//! the performance trajectory of the repository is recorded as data, not
//! prose. Two entry points:
//!
//! * `repro_all --json [PATH]` exports `TCAST_BENCH_JSON` to its children
//!   so each figure binary (and any [`crate::harness::BenchGroup`])
//!   appends rows to one shared sink;
//! * `step_throughput` writes `BENCH_step.json` directly.
//!
//! No serde: rows are built with [`JsonRow`], a tiny escaping writer.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Environment variable naming the shared JSON-lines sink.
pub const JSON_ENV: &str = "TCAST_BENCH_JSON";

/// The sink path from [`JSON_ENV`], if exported and non-empty.
pub fn sink_from_env() -> Option<PathBuf> {
    match std::env::var(JSON_ENV) {
        Ok(path) if !path.is_empty() => Some(PathBuf::from(path)),
        _ => None,
    }
}

/// One JSON object, built field by field.
#[derive(Debug, Default, Clone)]
pub struct JsonRow {
    buf: String,
}

impl JsonRow {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        self.push_escaped(key);
        self.buf.push(':');
        self.push_escaped(value);
        self
    }

    /// Adds a float field (`null` for non-finite values).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.sep();
        self.push_escaped(key);
        self.buf.push(':');
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        self.push_escaped(key);
        self.buf.push(':');
        self.buf.push_str(&format!("{value}"));
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep();
        self.push_escaped(key);
        self.buf.push(':');
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// The serialized object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Appends `row` as one line to `path` (creating the file if needed).
///
/// # Errors
///
/// Propagates any I/O error from opening or writing the sink.
pub fn append_row(path: &Path, row: &JsonRow) -> std::io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{}", row.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_serializes_and_escapes() {
        let mut row = JsonRow::new();
        row.str_field("name", "a\"b\\c\nd")
            .f64_field("x", 1.5)
            .u64_field("n", 42)
            .bool_field("ok", true)
            .f64_field("bad", f64::NAN);
        assert_eq!(
            row.to_json(),
            r#"{"name":"a\"b\\c\nd","x":1.5,"n":42,"ok":true,"bad":null}"#
        );
    }

    #[test]
    fn empty_row_is_empty_object() {
        assert_eq!(JsonRow::new().to_json(), "{}");
    }

    #[test]
    fn append_creates_and_appends() {
        let path =
            std::env::temp_dir().join(format!("tcast_json_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut row = JsonRow::new();
        row.u64_field("a", 1);
        append_row(&path, &row).unwrap();
        append_row(&path, &row).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"a\":1}\n");
        let _ = std::fs::remove_file(&path);
    }
}

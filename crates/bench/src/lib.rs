//! Shared harness code for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index) and prints the same
//! rows/series the paper reports, normalized the same way. Run them all
//! with `cargo run -p tcast-bench --release --bin repro_all`.

pub mod harness;
pub mod json;

use tcast_system::{Calibration, DesignPoint, RmModel, SystemWorkload};

/// Prints a figure banner.
pub fn banner(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// The default batch sweep of Figs. 12-15.
pub const DEFAULT_BATCHES: [usize; 4] = [1024, 2048, 4096, 8192];

/// The Fig. 16 large-batch sweep.
pub const LARGE_BATCHES: [usize; 3] = [8192, 16384, 32768];

/// The Fig. 17 embedding-dimension sweep.
pub const DIM_SWEEP: [usize; 3] = [32, 128, 256];

/// Builds the standard workload grid `[model x batch]` at `dim`.
pub fn workload_grid(batches: &[usize], dim: usize) -> Vec<SystemWorkload> {
    let mut out = Vec::new();
    for model in RmModel::all() {
        for &batch in batches {
            out.push(SystemWorkload::build(model.clone(), batch, dim, 42));
        }
    }
    out
}

/// Formats a workload's grid label ("RM1 b2048").
pub fn grid_label(wl: &SystemWorkload) -> String {
    format!("{} b{}", wl.model.name, wl.batch)
}

/// Speedup of `design` over `baseline` on `wl`.
pub fn speedup(
    wl: &SystemWorkload,
    baseline: DesignPoint,
    design: DesignPoint,
    cal: &Calibration,
) -> f64 {
    let b = baseline.evaluate(wl, cal);
    let d = design.evaluate(wl, cal);
    b.total_ns / d.total_ns
}

/// `true` when the `FAST` environment variable requests reduced sweep
/// sizes (used by `repro_all` smoke runs and CI).
pub fn fast_mode() -> bool {
    std::env::var("FAST").map(|v| v != "0").unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_grid_covers_models_and_batches() {
        let grid = workload_grid(&[1024, 2048], 64);
        assert_eq!(grid.len(), 8);
        assert_eq!(grid_label(&grid[0]), "RM1 b1024");
    }

    #[test]
    fn speedup_of_design_against_itself_is_one() {
        let cal = Calibration::default();
        let wl = SystemWorkload::build(RmModel::rm1(), 1024, 64, 1);
        let s = speedup(
            &wl,
            DesignPoint::BaselineCpuGpu,
            DesignPoint::BaselineCpuGpu,
            &cal,
        );
        assert!((s - 1.0).abs() < 1e-12);
    }
}

//! Fig. 4: end-to-end training time broken down into the key forward and
//! backward steps for CPU-only and CPU-GPU, RM1-4 x batch 1024/2048/4096,
//! with total latency normalized to each model's fastest configuration.

use tcast_bench::{banner, grid_label};
use tcast_system::{render_table, Calibration, DesignPoint, PhaseKind, RmModel, SystemWorkload};

fn main() {
    banner(
        "Fig. 4",
        "Training-time breakdown, CPU-only vs CPU-GPU (RM1-4, b1024-4096)",
    );
    let cal = Calibration::default();
    let kinds = [
        PhaseKind::FwdGather,
        PhaseKind::FwdDnn,
        PhaseKind::BwdDnn,
        PhaseKind::BwdExpand,
        PhaseKind::BwdCoalesceSort,
        PhaseKind::BwdCoalesceAccu,
        PhaseKind::BwdScatter,
    ];
    let mut headers = vec!["config", "system"];
    headers.extend(kinds.iter().map(|k| k.label()));
    headers.push("emb-bwd %");
    headers.push("latency (norm)");

    for model in RmModel::all() {
        // Normalize to the model's fastest configuration (the paper uses
        // CPU-GPU b1024).
        let fastest = DesignPoint::BaselineCpuGpu
            .evaluate(&SystemWorkload::build(model.clone(), 1024, 64, 42), &cal)
            .total_ns;
        let mut rows = Vec::new();
        for batch in [1024usize, 2048, 4096] {
            let wl = SystemWorkload::build(model.clone(), batch, 64, 42);
            for dp in [DesignPoint::CpuOnly, DesignPoint::BaselineCpuGpu] {
                let e = dp.evaluate(&wl, &cal);
                let total = e.serial_sum_ns();
                let mut row = vec![grid_label(&wl), dp.name().to_string()];
                for k in kinds {
                    row.push(format!("{:.1}%", 100.0 * e.phase_ns(k) / total));
                }
                row.push(format!("{:.0}%", 100.0 * e.embedding_backward_fraction()));
                row.push(format!("{:.2}x", e.total_ns / fastest));
                rows.push(row);
            }
        }
        println!("{}", render_table(&headers, &rows));
    }
    println!("paper check: embedding backprop = 62-92% of CPU-centric time; MLPs <1% (RM1/2) and ~24% (RM3/4) under CPU-GPU.");
}

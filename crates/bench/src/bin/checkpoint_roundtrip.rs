//! Checkpoint round-trip cost and the exact-resume invariant: the
//! fault-tolerance subsystem's perf-trajectory anchor.
//!
//! Times the full-state checkpoint path end to end — atomic
//! save (serialize + CRC + fsync + rename) and load + restore into a
//! fresh trainer — and then *proves* the headline invariant on this
//! host: a run killed at a checkpoint and resumed continues
//! bit-identically (losses and table bits) to the uninterrupted run.
//! The `resume bit-identity: OK` line is what CI greps for.
//!
//! ```text
//! checkpoint_roundtrip [--steps N] [--json PATH]
//! ```
//!
//! `FAST=1` shrinks the model and step count for CI smoke jobs.
//! Appends rows (kind `checkpoint_roundtrip`) to `BENCH_train.json`
//! (override with `--json PATH` or `TCAST_BENCH_JSON`): checkpoint
//! bytes, save/load latency, and steps.

use std::path::PathBuf;
use std::time::Instant;

use tcast_bench::{banner, fast_mode, json};
use tcast_datasets::{SyntheticCtr, SyntheticSource};
use tcast_dlrm::checkpoint::{read_train_checkpoint, CheckpointStore};
use tcast_dlrm::{BackwardMode, DepthPolicy, DlrmConfig, EmbeddingOptimizer, TrainLoop, Trainer};

struct Args {
    steps: usize,
    json: PathBuf,
}

fn parse_args() -> Args {
    let fast = fast_mode();
    let mut args = Args {
        steps: if fast { 8 } else { 24 },
        json: json::sink_from_env().unwrap_or_else(|| PathBuf::from("BENCH_train.json")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--steps" => args.steps = value("--steps").parse().expect("--steps: integer"),
            "--json" => args.json = PathBuf::from(value("--json")),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.steps >= 4, "need at least 4 steps to split the run");
    args
}

fn model_config() -> DlrmConfig {
    if fast_mode() {
        DlrmConfig::tiny()
    } else {
        DlrmConfig::rm1_scaled(20_000)
    }
}

fn trainer(cfg: &DlrmConfig) -> Trainer {
    let mut t = Trainer::with_optimizer(
        cfg.clone(),
        BackwardMode::Casted,
        EmbeddingOptimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        },
        71,
    )
    .expect("valid config");
    t.set_learning_rate(0.01);
    t
}

fn source(cfg: &DlrmConfig, batch: usize) -> SyntheticSource {
    SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 37),
        batch,
    )
}

fn table_bits(t: &Trainer) -> Vec<Vec<u32>> {
    (0..t.model().num_tables())
        .map(|i| {
            t.model()
                .table(i)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

fn main() {
    let args = parse_args();
    banner(
        "checkpoint_roundtrip",
        "full-state checkpoint save/load cost + exact-resume proof",
    );
    let cfg = model_config();
    let batch = if fast_mode() { 64 } else { 256 };
    let dir = std::env::temp_dir().join(format!("tckp-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let kill_at = args.steps / 2;
    println!(
        "model: {} tables, dim {}; Adam, casted, depth 2; {} steps, kill at {kill_at}, batch {batch}",
        cfg.tables.len(),
        cfg.embedding_dim,
        args.steps
    );

    // --- Uninterrupted run: the reference trajectory. -----------------
    let mut reference = TrainLoop::new(trainer(&cfg), 2);
    let mut ref_src = source(&cfg, batch);
    let ref_summary = reference
        .run(&mut ref_src, args.steps)
        .expect("reference run");

    // --- Checkpointed run, killed at the midpoint. --------------------
    let store = CheckpointStore::new(&dir, 2).expect("checkpoint dir");
    let mut first = TrainLoop::new(trainer(&cfg), 2).checkpoint_every(kill_at as u64, store);
    let mut src = source(&cfg, batch);
    let t0 = Instant::now();
    let first_summary = first.run(&mut src, kill_at).expect("first half");
    let first_half_ns = t0.elapsed().as_nanos() as u64;
    let ckpt = first
        .last_checkpoint()
        .expect("checkpoint committed at the kill point")
        .to_path_buf();
    let bytes = std::fs::metadata(&ckpt).expect("checkpoint exists").len();
    drop(first);
    drop(src);

    // Load cost: parse + validate + restore into a fresh trainer.
    let t0 = Instant::now();
    let loaded =
        read_train_checkpoint(&mut std::fs::File::open(&ckpt).expect("open")).expect("parse");
    let parse_ns = t0.elapsed().as_nanos() as u64;
    let t0 = Instant::now();
    let mut restored_trainer = trainer(&cfg);
    loaded
        .restore_into(&mut restored_trainer)
        .expect("restore into fresh trainer");
    let restore_ns = t0.elapsed().as_nanos() as u64;

    // Save cost: commit the restored state once more, timed alone
    // (serialize + CRC + write + fsync + rename).
    let timed_store = CheckpointStore::new(dir.join("timed"), 1).expect("checkpoint dir");
    let t0 = Instant::now();
    timed_store
        .save(&restored_trainer, None, None)
        .expect("timed save");
    let save_ns = t0.elapsed().as_nanos() as u64;

    // --- Resume and compare against the reference, bit for bit. -------
    let mut resume_src = source(&cfg, batch);
    let mut resumed =
        TrainLoop::resume(&ckpt, trainer(&cfg), DepthPolicy::Fixed(2), &mut resume_src)
            .expect("resume");
    let resumed_summary = resumed
        .run(&mut resume_src, args.steps - kill_at)
        .expect("resumed half");

    let mut joined: Vec<u32> = first_summary.losses.iter().map(|l| l.to_bits()).collect();
    joined.extend(resumed_summary.losses.iter().map(|l| l.to_bits()));
    let reference_bits: Vec<u32> = ref_summary.losses.iter().map(|l| l.to_bits()).collect();
    let losses_match = joined == reference_bits;
    let tables_match = table_bits(resumed.trainer()) == table_bits(reference.trainer());
    println!(
        "checkpoint: {:.2} MB; save {:.2} ms (atomic, fsynced), parse {:.2} ms, restore {:.2} ms",
        bytes as f64 / 1e6,
        save_ns as f64 / 1e6,
        parse_ns as f64 / 1e6,
        restore_ns as f64 / 1e6,
    );
    println!(
        "first half ({kill_at} steps incl. checkpoint): {:.2} ms",
        first_half_ns as f64 / 1e6
    );
    if losses_match && tables_match {
        println!(
            "resume bit-identity: OK ({} steps, kill at {kill_at})",
            args.steps
        );
    } else {
        println!(
            "resume bit-identity: FAILED (losses match: {losses_match}, tables match: {tables_match})"
        );
    }

    let mut row = json::JsonRow::new();
    row.str_field("kind", "checkpoint_roundtrip")
        .u64_field("steps", args.steps as u64)
        .u64_field("kill_at", kill_at as u64)
        .u64_field("batch", batch as u64)
        .u64_field("bytes", bytes)
        .f64_field("save_ms", save_ns as f64 / 1e6)
        .f64_field("parse_ms", parse_ns as f64 / 1e6)
        .f64_field("restore_ms", restore_ns as f64 / 1e6)
        .str_field(
            "bit_identical",
            if losses_match && tables_match {
                "yes"
            } else {
                "no"
            },
        );
    if let Err(e) = json::append_row(&args.json, &row) {
        eprintln!(
            "[checkpoint_roundtrip] cannot write {}: {e}",
            args.json.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    if !(losses_match && tables_match) {
        std::process::exit(1);
    }
}

//! Per-kernel throughput: scalar vs runtime-dispatched SIMD tiers.
//!
//! Where `step_throughput` measures the end-to-end training step, this
//! binary isolates the individual hot kernels behind
//! [`tcast_tensor::simd::KernelDispatch`] and reports GFLOP/s (GEMM
//! family) and GB/s (gather/scatter family) for **every tier the host
//! supports**, on the bench suite's shapes: the MLP layer sizes, the
//! embedding dims {16, 32, 64}, and ragged non-multiple-of-8 shapes that
//! exercise the vector tails.
//!
//! Rows land in `BENCH_kernel.json` (override with `--json PATH` or
//! `TCAST_BENCH_JSON`); every row carries a `dispatch` field naming the
//! tier it measured, so the perf trajectory of each tier is separable.
//!
//! ```text
//! kernel_bench [--iters N] [--json PATH]
//! ```
//!
//! `FAST=1` shrinks shapes and iteration counts for smoke runs. The
//! "KERNEL <name> simd/scalar ratio" lines are CI's grep anchors.
//!
//! Full-size runs on multi-core hosts gate the dispatch layer's reason to
//! exist: AVX2 GEMM must reach at least 2x scalar and AVX2 gather-reduce
//! at least 1.2x scalar (single-core containers report without failing —
//! the SIMD win is per-core, but tiny containers throttle too
//! unpredictably to gate on).

use std::path::PathBuf;
use std::time::Instant;

use tcast_bench::{banner, fast_mode, json};
use tcast_core::{casted_gather_reduce_into, tensor_casting, CoalescedScratch};
use tcast_embedding::{
    gather_reduce_into, optim::Adagrad, scatter_apply, EmbeddingTable, IndexArray,
};
use tcast_pool::Exec;
use tcast_tensor::{simd, KernelDispatch, Matrix, SplitMix64};

struct Args {
    iters: usize,
    json: PathBuf,
}

fn parse_args() -> Args {
    let fast = fast_mode();
    let mut args = Args {
        iters: if fast { 3 } else { 30 },
        json: json::sink_from_env().unwrap_or_else(|| PathBuf::from("BENCH_kernel.json")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--iters" => args.iters = value("--iters").parse().expect("--iters: integer"),
            "--json" => args.json = PathBuf::from(value("--json")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.next_range(-1.0, 1.0);
    }
    m
}

/// Median-free timing: warm twice, then the mean over `iters` runs.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

struct Emitter {
    json: PathBuf,
}

impl Emitter {
    /// One measured row: `rate` is GFLOP/s for the GEMM family, GB/s for
    /// the gather/scatter family (`unit` labels which).
    #[allow(clippy::too_many_arguments)]
    fn row(
        &self,
        kernel: &str,
        dispatch: KernelDispatch,
        shape: &str,
        dim: usize,
        ns: f64,
        rate: f64,
        unit: &str,
    ) {
        println!(
            "  {kernel:<22} {:<6} {shape:<20} {ns:>12.0} ns  {rate:>8.2} {unit}",
            dispatch.name()
        );
        let mut row = json::JsonRow::new();
        row.str_field("kind", "kernel")
            .str_field("kernel", kernel)
            .str_field("dispatch", dispatch.name())
            .str_field("shape", shape)
            .u64_field("dim", dim as u64)
            .u64_field("cores", tcast_pool::default_parallelism() as u64)
            .bool_field("fast", fast_mode())
            .f64_field("ns_per_iter", ns)
            .f64_field(if unit == "GFLOP/s" { "gflops" } else { "gbps" }, rate);
        if let Err(e) = json::append_row(&self.json, &row) {
            eprintln!("[kernel_bench] cannot write {}: {e}", self.json.display());
        }
    }
}

/// ns-per-iter for each available tier, keyed by tier, for ratio lines.
fn tier_ns(f: &mut dyn FnMut(KernelDispatch) -> f64) -> Vec<(KernelDispatch, f64)> {
    KernelDispatch::available()
        .into_iter()
        .map(|d| (d, f(d)))
        .collect()
}

fn lookup_ns(rows: &[(KernelDispatch, f64)], want: KernelDispatch) -> Option<f64> {
    rows.iter().find(|(d, _)| *d == want).map(|&(_, ns)| ns)
}

/// Prints the CI grep anchor and returns the AVX2-vs-scalar speedup (None
/// when the host has no AVX2 tier).
fn ratio_line(name: &str, rows: &[(KernelDispatch, f64)]) -> Option<f64> {
    let scalar = lookup_ns(rows, KernelDispatch::Scalar)?;
    let simd = lookup_ns(rows, KernelDispatch::Avx2)?;
    let ratio = scalar / simd.max(1.0);
    println!("KERNEL {name} simd/scalar ratio {ratio:.2}");
    Some(ratio)
}

fn main() {
    let args = parse_args();
    banner(
        "kernel_bench",
        "per-kernel GFLOP/s and GB/s, scalar vs SIMD dispatch tiers",
    );
    let tiers = KernelDispatch::available();
    println!(
        "tiers {:?}, auto-detect {}, {} iters, host cores {}, sink {}",
        tiers.iter().map(|d| d.name()).collect::<Vec<_>>(),
        KernelDispatch::detect().name(),
        args.iters,
        tcast_pool::default_parallelism(),
        args.json.display()
    );
    let emit = Emitter {
        json: args.json.clone(),
    };
    let fast = fast_mode();

    // --- GEMM family: the MLP layer shapes of the step bench (batch x ---
    // dense stack) plus a ragged shape exercising every vector tail.
    let batch = if fast { 256 } else { 2048 };
    let gemm_shapes: Vec<(usize, usize, usize)> = vec![
        (batch, 13, 64), // bottom MLP entry layer
        (batch, 64, 64), // bottom MLP hidden layer
        (batch, 64, 32), // top MLP hidden layer
        (251, 67, 121),  // ragged: nothing divides 8
    ];
    println!("\nGEMM (c = a*b), {} iters:", args.iters);
    let mut gemm_ratio = None;
    for &(m, k, n) in &gemm_shapes {
        let a = random_matrix(m, k, 1);
        let b = random_matrix(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        let shape = format!("{m}x{k}x{n}");
        let rows = tier_ns(&mut |d| {
            time_ns(args.iters, || {
                c.zero_into(m, n);
                a.matmul_into_with(&b, &mut c, d).unwrap();
            })
        });
        for &(d, ns) in &rows {
            let gflops = 2.0 * (m * k * n) as f64 / ns;
            emit.row("gemm", d, &shape, n, ns, gflops, "GFLOP/s");
        }
        // Gate on the biggest regular layer, not the ragged tail shape.
        if (m, k, n) == (batch, 64, 64) {
            gemm_ratio = ratio_line("gemm", &rows);
        }
    }

    // gemm_at (a^T * b, the weight-gradient shape) and gemm_bt (a * b^T,
    // the input-gradient shape) on the hidden layer plus a ragged shape.
    let at_shapes: Vec<(usize, usize, usize)> = vec![(batch, 64, 64), (251, 67, 121)];
    println!("\nGEMM variants (a^T*b and a*b^T), {} iters:", args.iters);
    for &(r, m, n) in &at_shapes {
        // a: r x m, b: r x n -> a^T b: m x n.
        let a = random_matrix(r, m, 3);
        let b = random_matrix(r, n, 4);
        let mut c = Matrix::zeros(m, n);
        let shape = format!("{r}x{m}^T*{r}x{n}");
        let rows = tier_ns(&mut |d| {
            time_ns(args.iters, || {
                c.zero_into(m, n);
                a.matmul_at_into_with(&b, &mut c, d).unwrap();
            })
        });
        for &(d, ns) in &rows {
            let gflops = 2.0 * (r * m * n) as f64 / ns;
            emit.row("gemm_at", d, &shape, n, ns, gflops, "GFLOP/s");
        }
    }
    for &(m, n, k) in &at_shapes {
        // a: m x k, b: n x k -> a b^T: m x n.
        let a = random_matrix(m, k, 5);
        let b = random_matrix(n, k, 6);
        let mut c = Matrix::zeros(m, n);
        let shape = format!("{m}x{k}*{n}x{k}^T");
        let rows = tier_ns(&mut |d| {
            time_ns(args.iters, || {
                c.zero_into(m, n);
                a.matmul_bt_into_with(&b, &mut c, d).unwrap();
            })
        });
        for &(d, ns) in &rows {
            let gflops = 2.0 * (m * k * n) as f64 / ns;
            emit.row("gemm_bt", d, &shape, n, ns, gflops, "GFLOP/s");
        }
    }

    // --- Gather/scatter family: the embedding data plane. These go ------
    // through the process-wide dispatch, pinned per tier with
    // simd::force. dims: the bench suite's {16, 32, 64} plus a
    // non-multiple-of-8 width that stresses the scalar tail.
    let table_rows = if fast { 5_000 } else { 100_000 };
    let pooling = 10;
    let lookups = batch * pooling;
    let mut rng = SplitMix64::new(42);
    let samples: Vec<Vec<u32>> = (0..batch)
        .map(|_| {
            (0..pooling)
                .map(|_| rng.next_below(table_rows as u64) as u32)
                .collect()
        })
        .collect();
    let index = IndexArray::from_samples(&samples).unwrap();
    let casted = tensor_casting(&index);

    println!(
        "\ngather-reduce ({lookups} lookups over {table_rows} rows), {} iters:",
        args.iters
    );
    let mut gather_ratio = None;
    for dim in [16usize, 32, 64, 37] {
        let table = EmbeddingTable::seeded(table_rows, dim, 7);
        let mut out = Matrix::zeros(batch, dim);
        let shape = format!("b{batch} p{pooling} d{dim}");
        // Table-row read + output-row read/write per lookup.
        let bytes = (3 * lookups * dim * 4) as f64;
        let rows = tier_ns(&mut |d| {
            simd::force(Some(d));
            let ns = time_ns(args.iters, || {
                gather_reduce_into(&table, &index, &mut out, Exec::Serial).unwrap();
            });
            simd::force(None);
            ns
        });
        for &(d, ns) in &rows {
            emit.row("gather_reduce", d, &shape, dim, ns, bytes / ns, "GB/s");
        }
        if dim == 64 {
            gather_ratio = ratio_line("gather_reduce", &rows);
        }

        // The casted backward gather-reduce (Algorithm 3) on the same
        // workload: gradient rows in, coalesced rows out.
        let grads = random_matrix(batch, dim, 11);
        let mut scratch = CoalescedScratch::default();
        // Gradient-row read per lookup + coalesced-row read/write.
        let bytes = ((lookups + 2 * casted.num_unique()) * dim * 4) as f64;
        let rows = tier_ns(&mut |d| {
            simd::force(Some(d));
            let ns = time_ns(args.iters, || {
                casted_gather_reduce_into(&grads, &casted, &mut scratch, Exec::Serial).unwrap();
            });
            simd::force(None);
            ns
        });
        for &(d, ns) in &rows {
            emit.row(
                "casted_gather_reduce",
                d,
                &shape,
                dim,
                ns,
                bytes / ns,
                "GB/s",
            );
        }
    }

    // --- Optimizer scatter: one Adagrad update per coalesced row. -------
    // param read+write, grad read, accumulator read+write: 20 B/element.
    println!("\noptimizer scatter (adagrad), {} iters:", args.iters);
    let mut scatter_ratio = None;
    for dim in [16usize, 32, 64, 37] {
        let grads = random_matrix(batch, dim, 13);
        let mut scratch = CoalescedScratch::default();
        casted_gather_reduce_into(&grads, &casted, &mut scratch, Exec::Serial).unwrap();
        let coalesced =
            tcast_embedding::CoalescedGradients::new(scratch.rows.clone(), scratch.grads.clone())
                .unwrap();
        let unique = coalesced.len();
        let shape = format!("u{unique} d{dim}");
        let bytes = (unique * dim * 20) as f64;
        let rows = tier_ns(&mut |d| {
            let mut table = EmbeddingTable::seeded(table_rows, dim, 17);
            let mut opt = Adagrad::new(0.01, 1e-8);
            simd::force(Some(d));
            let ns = time_ns(args.iters, || {
                scatter_apply(&mut table, &coalesced, &mut opt).unwrap();
            });
            simd::force(None);
            ns
        });
        for &(d, ns) in &rows {
            emit.row("scatter_adagrad", d, &shape, dim, ns, bytes / ns, "GB/s");
        }
        if dim == 64 {
            scatter_ratio = ratio_line("scatter_adagrad", &rows);
        }
    }

    // --- Gates: full-size multi-core runs only. The SIMD win is --------
    // per-core, but 1-core containers throttle too unpredictably to
    // fail builds on; FAST shapes are too small to be stable.
    let gate = !fast && tcast_pool::default_parallelism() >= 2;
    if let Some(r) = gemm_ratio {
        if gate && r < 2.0 {
            eprintln!("[kernel_bench] WARNING: SIMD GEMM speedup {r:.2}x < 2x target");
            std::process::exit(1);
        }
    }
    if let Some(r) = gather_ratio {
        if gate && r < 1.2 {
            eprintln!("[kernel_bench] WARNING: SIMD gather-reduce speedup {r:.2}x < 1.2x target");
            std::process::exit(1);
        }
    }
    if let Some(r) = scatter_ratio {
        // Reported, not gated: the scatter is state-bandwidth-bound and
        // its SIMD headroom varies with the accumulator layout.
        println!("scatter simd/scalar: {r:.2}x (informational)");
    }
}

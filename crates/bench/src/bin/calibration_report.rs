//! Calibration report: prints the cost model's device parameters and
//! re-measures the pool efficiency factors on the cycle-level DRAM
//! simulator, side by side with the documented defaults — the provenance
//! audit for every number the figures depend on (DESIGN.md §6).

use tcast_bench::{banner, fast_mode};
use tcast_system::{render_table, Calibration};

fn main() {
    banner(
        "Calibration",
        "Documented device parameters vs DRAM-simulator re-measurement",
    );
    let default = Calibration::default();
    let sample = if fast_mode() { 2_048 } else { 16_384 };
    let measured = Calibration::default().from_dram_sim(sample);

    let rows = vec![
        vec![
            "CPU memory (peak)".into(),
            format!("{:.1} GB/s", default.cpu_mem_gbps),
            "paper Fig. 3".into(),
        ],
        vec![
            "GPU HBM (peak)".into(),
            format!("{:.1} GB/s", default.gpu_mem_gbps),
            "V100 datasheet".into(),
        ],
        vec![
            "PCIe".into(),
            format!("{:.1} GB/s", default.pcie_gbps),
            "gen3 x16".into(),
        ],
        vec![
            "pool link".into(),
            format!("{:.1} GB/s", default.pool_link_gbps),
            "paper Section V".into(),
        ],
        vec![
            "pool peak".into(),
            format!("{:.1} GB/s", default.pool_peak_gbps()),
            "Table I (32 x 25.6)".into(),
        ],
        vec![
            "pool gather efficiency".into(),
            format!(
                "{:.3} documented / {:.3} measured",
                default.pool_gather_eff, measured.pool_gather_eff
            ),
            "tcast-dram, 64 B random gathers".into(),
        ],
        vec![
            "pool RMW efficiency".into(),
            format!(
                "{:.3} documented / {:.3} measured",
                default.pool_rmw_eff, measured.pool_rmw_eff
            ),
            "tcast-dram, read-modify-write".into(),
        ],
        vec![
            "pool stream efficiency".into(),
            format!(
                "{:.3} documented / {:.3} measured",
                default.pool_stream_eff, measured.pool_stream_eff
            ),
            "tcast-dram, sequential writes".into(),
        ],
        vec![
            "effective pool gather bw".into(),
            format!("{:.0} GB/s", default.pool_gather_gbps()),
            "paper: >600 GB/s".into(),
        ],
    ];
    println!(
        "{}",
        render_table(&["parameter", "value", "provenance"], &rows)
    );
    println!(
        "rerun any figure with measured efficiencies via Calibration::default().from_dram_sim(n)."
    );
}

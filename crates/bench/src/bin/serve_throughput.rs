//! Serving throughput and tail latency under the batching policies: the
//! `tcast-serve` subsystem's perf-trajectory anchor.
//!
//! Sweeps policy x fused-batch-size x SLA over a seeded hot-query
//! workload against an MLP-heavy serving model (inference cost is
//! dominated by the dense stack — the DeepRecSys regime), appending
//! machine-readable rows to `BENCH_serve.json` (override with `--json
//! PATH` or `TCAST_BENCH_JSON`). Each row carries policy, batch cap,
//! SLA, achieved QPS, p50/p95/p99 latency, SLA-violation rate, mean
//! fused batch, casting-cache hit rate and host core count.
//!
//! ```text
//! serve_throughput [--queries N] [--catalog C] [--threads T] [--json PATH]
//! ```
//!
//! `FAST=1` shrinks the run for CI smoke jobs.
//!
//! The headline metric is the **fused-batch QPS ratio**: on full-size
//! runs, batched serving (B >= 32) must reach >= 2x the QPS of batch-1
//! serving at the same model config on a >= 2-core host. Fusion wins
//! twice: it amortizes the MLP weight traffic every batch-1 query
//! re-streams, and it is what makes the GEMMs wide enough to dispatch
//! onto the `tcast-pool` workers at all (a batch-1 GEMM runs serially
//! on any machine). On a 1-core host only the amortization term
//! remains, so the gate there is a strict-win floor (>= 1.1x); FAST
//! smoke runs report the ratio without gating.

use std::path::PathBuf;
use std::time::Instant;

use tcast_bench::{banner, fast_mode, json};
use tcast_datasets::{BatchSource, PrefetchSource, SyntheticCtr, SyntheticSource};
use tcast_dlrm::checkpoint::save_train_checkpoint;
use tcast_dlrm::{BackwardMode, Dlrm, DlrmConfig, Execution, TableConfig, TrainLoop, Trainer};
use tcast_serve::{
    run_fleet, serve, serve_concurrent, serve_online, AdaptiveBatcher, ArrivalProcess, BatchPolicy,
    CandidateCount, ConcurrentConfig, ConcurrentReport, FleetConfig, FleetReport, HotRestore,
    OnlineConfig, OnlineReport, PoolCostModel, PopularityShift, PublishCadence, QueryModel,
    RateCurve, ServeConfig, ServeEngine, ServeReport, SnapshotStore, Tenant, TenantSpec,
};

#[derive(Clone)]
struct Args {
    queries: usize,
    catalog: usize,
    threads: usize,
    json: PathBuf,
}

fn parse_args() -> Args {
    let fast = fast_mode();
    let mut args = Args {
        queries: if fast { 192 } else { 2048 },
        catalog: if fast { 64 } else { 512 },
        threads: tcast_pool::default_parallelism(),
        json: json::sink_from_env().unwrap_or_else(|| PathBuf::from("BENCH_serve.json")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--queries" => args.queries = value("--queries").parse().expect("--queries: integer"),
            "--catalog" => args.catalog = value("--catalog").parse().expect("--catalog: integer"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--json" => args.json = PathBuf::from(value("--json")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The serving model: four Zipf tables at the paper's default dimension
/// plus *wide* MLP stacks (~2.7 MB of weights). Inference cost sits in
/// the dense stack, so a batch-1 query re-streams every weight matrix
/// for a single candidate sample — the regime where fusing queries pays.
fn serve_model_config() -> DlrmConfig {
    DlrmConfig {
        dense_features: 13,
        embedding_dim: 64,
        tables: vec![
            TableConfig {
                rows: 60_000,
                pooling: 6,
                zipf_exponent: 1.05,
            };
            4
        ],
        bottom_mlp: vec![1024, 512, 64],
        top_mlp: vec![512, 128, 1],
        interaction: tcast_tensor::InteractionKind::Dot,
    }
}

/// The online-training model: the same four Zipf tables but a lean
/// dense stack, so casted update steps are embedding-bound and cheap
/// enough to interleave with serving at full batch size. (The wide-MLP
/// serving model above exists to show fused-batch amortization; an
/// online section on it would spend the whole run inside GEMMs.)
fn online_model_config() -> DlrmConfig {
    DlrmConfig {
        dense_features: 13,
        embedding_dim: 64,
        tables: vec![
            TableConfig {
                rows: 60_000,
                pooling: 6,
                zipf_exponent: 1.05,
            };
            4
        ],
        bottom_mlp: vec![64, 64],
        top_mlp: vec![64, 32, 1],
        interaction: tcast_tensor::InteractionKind::Dot,
    }
}

fn workload(args: &Args, seed: u64) -> QueryModel {
    let cfg = serve_model_config();
    QueryModel::new(
        &cfg.table_workloads(),
        cfg.dense_features,
        args.catalog,
        CandidateCount::Fixed(1),
        1.1,
        seed,
    )
}

/// One throughput-oriented run: closed-loop clients keep the queue fed
/// (so the policy's batch cap, not the arrival rate, decides fusion).
fn run_policy(
    args: &Args,
    model: &Dlrm,
    execution: &Execution,
    policy: BatchPolicy,
    sla_ns: u64,
) -> ServeReport {
    run_policy_shed(args, model, execution, policy, sla_ns, false)
}

fn run_policy_shed(
    args: &Args,
    model: &Dlrm,
    execution: &Execution,
    policy: BatchPolicy,
    sla_ns: u64,
    shed_unmeetable: bool,
) -> ServeReport {
    let mut engine = ServeEngine::new(model, 1024, execution.clone());
    let clients = match &policy {
        BatchPolicy::Fixed { batch } => (batch * 4).max(8),
        _ => 64,
    };
    let mut wl = workload(args, 17);
    serve(
        &mut engine,
        model,
        &mut wl,
        &ServeConfig {
            queries: args.queries,
            arrivals: ArrivalProcess::ClosedLoop {
                clients,
                think_ns: 0,
            },
            policy,
            sla_ns,
            seed: 23,
            shed_unmeetable,
        },
    )
    .expect("serving must succeed")
}

/// The online section's fused-batch size and update cadence, shared by
/// the run and its JSON row so the emitted provenance cannot drift from
/// the configuration that produced it.
const ONLINE_BATCH: usize = 32;
const ONLINE_UPDATE_EVERY: usize = 4;

/// One online-training run: casted update steps interleaved with fused
/// serving, the training batches drawn from a live `SyntheticSource` —
/// inline (generation paid inside the update slot) or wrapped in a
/// `PrefetchSource` (a producer thread generates ahead, overlapping
/// both serving and update slots).
fn run_online(
    args: &Args,
    execution: &Execution,
    train_batch: usize,
    prefetch: bool,
    sla_ns: u64,
) -> (ServeReport, OnlineReport) {
    run_online_restore(args, execution, train_batch, prefetch, sla_ns, None)
}

fn run_online_restore(
    args: &Args,
    execution: &Execution,
    train_batch: usize,
    prefetch: bool,
    sla_ns: u64,
    restore: Option<HotRestore>,
) -> (ServeReport, OnlineReport) {
    let cfg = online_model_config();
    let mut trainer = Trainer::with_execution(
        cfg.clone(),
        BackwardMode::Casted,
        tcast_dlrm::EmbeddingOptimizer::Sgd,
        execution.clone(),
        91,
    )
    .expect("valid online config");
    let inner = SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 29),
        train_batch,
    );
    let mut wl = QueryModel::new(
        &cfg.table_workloads(),
        cfg.dense_features,
        args.catalog,
        CandidateCount::Fixed(1),
        1.1,
        17,
    );
    let mut engine = ServeEngine::new(trainer.model(), 1024, execution.clone());
    let serve_cfg = ServeConfig {
        queries: args.queries,
        arrivals: ArrivalProcess::ClosedLoop {
            clients: 64,
            think_ns: 0,
        },
        policy: BatchPolicy::Fixed {
            batch: ONLINE_BATCH,
        },
        sla_ns,
        seed: 23,
        shed_unmeetable: false,
    };
    let online = OnlineConfig {
        update_every: ONLINE_UPDATE_EVERY,
        restore,
    };
    let mut inline;
    let mut prefetched;
    let source: &mut dyn tcast_datasets::BatchSource = if prefetch {
        prefetched = PrefetchSource::new(inner, 2);
        &mut prefetched
    } else {
        inline = inner;
        &mut inline
    };
    serve_online(
        &mut engine,
        &mut trainer,
        source,
        &mut wl,
        &serve_cfg,
        online,
    )
    .expect("online serving must succeed")
}

fn emit_online(args: &Args, prefetch: bool, sla_ns: u64, r: &ServeReport, o: &OnlineReport) {
    let per_update = |total_ns: u64| total_ns as f64 / o.updates.max(1) as f64 / 1e3;
    println!(
        "  online    prefetch {:<3}  {:>9.1} qps  ({} updates, generation {:>8.1} us/update, \
         train {:>8.1} us/update, staleness mean {:.2})",
        if prefetch { "on" } else { "off" },
        r.qps(),
        o.updates,
        per_update(o.gen_ns),
        per_update(o.train_ns),
        o.mean_staleness(),
    );
    let mut row = json::JsonRow::new();
    row.str_field("kind", "serve_online")
        .str_field("policy", "fixed")
        .str_field("prefetch", if prefetch { "on" } else { "off" })
        .u64_field("batch_cap", ONLINE_BATCH as u64)
        .u64_field("sla_ns", sla_ns)
        .u64_field("queries", r.queries)
        .u64_field("updates", o.updates)
        .u64_field("cores", tcast_pool::default_parallelism() as u64)
        .u64_field("threads", args.threads as u64)
        .f64_field("qps", r.qps())
        .f64_field("p99_us", r.latency.p99_ns() as f64 / 1e3)
        .f64_field("gen_us_per_update", per_update(o.gen_ns))
        .f64_field("train_us_per_update", per_update(o.train_ns))
        .f64_field("mean_staleness", o.mean_staleness())
        .f64_field("sla_violation_rate", r.sla_violation_rate());
    if let Err(e) = json::append_row(&args.json, &row) {
        eprintln!(
            "[serve_throughput] cannot write {}: {e}",
            args.json.display()
        );
    }
}

/// The concurrent section's publish cadence: one snapshot every K
/// casted steps, mirroring the online section's update rhythm.
const CONCURRENT_SNAPSHOT_EVERY: usize = 4;

/// One concurrent train-and-serve run: a `TrainLoop` publishes
/// epoch-versioned snapshots into a `SnapshotStore` while `engines`
/// serve engines score them from separate pool workers. Kernels stay
/// serial on every task — the concurrency axis here is the fleet,
/// scheduled by the scope pool, not intra-batch GEMM parallelism.
fn run_concurrent(
    args: &Args,
    engines: usize,
    train_batch: usize,
    train_steps: usize,
    sla_ns: u64,
) -> ConcurrentReport {
    let cfg = online_model_config();
    let trainer = Trainer::with_execution(
        cfg.clone(),
        BackwardMode::Casted,
        tcast_dlrm::EmbeddingOptimizer::Sgd,
        Execution::Serial,
        91,
    )
    .expect("valid online config");
    let mut driver = TrainLoop::new(trainer, 2);
    let store = SnapshotStore::new(driver.trainer().model(), 0, 4);
    let mut source = SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 29),
        train_batch,
    );
    let mut workloads: Vec<QueryModel> = (0..engines)
        .map(|i| {
            QueryModel::new(
                &cfg.table_workloads(),
                cfg.dense_features,
                args.catalog,
                CandidateCount::Fixed(1),
                1.1,
                17 + i as u64,
            )
        })
        .collect();
    let pool = tcast_pool::Pool::new(engines + 1);
    let mut config = ConcurrentConfig::new(
        (args.queries / engines).max(ONLINE_BATCH),
        ONLINE_BATCH,
        train_steps,
        CONCURRENT_SNAPSHOT_EVERY,
    );
    config.staleness_bound = 1;
    config.sla_ns = sla_ns;
    serve_concurrent(
        &mut driver,
        &mut source,
        &store,
        &mut workloads,
        &pool,
        &config,
    )
    .expect("concurrent serving must succeed")
}

fn emit_concurrent(
    args: &Args,
    engines: usize,
    sla_ns: u64,
    rep: &ConcurrentReport,
    solo_sps: f64,
) {
    let sps = rep.train.steps_per_sec();
    println!(
        "  concurrent x{engines}  {:>9.1} qps  p99 {:>7.0} us  model age p99 {:>7.2} ms  \
         staleness mean {:.2} / max {}  trainer {:>7.1} steps/s ({:.0}% of solo)",
        rep.fleet.qps(),
        rep.fleet.latency.p99_ns() as f64 / 1e3,
        rep.freshness.p99_model_age_ns() as f64 / 1e6,
        rep.freshness.mean_staleness_versions(),
        rep.freshness.max_staleness_versions(),
        sps,
        100.0 * sps / solo_sps.max(1e-9),
    );
    let mut row = json::JsonRow::new();
    row.str_field("kind", "serve_concurrent")
        .u64_field("concurrency", engines as u64)
        .u64_field("snapshot_every", CONCURRENT_SNAPSHOT_EVERY as u64)
        .u64_field("batch_cap", ONLINE_BATCH as u64)
        .u64_field("sla_ns", sla_ns)
        .u64_field("queries", rep.fleet.queries)
        .u64_field("batches", rep.fleet.batches)
        .u64_field("train_steps", rep.train.steps)
        .u64_field("publishes", rep.train.publishes)
        .u64_field(
            "max_staleness_versions",
            rep.freshness.max_staleness_versions(),
        )
        .u64_field("cores", tcast_pool::default_parallelism() as u64)
        .u64_field("threads", args.threads as u64)
        .f64_field("qps", rep.fleet.qps())
        .f64_field("p99_us", rep.fleet.latency.p99_ns() as f64 / 1e3)
        .f64_field(
            "model_age_p99_us",
            rep.freshness.p99_model_age_ns() as f64 / 1e3,
        )
        .f64_field(
            "mean_staleness_versions",
            rep.freshness.mean_staleness_versions(),
        )
        .f64_field("train_steps_per_sec", sps)
        .f64_field("solo_train_steps_per_sec", solo_sps)
        .f64_field("sla_violation_rate", rep.fleet.sla_violation_rate());
    if let Err(e) = json::append_row(&args.json, &row) {
        eprintln!(
            "[serve_throughput] cannot write {}: {e}",
            args.json.display()
        );
    }
}

/// The fleet scenario's quiet tenant: steady load, deadline batching, a
/// 6 ms SLA with shedding on — the tenant whose tail the isolation gate
/// protects. Per-spec seeds keep its arrival schedule identical whether
/// it runs solo (the baseline) or next to the flash crowd.
fn quiet_tenant_spec() -> TenantSpec {
    let queries = if fast_mode() { 120 } else { 600 };
    TenantSpec {
        name: "quiet".to_string(),
        weight: 1,
        queries,
        arrivals: RateCurve::Constant { qps: 3_000.0 },
        policy: BatchPolicy::Deadline {
            max_batch: 8,
            max_wait_ns: 500_000,
        },
        sla_ns: 6_000_000,
        shed_unmeetable: true,
        seed: 404,
        publish: Some(PublishCadence::new(8_000_000, 1_000_000)),
        popularity_shift: None,
    }
}

/// The fleet scenario's aggressor: an 80x flash crowd mid-run plus a
/// popularity shift that churns its casting cache, under adaptive
/// batching. The spike runs ~2x over its lane's pool capacity (a batch
/// of 16 costs 450 us under `fleet_cost`, ~35.5k qps), so it *must*
/// shed or violate — the gate below checks the stress was real. Its
/// publish cadence is staggered against the quiet tenant's.
fn flashy_tenant_spec() -> TenantSpec {
    let (queries, spike_start, spike_len) = if fast_mode() {
        (400, 5_000_000, 10_000_000)
    } else {
        (2_400, 10_000_000, 30_000_000)
    };
    TenantSpec {
        name: "flashy".to_string(),
        weight: 1,
        queries,
        arrivals: RateCurve::FlashCrowd {
            base_qps: 1_000.0,
            spike_qps: 80_000.0,
            start_ns: spike_start,
            duration_ns: spike_len,
        },
        policy: BatchPolicy::Adaptive(AdaptiveBatcher::new(4_000_000, 16, 400_000)),
        sla_ns: 4_000_000,
        shed_unmeetable: true,
        seed: 505,
        publish: Some(PublishCadence::new(8_000_000, 5_000_000)),
        popularity_shift: Some(PopularityShift {
            at_ns: spike_start + spike_len / 2,
            rotation: 32,
        }),
    }
}

fn fleet_tenant(args: &Args, spec: TenantSpec, model_seed: u64) -> Tenant {
    let cfg = online_model_config();
    let model = Dlrm::new(cfg.clone(), model_seed).expect("valid fleet model");
    let workload = QueryModel::new(
        &cfg.table_workloads(),
        cfg.dense_features,
        args.catalog,
        CandidateCount::Fixed(1),
        1.1,
        spec.seed,
    );
    Tenant::new(spec, &model, workload)
}

/// The fleet's simulated batch cost, loosely calibrated to the lean
/// model: the quiet tenant's 3k qps fits comfortably, the 40k qps
/// flash crowd is ~2x over pool capacity and must shed.
fn fleet_cost() -> PoolCostModel {
    PoolCostModel {
        batch_overhead_ns: 50_000,
        ns_per_sample: 25_000,
    }
}

fn run_fleet_scenario(args: &Args, specs: Vec<(TenantSpec, u64)>) -> FleetReport {
    let mut tenants: Vec<Tenant> = specs
        .into_iter()
        .map(|(spec, model_seed)| fleet_tenant(args, spec, model_seed))
        .collect();
    let config = FleetConfig {
        cost: fleet_cost(),
        ..FleetConfig::default()
    };
    run_fleet(&mut tenants, &config).expect("fleet must serve")
}

fn emit_fleet(args: &Args, scenario: &str, tenants: usize, report: &FleetReport) {
    for t in &report.tenants {
        println!(
            "  fleet[{scenario}] {:<7} w{} {:>9.1} qps  p99 {:>7.0} us  viol {:>5.1}%  \
             shed {:>5.1}%  pool {:>5.1}%  cache hit {:>5.1}%  {} publishes",
            t.name,
            t.weight,
            t.serve.qps(),
            t.serve.latency.p99_ns() as f64 / 1e3,
            100.0 * t.serve.sla_violation_rate(),
            100.0 * t.serve.shed_rate(),
            100.0 * t.pool_share,
            100.0 * t.serve.cache_hit_rate,
            t.publishes,
        );
        let mut row = json::JsonRow::new();
        row.str_field("kind", "serve_fleet")
            .str_field("scenario", scenario)
            .str_field("tenant", &t.name)
            .u64_field("tenants", tenants as u64)
            .u64_field("weight", t.weight)
            .u64_field("queries", t.serve.queries)
            .u64_field("batches", t.serve.batches)
            .u64_field("sla_ns", t.serve.sla_ns)
            .u64_field("publishes", t.publishes)
            .u64_field("cache_evictions", t.cache_evictions)
            .u64_field("cores", tcast_pool::default_parallelism() as u64)
            .u64_field("threads", args.threads as u64)
            .f64_field("qps", t.serve.qps())
            .f64_field("p99_us", t.serve.latency.p99_ns() as f64 / 1e3)
            .f64_field("sla_violation_rate", t.serve.sla_violation_rate())
            .f64_field("shed_rate", t.serve.shed_rate())
            .f64_field("pool_share", t.pool_share)
            .f64_field("cache_hit_rate", t.serve.cache_hit_rate)
            .f64_field(
                "model_age_p99_us",
                t.freshness.p99_model_age_ns() as f64 / 1e3,
            );
        if let Err(e) = json::append_row(&args.json, &row) {
            eprintln!(
                "[serve_throughput] cannot write {}: {e}",
                args.json.display()
            );
        }
    }
}

fn emit(args: &Args, policy: &str, batch_cap: usize, sla_ns: u64, r: &ServeReport) {
    println!(
        "  {policy:<9} B<={batch_cap:<3} sla {:>6} us  {:>9.1} qps  (p50 {:>7.0} us, p95 {:>7.0} us, \
         p99 {:>7.0} us, viol {:>5.1}%, mean batch {:>5.1}, cache hit {:>5.1}%)",
        sla_ns / 1000,
        r.qps(),
        r.latency.p50_ns() as f64 / 1e3,
        r.latency.p95_ns() as f64 / 1e3,
        r.latency.p99_ns() as f64 / 1e3,
        100.0 * r.sla_violation_rate(),
        r.mean_batch(),
        100.0 * r.cache_hit_rate,
    );
    let mut row = json::JsonRow::new();
    row.str_field("kind", "serve_throughput")
        .str_field("policy", policy)
        .u64_field("batch_cap", batch_cap as u64)
        .u64_field("sla_ns", sla_ns)
        .u64_field("queries", r.queries)
        .u64_field("samples", r.samples)
        .u64_field("batches", r.batches)
        .u64_field("cores", tcast_pool::default_parallelism() as u64)
        .u64_field("threads", args.threads as u64)
        .f64_field("qps", r.qps())
        .f64_field("p50_us", r.latency.p50_ns() as f64 / 1e3)
        .f64_field("p95_us", r.latency.p95_ns() as f64 / 1e3)
        .f64_field("p99_us", r.latency.p99_ns() as f64 / 1e3)
        .f64_field("mean_service_us", r.service.mean_ns() / 1e3)
        .f64_field("sla_violation_rate", r.sla_violation_rate())
        .f64_field("mean_batch", r.mean_batch())
        .f64_field("cache_hit_rate", r.cache_hit_rate)
        .u64_field("max_queue_depth", r.max_queue_depth as u64)
        .u64_field("shed", r.shed)
        .f64_field("shed_rate", r.shed_rate());
    if let Err(e) = json::append_row(&args.json, &row) {
        eprintln!(
            "[serve_throughput] cannot write {}: {e}",
            args.json.display()
        );
    }
}

fn main() {
    let args = parse_args();
    banner(
        "serve_throughput",
        "SLA-aware batched inference serving: policy x batch x SLA sweep",
    );
    let cfg = serve_model_config();
    println!(
        "model: {} tables x {} rows, dim {}, bottom {:?}, top {:?}; {} queries, catalog {}, \
         host cores {}, sink {}",
        cfg.tables.len(),
        cfg.tables[0].rows,
        cfg.embedding_dim,
        cfg.bottom_mlp,
        cfg.top_mlp,
        args.queries,
        args.catalog,
        tcast_pool::default_parallelism(),
        args.json.display()
    );
    let model = Dlrm::new(cfg, 91).expect("valid config");
    // Pooled execution: fused batches are what *unlock* the pool — a
    // batch-1 GEMM is below the pooled-dispatch row threshold and runs
    // serially no matter how many workers exist, while a fused batch
    // spreads its GEMMs across them. On a 1-core host the pool degrades
    // to the serial schedule (bit-identical scores either way) and only
    // the weight-traffic amortization remains.
    let execution = if args.threads > 1 {
        Execution::Pooled(std::sync::Arc::new(tcast_pool::Pool::new(args.threads)))
    } else {
        Execution::Serial
    };
    let sla_ns = 20_000_000u64; // 20 ms, generous for the fixed sweep

    // --- Fixed-size sweep: the fused-batch amortization curve. --------
    println!("\nfixed-size batching (closed-loop, queue always fed):");
    let batches: &[usize] = if fast_mode() {
        &[1, 32]
    } else {
        &[1, 8, 32, 64]
    };
    let mut by_batch = Vec::new();
    for &b in batches {
        let r = run_policy(
            &args,
            &model,
            &execution,
            BatchPolicy::Fixed { batch: b },
            sla_ns,
        );
        emit(&args, "fixed", b, sla_ns, &r);
        by_batch.push((b, r));
    }

    // --- Deadline batching. -------------------------------------------
    println!("\ndeadline batching:");
    let r = run_policy(
        &args,
        &model,
        &execution,
        BatchPolicy::Deadline {
            max_batch: 32,
            max_wait_ns: 2_000_000,
        },
        sla_ns,
    );
    emit(&args, "deadline", 32, sla_ns, &r);

    // --- Adaptive batching across SLA targets. ------------------------
    println!("\nadaptive batching (hill-climbing toward the SLA):");
    let slas: &[u64] = if fast_mode() {
        &[10_000_000]
    } else {
        &[2_000_000, 10_000_000, 50_000_000]
    };
    for &sla in slas {
        let r = run_policy(
            &args,
            &model,
            &execution,
            BatchPolicy::Adaptive(AdaptiveBatcher::new(sla, 64, sla / 4)),
            sla,
        );
        emit(&args, "adaptive", 64, sla, &r);
    }

    // --- Overload shedding: graceful degradation under an SLA the ----
    // service time alone cannot meet. Without shedding the queue only
    // grows and every query violates; with shedding the loop spends its
    // compute on the queries still inside their budget and *counts*
    // what it dropped.
    println!("\noverload shedding (deliberately unmeetable SLA, shed_unmeetable on):");
    let tight_sla = 50_000u64; // 50 us, far below fused service time
    let r = run_policy_shed(
        &args,
        &model,
        &execution,
        BatchPolicy::Fixed { batch: 32 },
        tight_sla,
        true,
    );
    emit(&args, "fixed+shed", 32, tight_sla, &r);
    println!(
        "  shed {} of {} queries ({:.1}%) instead of scoring them late",
        r.shed,
        r.queries,
        100.0 * r.shed_rate(),
    );

    // --- Online training: update-slot generation, inline vs prefetch. -
    // One casted update step every 4 fused batches, training batches
    // from a live synthetic source. Inline, the update slot pays batch
    // generation before it can even start the step; a `PrefetchSource`
    // producer generates ahead during the serving batches, so the slot
    // finds its batch already waiting and `gen_us_per_update` collapses
    // toward zero.
    let train_batch = if fast_mode() { 512 } else { 2048 };
    println!(
        "\nonline training (lean-MLP model, casted update every {ONLINE_UPDATE_EVERY} fused \
         batches, train batch {train_batch}):"
    );
    let (r_off, o_off) = run_online(&args, &execution, train_batch, false, sla_ns);
    emit_online(&args, false, sla_ns, &r_off, &o_off);
    let (r_on, o_on) = run_online(&args, &execution, train_batch, true, sla_ns);
    emit_online(&args, true, sla_ns, &r_on, &o_on);
    let per_update = |o: &OnlineReport| o.gen_ns as f64 / o.updates.max(1) as f64 / 1e3;
    println!(
        "update-slot generation: inline {:.1} us/update -> prefetched {:.1} us/update",
        per_update(&o_off),
        per_update(&o_on),
    );

    // --- Hot-restore drill: a checkpoint snaps into the live trainer -
    // mid-traffic, with the restore's wall-clock latency charged to the
    // serving clock.
    let ckpt_path =
        std::env::temp_dir().join(format!("tcast-serve-restore-{}.tckp", std::process::id()));
    {
        let cfg = online_model_config();
        let mut t = Trainer::with_execution(
            cfg.clone(),
            BackwardMode::Casted,
            tcast_dlrm::EmbeddingOptimizer::Sgd,
            execution.clone(),
            91,
        )
        .expect("valid online config");
        let mut src = SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 29),
            train_batch,
        );
        for _ in 0..2 {
            let b = src.next_batch().expect("endless source");
            t.step(&b).expect("training step");
            src.recycle(b);
        }
        let mut f = std::fs::File::create(&ckpt_path).expect("create checkpoint file");
        save_train_checkpoint(&mut f, &t, None, None).expect("save checkpoint");
    }
    let (r_restore, o_restore) = run_online_restore(
        &args,
        &execution,
        train_batch,
        true,
        sla_ns,
        Some(HotRestore {
            path: ckpt_path.clone(),
            // FAST traffic only reaches one update slot, so arm the first
            // one there; full runs restore a little deeper into the run.
            at_update: if fast_mode() { 1 } else { 2 },
        }),
    );
    let restore_ms = r_restore.restore_ns as f64 / 1e6;
    println!(
        "hot-restore drill: {} restore(s) mid-traffic, {restore_ms:.2} ms restore latency, \
         {:.1} qps with the drill, {} updates",
        r_restore.restores,
        r_restore.qps(),
        o_restore.updates,
    );
    let mut row = json::JsonRow::new();
    row.str_field("kind", "serve_restore")
        .u64_field("queries", r_restore.queries)
        .u64_field("updates", o_restore.updates)
        .u64_field("restores", r_restore.restores)
        .f64_field("restore_ms", restore_ms)
        .f64_field("qps", r_restore.qps())
        .f64_field("p99_us", r_restore.latency.p99_ns() as f64 / 1e3);
    if let Err(e) = json::append_row(&args.json, &row) {
        eprintln!(
            "[serve_throughput] cannot write {}: {e}",
            args.json.display()
        );
    }
    let _ = std::fs::remove_file(&ckpt_path);

    // --- Concurrent train-and-serve: the concurrency axis. ------------
    // The trainer and an engine fleet run simultaneously, trading model
    // state only through the epoch-versioned `SnapshotStore` (publish
    // every K casted steps, staleness bound 1 version). The interleaved
    // online mode above is the oracle this mode is property-tested
    // against: a batch served at version V scores bit-identically to
    // the offline trainer at V's step count (tests/concurrent_serving.rs).
    let concurrent_steps = if fast_mode() { 8 } else { 64 };
    println!(
        "\nconcurrent train-and-serve (snapshot every {CONCURRENT_SNAPSHOT_EVERY} casted steps, \
         staleness bound 1, train batch {train_batch}):"
    );
    // Solo-training baseline: the same TrainLoop with no engine fleet
    // competing, for the trainer-retention bound below.
    let solo_sps = {
        let cfg = online_model_config();
        let trainer = Trainer::with_execution(
            cfg.clone(),
            BackwardMode::Casted,
            tcast_dlrm::EmbeddingOptimizer::Sgd,
            Execution::Serial,
            91,
        )
        .expect("valid online config");
        let mut driver = TrainLoop::new(trainer, 2);
        let mut src = SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 29),
            train_batch,
        );
        let t0 = Instant::now();
        driver
            .run(&mut src, concurrent_steps)
            .expect("solo training");
        concurrent_steps as f64 / t0.elapsed().as_secs_f64()
    };
    let fleet_sizes: &[usize] = if fast_mode() { &[1, 2] } else { &[1, 2, 4] };
    let mut two_engine: Option<ConcurrentReport> = None;
    for &engines in fleet_sizes {
        let rep = run_concurrent(&args, engines, train_batch, concurrent_steps, sla_ns);
        emit_concurrent(&args, engines, sla_ns, &rep, solo_sps);
        if engines == 2 {
            two_engine = Some(rep);
        }
    }
    let two = two_engine.expect("fleet sweep includes 2 engines");
    println!(
        "concurrent vs interleaved QPS (2 engines vs online prefetch): {:.1} vs {:.1} \
         ({:.2}x); model age p99 {:.2} ms",
        two.fleet.qps(),
        r_on.qps(),
        two.fleet.qps() / r_on.qps().max(1e-9),
        two.freshness.p99_model_age_ns() as f64 / 1e6,
    );
    // Trainer retention under concurrent serving. On >= 2 cores the
    // trainer gets a worker to itself while the fleet scores flat out,
    // so it must keep at least 25% of its solo steps/s (the snapshot
    // copy plus cache pressure are the only taxes). A 1-core host
    // timeshares trainer and engines on one core — report-only there.
    let retention = two.train.steps_per_sec() / solo_sps.max(1e-9);
    println!(
        "trainer retention under concurrent serving: {:.1} steps/s vs solo {:.1} steps/s \
         ({:.0}%)",
        two.train.steps_per_sec(),
        solo_sps,
        100.0 * retention,
    );
    if !fast_mode()
        && tcast_pool::default_parallelism() >= 2
        && args.threads >= 2
        && retention < 0.25
    {
        eprintln!(
            "[serve_throughput] WARNING: concurrent serving dragged the trainer to \
             {:.0}% of solo steps/s (target >= 25% on a multi-core host)",
            100.0 * retention
        );
        std::process::exit(1);
    }

    // --- Multi-tenant fleet: per-tenant SLA isolation. ----------------
    // A quiet tenant (steady 3k qps, 6 ms SLA) first runs solo as its
    // own baseline, then next to a flash-crowd tenant (40x spike plus a
    // mid-run popularity shift) over the same pool, under the
    // virtual-time weighted-fair scheduler. The flash crowd must
    // overload its own lane without dragging the quiet tenant's tail or
    // shed rate past the solo baseline. The whole scenario is a
    // deterministic simulation over `PoolCostModel`, so the duo run is
    // also replayed and compared bit-for-bit.
    println!("\nmulti-tenant fleet (weighted-fair pool sharing, per-tenant SLAs):");
    let solo_report = run_fleet_scenario(&args, vec![(quiet_tenant_spec(), 91)]);
    emit_fleet(&args, "solo", 1, &solo_report);
    let duo_specs = || vec![(quiet_tenant_spec(), 91), (flashy_tenant_spec(), 137)];
    let duo_report = run_fleet_scenario(&args, duo_specs());
    emit_fleet(&args, "flash-crowd", 2, &duo_report);
    let fleet_digest = |r: &FleetReport| {
        r.tenants
            .iter()
            .map(|t| {
                (
                    t.pool_ns,
                    t.serve.batches,
                    t.serve.shed,
                    t.serve.sla_violations,
                    t.serve.latency.p99_ns(),
                    t.freshness.versions.clone(),
                )
            })
            .collect::<Vec<_>>()
    };
    let replay = run_fleet_scenario(&args, duo_specs());
    let deterministic =
        replay.span_ns == duo_report.span_ns && fleet_digest(&replay) == fleet_digest(&duo_report);
    println!(
        "fleet scheduler determinism: replay {} (span {} ns, {} pool-ns charged)",
        if deterministic {
            "bit-identical"
        } else {
            "DIVERGED"
        },
        duo_report.span_ns,
        duo_report.tenants.iter().map(|t| t.pool_ns).sum::<u64>(),
    );
    let solo_quiet = solo_report.tenant("quiet").expect("solo quiet tenant");
    let duo_quiet = duo_report.tenant("quiet").expect("duo quiet tenant");
    let flashy = duo_report.tenant("flashy").expect("flashy tenant");
    let solo_p99 = solo_quiet.serve.latency.p99_ns();
    let duo_p99 = duo_quiet.serve.latency.p99_ns();
    let p99_bound = 2 * solo_p99 + 1_000_000;
    let shed_bound = solo_quiet.serve.shed_rate() + 0.05;
    let stressed = flashy.serve.shed > 0 || flashy.serve.sla_violations > 0;
    let isolated = duo_p99 <= p99_bound && duo_quiet.serve.shed_rate() <= shed_bound;
    println!(
        "per-tenant SLA isolation: {} — quiet p99 {:.0} us solo -> {:.0} us beside the flash \
         crowd (bound {:.0} us), shed {:.1}% -> {:.1}% (bound {:.1}%), aggressor shed {:.1}%",
        if isolated { "held" } else { "BROKEN" },
        solo_p99 as f64 / 1e3,
        duo_p99 as f64 / 1e3,
        p99_bound as f64 / 1e3,
        100.0 * solo_quiet.serve.shed_rate(),
        100.0 * duo_quiet.serve.shed_rate(),
        100.0 * shed_bound,
        100.0 * flashy.serve.shed_rate(),
    );
    let mut row = json::JsonRow::new();
    row.str_field("kind", "serve_fleet_isolation")
        .u64_field("tenants", 2)
        .u64_field("solo_p99_ns", solo_p99)
        .u64_field("duo_p99_ns", duo_p99)
        .u64_field("p99_bound_ns", p99_bound)
        .u64_field("cores", tcast_pool::default_parallelism() as u64)
        .u64_field("threads", args.threads as u64)
        .f64_field("solo_shed_rate", solo_quiet.serve.shed_rate())
        .f64_field("duo_shed_rate", duo_quiet.serve.shed_rate())
        .f64_field("aggressor_shed_rate", flashy.serve.shed_rate())
        .str_field("isolated", if isolated { "yes" } else { "no" })
        .str_field("deterministic", if deterministic { "yes" } else { "no" });
    if let Err(e) = json::append_row(&args.json, &row) {
        eprintln!(
            "[serve_throughput] cannot write {}: {e}",
            args.json.display()
        );
    }
    // Determinism gates unconditionally: the fleet clock is simulated,
    // so host speed and core count cannot excuse a diverged replay.
    if !deterministic {
        eprintln!("[serve_throughput] WARNING: fleet replay diverged on identical specs");
        std::process::exit(1);
    }
    // The isolation gate is full-size multi-core only (report-only on a
    // 1-core host or FAST smoke), matching the other serve-plane gates.
    if !fast_mode() && tcast_pool::default_parallelism() >= 2 && args.threads >= 2 {
        if !stressed {
            eprintln!(
                "[serve_throughput] WARNING: the flash-crowd tenant never stressed the pool \
                 (no shed, no violations) — the isolation check proved nothing"
            );
            std::process::exit(1);
        }
        if !isolated {
            eprintln!(
                "[serve_throughput] WARNING: flash crowd broke tenant isolation — quiet p99 \
                 {duo_p99} ns vs bound {p99_bound} ns, shed {:.3} vs bound {:.3}",
                duo_quiet.serve.shed_rate(),
                shed_bound,
            );
            std::process::exit(1);
        }
    }

    // --- The headline ratio + full-size gate. -------------------------
    let qps_of = |target: usize| {
        by_batch
            .iter()
            .find(|(b, _)| *b == target)
            .map(|(_, r)| r.qps())
            .expect("swept batch size")
    };
    let ratio = qps_of(32) / qps_of(1);
    let cores = tcast_pool::default_parallelism();
    println!(
        "\nfused batch QPS ratio (B=32 vs B=1): {ratio:.2}x \
         ({:.1} qps vs {:.1} qps, {} threads on {} core(s))",
        qps_of(32),
        qps_of(1),
        args.threads,
        cores
    );
    // Full-size gate. On >= 2 cores the fused batch must reach 2x: it
    // both amortizes the weight traffic and is what lets the GEMMs use
    // the pool at all. A 1-core host only sees the amortization term
    // (how much depends on its cache/bandwidth balance), so the gate
    // there is a floor: fusing must still be a strict win.
    let target = if cores >= 2 && args.threads >= 2 {
        2.0
    } else {
        1.10
    };
    if !fast_mode() && ratio < target {
        eprintln!(
            "[serve_throughput] WARNING: batched serving reached only {ratio:.2}x the \
             batch-1 QPS (target >= {target}x at {} threads on {cores} core(s))",
            args.threads
        );
        std::process::exit(1);
    }
}

//! Pool-scaling study (DESIGN.md ablation 5): how the Ours(NMP) speedup
//! grows with the number of pool ranks, and where it saturates — the
//! design knob behind Table I's choice of 32.

use tcast_bench::banner;
use tcast_system::{render_table, sweeps, Calibration, RmModel};

fn main() {
    banner(
        "Pool scaling",
        "Ours(NMP) speedup over Baseline(CPU) vs pool rank count (b2048, dim 64)",
    );
    let cal = Calibration::default();
    let ranks = [4usize, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for model in RmModel::all() {
        let series = sweeps::rank_sweep(&model, &ranks, &cal);
        let mut row = vec![model.name.to_string()];
        for (_, v) in &series.points {
            row.push(format!("{v:.2}x"));
        }
        rows.push(row);
    }
    let mut headers = vec!["model"];
    let labels: Vec<String> = ranks.iter().map(|r| format!("{r} ranks")).collect();
    headers.extend(labels.iter().map(String::as_str));
    println!("{}", render_table(&headers, &rows));
    println!("takeaway: returns diminish past Table I's 32 ranks — the non-embedding phases (DNN, link, exposed casting) take over.");
}

//! Runs every table/figure reproduction in sequence (the full
//! EXPERIMENTS.md regeneration). Respects `FAST=1` for a quick pass.

use std::process::Command;

const BINS: [&str; 12] = [
    "table1_memory",
    "table2_models",
    "fig04_breakdown",
    "fig05_locality",
    "fig06_traffic",
    "fig09_timeline",
    "fig12_latency",
    "fig13_speedup",
    "fig14_energy",
    "fig15_utilization",
    "fig16_batch_sweep",
    "fig17_dim_sweep",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory").to_path_buf();
    let mut failures = Vec::new();
    for bin in BINS.iter().chain(["sweep_link"].iter()) {
        let path = dir.join(bin);
        if !path.exists() {
            eprintln!("[repro_all] skipping {bin}: not built (run `cargo build -p tcast-bench --release --bins`)");
            continue;
        }
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("[repro_all] {bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("[repro_all] failed to launch {bin}: {e}");
                failures.push(*bin);
            }
        }
        println!();
    }
    if failures.is_empty() {
        println!("[repro_all] all reproductions completed");
    } else {
        eprintln!("[repro_all] failures: {failures:?}");
        std::process::exit(1);
    }
}

//! Runs every table/figure reproduction in sequence (the full
//! EXPERIMENTS.md regeneration). Respects `FAST=1` for a quick pass.
//!
//! With `--json [PATH]` (default `BENCH_repro.json`), the sink path is
//! exported as `TCAST_BENCH_JSON` to every child, so any binary using
//! `tcast_bench::json` (the micro-benches, `step_throughput`, and any
//! figure binary that opts in) appends machine-readable rows to one
//! shared JSON-lines file.

use std::process::Command;

use tcast_bench::json::JSON_ENV;

const BINS: [&str; 12] = [
    "table1_memory",
    "table2_models",
    "fig04_breakdown",
    "fig05_locality",
    "fig06_traffic",
    "fig09_timeline",
    "fig12_latency",
    "fig13_speedup",
    "fig14_energy",
    "fig15_utilization",
    "fig16_batch_sweep",
    "fig17_dim_sweep",
];

const EXTRA_BINS: [&str; 2] = ["sweep_link", "step_throughput"];

fn parse_json_sink() -> Option<String> {
    let mut args = std::env::args().skip(1).peekable();
    while let Some(flag) = args.next() {
        if flag == "--json" {
            // Optional value: `--json custom.json` or bare `--json`.
            let path = match args.peek() {
                Some(v) if !v.starts_with("--") => args.next().expect("peeked"),
                _ => "BENCH_repro.json".to_string(),
            };
            return Some(path);
        }
    }
    // Inherit an externally exported sink unchanged.
    std::env::var(JSON_ENV).ok().filter(|v| !v.is_empty())
}

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory").to_path_buf();
    let json_sink = parse_json_sink();
    if let Some(path) = &json_sink {
        println!("[repro_all] appending machine-readable rows to {path}");
    }
    let mut failures = Vec::new();
    for bin in BINS.iter().chain(EXTRA_BINS.iter()) {
        let path = dir.join(bin);
        if !path.exists() {
            eprintln!("[repro_all] skipping {bin}: not built (run `cargo build -p tcast-bench --release --bins`)");
            continue;
        }
        let mut command = Command::new(&path);
        if let Some(sink) = &json_sink {
            command.env(JSON_ENV, sink);
        }
        let status = command.status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("[repro_all] {bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("[repro_all] failed to launch {bin}: {e}");
                failures.push(*bin);
            }
        }
        println!();
    }
    if failures.is_empty() {
        println!("[repro_all] all reproductions completed");
    } else {
        eprintln!("[repro_all] failures: {failures:?}");
        std::process::exit(1);
    }
}

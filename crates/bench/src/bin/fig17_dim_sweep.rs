//! Fig. 17: Tensor Casting sensitivity to the embedding vector dimension
//! (32/128/256 alongside the default 64).

use tcast_bench::{banner, speedup, DIM_SWEEP};
use tcast_system::{render_table, Calibration, DesignPoint, RmModel, SystemWorkload};

fn main() {
    banner(
        "Fig. 17",
        "Sensitivity to embedding vector size (dim 32/128/256)",
    );
    let cal = Calibration::default();
    let mut rows = Vec::new();
    for model in RmModel::all() {
        for &dim in &DIM_SWEEP {
            let wl = SystemWorkload::build(model.clone(), 2048, dim, 42);
            let cpu = speedup(&wl, DesignPoint::BaselineCpuGpu, DesignPoint::OursCpu, &cal);
            let nmp = speedup(&wl, DesignPoint::BaselineCpuGpu, DesignPoint::OursNmp, &cal);
            rows.push(vec![
                format!("{} dim{dim}", model.name),
                "1.00x".into(),
                format!("{cpu:.2}x"),
                format!("{nmp:.2}x"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["config", "Baseline", "Ours(CPU)", "Ours(NMP)"], &rows)
    );
    println!("paper check: speedups remain significant across all embedding widths (robustness claim of Section VI-D).");
}

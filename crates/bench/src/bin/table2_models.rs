//! Table II: recommendation model configurations (RM1-RM4).

use tcast_bench::banner;
use tcast_system::{render_table, RmModel};

fn main() {
    banner("Table II", "Recommendation model configurations");
    let rows: Vec<Vec<String>> = RmModel::all()
        .into_iter()
        .map(|m| {
            let fmt = |v: &[usize]| {
                v.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("-")
            };
            vec![
                m.name.to_string(),
                m.tables.to_string(),
                m.pooling.to_string(),
                fmt(&m.bottom_mlp),
                fmt(&m.top_mlp),
                if m.embedding_intensive {
                    "embedding".into()
                } else {
                    "MLP".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Model",
                "# of Tables",
                "Gathers/table",
                "Bottom MLP",
                "Top MLP",
                "intensive"
            ],
            &rows,
        )
    );
}

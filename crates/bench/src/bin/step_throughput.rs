//! End-to-end training-step throughput: serial vs pooled execution of
//! the casted (and baseline) DLRM training step, with per-phase timings.
//!
//! This is the repository's perf-trajectory anchor: it appends
//! machine-readable rows to `BENCH_step.json` (override with
//! `--json PATH` or the `TCAST_BENCH_JSON` environment variable) so
//! every future optimization PR can be compared against recorded data.
//!
//! ```text
//! step_throughput [--batch N] [--dim D] [--steps S] [--threads T] [--json PATH]
//! ```
//!
//! Defaults: batch 4096, dim 64, 20 measured steps (2 warm-up), threads =
//! `available_parallelism`, sink `BENCH_step.json`. `FAST=1` shrinks the
//! run for smoke tests (batch 512, 4 steps).
//!
//! The pooled/serial speedup is hardware-dependent: on a multi-core host
//! the pooled casted step must reach >= 1.5x serial at >= 4 workers; on a
//! single-core container both schedules collapse to the same wall clock
//! (the row records `cores` so readers can tell which regime produced
//! it).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use std::sync::Arc;
use tcast_bench::{banner, fast_mode, json};
use tcast_datasets::SyntheticCtr;
use tcast_dlrm::{
    BackwardMode, DlrmConfig, EmbeddingOptimizer, Execution, PhaseTimings, TableConfig, Trainer,
};
use tcast_pool::Pool;

struct Args {
    batch: usize,
    dim: usize,
    steps: usize,
    threads: usize,
    json: PathBuf,
}

fn parse_args() -> Args {
    let fast = fast_mode();
    let mut args = Args {
        batch: if fast { 512 } else { 4096 },
        dim: 64,
        steps: if fast { 4 } else { 20 },
        threads: tcast_pool::default_parallelism(),
        json: json::sink_from_env().unwrap_or_else(|| PathBuf::from("BENCH_step.json")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--batch" => args.batch = value("--batch").parse().expect("--batch: integer"),
            "--dim" => args.dim = value("--dim").parse().expect("--dim: integer"),
            "--steps" => args.steps = value("--steps").parse().expect("--steps: integer"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--json" => args.json = PathBuf::from(value("--json")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A table-heavy config at the paper's default embedding dimension: four
/// Zipf tables, pooling 10 — the regime where embedding backward
/// dominates (Fig. 4's 62-92%).
fn bench_config(dim: usize) -> DlrmConfig {
    DlrmConfig {
        dense_features: 13,
        embedding_dim: dim,
        tables: vec![
            TableConfig {
                rows: 100_000,
                pooling: 10,
                zipf_exponent: 1.05,
            };
            4
        ],
        bottom_mlp: vec![64, dim],
        top_mlp: vec![64, 32, 1],
        interaction: tcast_tensor::InteractionKind::Dot,
    }
}

struct Measurement {
    steps_per_s: f64,
    phases: PhaseTimings,
}

fn measure(mode: BackwardMode, execution: Execution, args: &Args) -> Measurement {
    let config = bench_config(args.dim);
    let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 42);
    let mut trainer =
        Trainer::with_execution(config, mode, EmbeddingOptimizer::Sgd, execution, 7).unwrap();
    // One fixed batch: measures compute, not the generator.
    let batch = data.next_batch(args.batch);
    for _ in 0..2 {
        trainer.step(&batch).unwrap(); // warm-up: size scratch, warm pool
    }
    let mut phases = PhaseTimings::default();
    let t0 = Instant::now();
    for _ in 0..args.steps {
        let report = trainer.step(&batch).unwrap();
        let t = report.timings;
        phases.fwd_gather += t.fwd_gather;
        phases.fwd_dnn += t.fwd_dnn;
        phases.bwd_dnn += t.bwd_dnn;
        phases.bwd_embedding += t.bwd_embedding;
        phases.bwd_scatter += t.bwd_scatter;
    }
    let wall = t0.elapsed();
    Measurement {
        steps_per_s: args.steps as f64 / wall.as_secs_f64(),
        phases,
    }
}

fn phase_ns(d: Duration, steps: usize) -> f64 {
    d.as_secs_f64() * 1e9 / steps as f64
}

fn emit(args: &Args, mode: &str, sched: &str, threads: usize, m: &Measurement) {
    println!(
        "  {mode:<8} {sched:<22} {:>8.2} steps/s  (gather {:>10.0} ns, dnn {:>10.0} ns, \
         bwd_dnn {:>10.0} ns, bwd_emb {:>10.0} ns, scatter {:>10.0} ns)",
        m.steps_per_s,
        phase_ns(m.phases.fwd_gather, args.steps),
        phase_ns(m.phases.fwd_dnn, args.steps),
        phase_ns(m.phases.bwd_dnn, args.steps),
        phase_ns(m.phases.bwd_embedding, args.steps),
        phase_ns(m.phases.bwd_scatter, args.steps),
    );
    let mut row = json::JsonRow::new();
    row.str_field("kind", "step_throughput")
        .str_field("mode", mode)
        .str_field("schedule", sched)
        .u64_field("threads", threads as u64)
        .u64_field("cores", tcast_pool::default_parallelism() as u64)
        .u64_field("batch", args.batch as u64)
        .u64_field("dim", args.dim as u64)
        .u64_field("steps", args.steps as u64)
        .f64_field("steps_per_s", m.steps_per_s)
        .f64_field("fwd_gather_ns", phase_ns(m.phases.fwd_gather, args.steps))
        .f64_field("fwd_dnn_ns", phase_ns(m.phases.fwd_dnn, args.steps))
        .f64_field("bwd_dnn_ns", phase_ns(m.phases.bwd_dnn, args.steps))
        .f64_field(
            "bwd_embedding_ns",
            phase_ns(m.phases.bwd_embedding, args.steps),
        )
        .f64_field("bwd_scatter_ns", phase_ns(m.phases.bwd_scatter, args.steps));
    if let Err(e) = json::append_row(&args.json, &row) {
        eprintln!(
            "[step_throughput] cannot write {}: {e}",
            args.json.display()
        );
    }
}

fn main() {
    let args = parse_args();
    banner(
        "step_throughput",
        "end-to-end DLRM training-step throughput, serial vs pooled",
    );
    println!(
        "batch {}, dim {}, {} measured steps, pool threads {}, host cores {}, sink {}",
        args.batch,
        args.dim,
        args.steps,
        args.threads,
        tcast_pool::default_parallelism(),
        args.json.display()
    );

    let pool = Arc::new(Pool::new(args.threads));

    let serial_casted = measure(BackwardMode::Casted, Execution::Serial, &args);
    emit(&args, "casted", "serial", 1, &serial_casted);
    let pooled_casted = measure(
        BackwardMode::Casted,
        Execution::Pooled(Arc::clone(&pool)),
        &args,
    );
    emit(&args, "casted", "pooled", args.threads, &pooled_casted);

    let serial_baseline = measure(BackwardMode::Baseline, Execution::Serial, &args);
    emit(&args, "baseline", "serial", 1, &serial_baseline);
    let pooled_baseline = measure(
        BackwardMode::Baseline,
        Execution::Pooled(Arc::clone(&pool)),
        &args,
    );
    emit(&args, "baseline", "pooled", args.threads, &pooled_baseline);

    let speedup = pooled_casted.steps_per_s / serial_casted.steps_per_s;
    let casted_vs_baseline = serial_casted.steps_per_s / serial_baseline.steps_per_s;
    println!(
        "\npooled/serial (casted): {speedup:.2}x at {} threads on {} core(s); \
         casted/baseline (serial): {casted_vs_baseline:.2}x",
        args.threads,
        tcast_pool::default_parallelism()
    );
    // The scatter phase is band-parallel since the splittable-optimizer
    // refactor; report its serial/pooled ratio so multi-core CI runners
    // track it alongside the end-to-end speedup (>1 means the pooled
    // scatter is faster).
    let scatter_ratio = |serial: &Measurement, pooled: &Measurement| {
        phase_ns(serial.phases.bwd_scatter, args.steps)
            / phase_ns(pooled.phases.bwd_scatter, args.steps).max(1.0)
    };
    println!(
        "bwd_scatter serial/pooled: casted {:.2}x, baseline {:.2}x",
        scatter_ratio(&serial_casted, &pooled_casted),
        scatter_ratio(&serial_baseline, &pooled_baseline),
    );
    // The 1.5x gate only applies to full-size measurement runs: FAST
    // smoke batches are too small for the pool to amortize dispatch, so
    // CI smoke jobs report the ratios without failing on them.
    if !fast_mode() && tcast_pool::default_parallelism() >= 4 && args.threads >= 4 && speedup < 1.5
    {
        eprintln!(
            "[step_throughput] WARNING: pooled speedup {speedup:.2}x < 1.5x target on a \
             >=4-core host"
        );
        std::process::exit(1);
    }
}

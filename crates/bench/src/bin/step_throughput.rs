//! End-to-end training-step throughput: serial vs pooled execution of
//! the casted (and baseline) DLRM training step, with per-phase timings —
//! plus a **pipeline-depth axis**: the cross-batch `TrainLoop` driver at
//! depths 0..4, recording how much casting latency each lookahead depth
//! leaves exposed (the Fig. 9b hidden-fraction metric).
//!
//! This is the repository's perf-trajectory anchor: it appends
//! machine-readable rows to `BENCH_step.json` (override with
//! `--json PATH` or the `TCAST_BENCH_JSON` environment variable) so
//! every future optimization PR can be compared against recorded data.
//! Every row carries `pipeline_depth`, `hidden_fraction` and
//! `exposed_wait_ns`.
//!
//! ```text
//! step_throughput [--batch N] [--dim D] [--steps S] [--threads T] [--json PATH]
//! ```
//!
//! Defaults: batch 4096, dim 64, 20 measured steps (2 warm-up), threads =
//! `available_parallelism`, sink `BENCH_step.json`. `FAST=1` shrinks the
//! run for smoke tests (batch 512, 4 steps, depths {0, 2}).
//!
//! The pooled/serial speedup is hardware-dependent: on a multi-core host
//! the pooled casted step must reach >= 1.5x serial at >= 4 workers; on a
//! single-core container both schedules collapse to the same wall clock
//! (the row records `cores` so readers can tell which regime produced
//! it). The exposed-wait collapse is *not* hardware-dependent: on
//! full-size runs depth >= 2 must strictly reduce the total exposed wait
//! vs depth 0, on any core count.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use std::sync::Arc;
use tcast_bench::{banner, fast_mode, json};
use tcast_datasets::{BatchSource, CtrBatch, PrefetchSource, SyntheticCtr, SyntheticSource};
use tcast_dlrm::{
    AdaptiveDepth, BackwardMode, DepthPolicy, DlrmConfig, EmbeddingOptimizer, Execution,
    PhaseTimings, ShardSpec, TableConfig, TrainLoop, Trainer,
};
use tcast_pool::Pool;

#[derive(Clone)]
struct Args {
    batch: usize,
    dim: usize,
    steps: usize,
    threads: usize,
    json: PathBuf,
}

fn parse_args() -> Args {
    let fast = fast_mode();
    let mut args = Args {
        batch: if fast { 512 } else { 4096 },
        dim: 64,
        steps: if fast { 4 } else { 20 },
        threads: tcast_pool::default_parallelism(),
        json: json::sink_from_env().unwrap_or_else(|| PathBuf::from("BENCH_step.json")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--batch" => args.batch = value("--batch").parse().expect("--batch: integer"),
            "--dim" => args.dim = value("--dim").parse().expect("--dim: integer"),
            "--steps" => args.steps = value("--steps").parse().expect("--steps: integer"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--json" => args.json = PathBuf::from(value("--json")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A table-heavy config at the paper's default embedding dimension: four
/// Zipf tables, pooling 10 — the regime where embedding backward
/// dominates (Fig. 4's 62-92%).
fn bench_config(dim: usize) -> DlrmConfig {
    DlrmConfig {
        dense_features: 13,
        embedding_dim: dim,
        tables: vec![
            TableConfig {
                rows: 100_000,
                pooling: 10,
                zipf_exponent: 1.05,
            };
            4
        ],
        bottom_mlp: vec![64, dim],
        top_mlp: vec![64, 32, 1],
        interaction: tcast_tensor::InteractionKind::Dot,
    }
}

struct Measurement {
    steps_per_s: f64,
    phases: PhaseTimings,
    /// Casting latency left exposed across the measured steps (zero in
    /// baseline mode, which casts nothing).
    exposed_wait: Duration,
    /// Fraction of the measured steps' casting time hidden under
    /// training work (1.0 = fully hidden / nothing to hide).
    hidden_fraction: f64,
    /// Time the driver blocked in the source's `next_batch` — exposed
    /// batch-generation latency. Zero for the fixed-batch
    /// measurements (no source at all); sub-microsecond hand-off cost
    /// for the ring rows (an `Arc` clone, no generation); the real
    /// generation wait only on the live-source prefetch axis.
    gen_wait: Duration,
    /// Mean lookahead depth across the run (equals the pinned depth
    /// under a fixed policy; the controller trajectory's mean under the
    /// adaptive one).
    mean_depth: f64,
}

fn measure(mode: BackwardMode, execution: Execution, args: &Args) -> Measurement {
    measure_sharded(mode, execution, 1, args)
}

/// [`measure`] over a row-range sharded trainer: same batch, same
/// trajectory (sharded == unsharded, bit for bit), different placement —
/// per-shard optimizer slabs, per-shard casting jobs, shard-concurrent
/// scatter.
fn measure_sharded(
    mode: BackwardMode,
    execution: Execution,
    shards: usize,
    args: &Args,
) -> Measurement {
    let config = bench_config(args.dim);
    let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 42);
    let mut trainer = Trainer::with_sharding(
        config,
        mode,
        EmbeddingOptimizer::Sgd,
        execution,
        ShardSpec::new(shards),
        7,
    )
    .unwrap();
    // One fixed batch: measures compute, not the generator.
    let batch = data.next_batch(args.batch);
    for _ in 0..2 {
        trainer.step(&batch).unwrap(); // warm-up: size scratch, warm pool
    }
    let stats_before = trainer.pipeline_stats().unwrap_or_default();
    let mut phases = PhaseTimings::default();
    let mut exposed_wait = Duration::ZERO;
    let t0 = Instant::now();
    for _ in 0..args.steps {
        let report = trainer.step(&batch).unwrap();
        phases += report.timings;
        exposed_wait += report.exposed_cast_wait;
    }
    let wall = t0.elapsed();
    let stats_after = trainer.pipeline_stats().unwrap_or_default();
    let casting = stats_after.casting_time - stats_before.casting_time;
    Measurement {
        steps_per_s: args.steps as f64 / wall.as_secs_f64(),
        phases,
        exposed_wait,
        hidden_fraction: hidden_fraction(exposed_wait, casting),
        gen_wait: Duration::ZERO,
        mean_depth: 0.0,
    }
}

/// One definition of the Fig. 9b metric: delegate to
/// [`PipelineStats::hidden_fraction`].
fn hidden_fraction(exposed: Duration, casting: Duration) -> f64 {
    tcast_core::PipelineStats {
        casting_time: casting,
        exposed_wait: exposed,
        ..Default::default()
    }
    .hidden_fraction()
}

/// A pre-generated ring of batches served by refcount bump: the depth
/// sweep measures the *driver's* overlap behaviour, not the generator.
struct RingSource {
    ring: Vec<Arc<CtrBatch>>,
    cursor: usize,
}

impl RingSource {
    fn new(data: &mut SyntheticCtr, batch: usize, len: usize) -> Self {
        Self {
            ring: (0..len).map(|_| Arc::new(data.next_batch(batch))).collect(),
            cursor: 0,
        }
    }
}

impl BatchSource for RingSource {
    fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
        let b = Arc::clone(&self.ring[self.cursor % self.ring.len()]);
        self.cursor += 1;
        Some(b)
    }

    fn recycle(&mut self, _batch: Arc<CtrBatch>) {}
}

/// The embedding dimension of the lookahead sweep's casting-bound
/// configuration (see [`sweep_config`]).
const SWEEP_DIM: usize = 8;

/// The lookahead sweep's configuration: the same four Zipf tables (so
/// the index arrays — casting's only input — keep their full
/// `batch x pooling` volume) but a minimal dense stack. Casting cost is
/// unchanged while the forward/backward window it must hide under
/// shrinks to the gather itself — the casting-latency-bound regime of
/// the paper's Fig. 9b, where depth-0 submission genuinely exposes
/// casting latency and cross-batch lookahead collapses it.
fn sweep_config() -> DlrmConfig {
    DlrmConfig {
        dense_features: 13,
        embedding_dim: SWEEP_DIM,
        tables: bench_config(SWEEP_DIM).tables,
        bottom_mlp: vec![SWEEP_DIM],
        top_mlp: vec![8, 1],
        interaction: tcast_tensor::InteractionKind::Dot,
    }
}

/// One `TrainLoop` run of the casted trainer under the given depth
/// policy, over a fixed batch ring of the casting-bound
/// [`sweep_config`] — generation excluded, so the sweep isolates the
/// *driver's* overlap behaviour.
fn measure_depth(execution: Execution, policy: DepthPolicy, args: &Args) -> Measurement {
    let config = sweep_config();
    let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 42);
    let trainer = Trainer::with_execution(
        config,
        BackwardMode::Casted,
        EmbeddingOptimizer::Sgd,
        execution,
        7,
    )
    .unwrap();
    let ring = match policy {
        DepthPolicy::Fixed(depth) => (depth + 2).max(3),
        DepthPolicy::Adaptive(a) => (a.max + 2).max(3),
    };
    let mut source = RingSource::new(&mut data, args.batch, ring);
    let mut driver = TrainLoop::with_policy(trainer, policy);
    // Warm-up: size the scratch — and, under the adaptive policy, give
    // the controller enough windows to climb from its minimum to the
    // knee, so the measured steps reflect the converged depth rather
    // than the cold start (the controller's state, including its
    // convergence floor, carries across runs).
    let warm = match policy {
        DepthPolicy::Fixed(_) => 2,
        DepthPolicy::Adaptive(a) => a.window * 8,
    };
    driver.run(&mut source, warm).unwrap();
    let t0 = Instant::now();
    let summary = driver.run(&mut source, args.steps).unwrap();
    let wall = t0.elapsed();
    assert_eq!(summary.steps, args.steps);
    Measurement {
        steps_per_s: args.steps as f64 / wall.as_secs_f64(),
        phases: summary.timings,
        exposed_wait: summary.exposed_cast_wait,
        hidden_fraction: summary.hidden_fraction(),
        gen_wait: summary.batch_wait,
        mean_depth: summary.mean_depth(),
    }
}

/// The prefetch axis: the same casting-bound `TrainLoop` run, but over
/// a *live* `SyntheticSource` so every step pays real batch generation
/// — inline on the training thread, or moved onto a `PrefetchSource`
/// producer. The row's `gen_wait_ns` is the per-step time the driver
/// blocked in `next_batch`: the full generation cost inline, only the
/// residual the producer could not stay ahead of when prefetched.
fn measure_gen(prefetch: bool, depth: usize, args: &Args) -> Measurement {
    let config = sweep_config();
    let data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 42);
    let trainer = Trainer::with_execution(
        config,
        BackwardMode::Casted,
        EmbeddingOptimizer::Sgd,
        Execution::Serial,
        7,
    )
    .unwrap();
    let mut driver = TrainLoop::new(trainer, depth);
    let inner = SyntheticSource::new(data, args.batch);
    let run = |driver: &mut TrainLoop, source: &mut dyn BatchSource, args: &Args| {
        driver.run(source, 2).unwrap(); // warm-up: size scratch + buffers
        let t0 = Instant::now();
        let summary = driver.run(source, args.steps).unwrap();
        (summary, t0.elapsed())
    };
    let (summary, wall) = if prefetch {
        let mut source = PrefetchSource::new(inner, (depth + 1).max(2));
        run(&mut driver, &mut source, args)
    } else {
        let mut source = inner;
        run(&mut driver, &mut source, args)
    };
    assert_eq!(summary.steps, args.steps);
    Measurement {
        steps_per_s: args.steps as f64 / wall.as_secs_f64(),
        phases: summary.timings,
        exposed_wait: summary.exposed_cast_wait,
        hidden_fraction: summary.hidden_fraction(),
        gen_wait: summary.batch_wait,
        mean_depth: summary.mean_depth(),
    }
}

fn phase_ns(d: Duration, steps: usize) -> f64 {
    d.as_secs_f64() * 1e9 / steps as f64
}

/// Row context beyond the measurement itself: the lookahead-depth
/// policy axis and the batch-generation axis.
struct RowAxes<'a> {
    /// "fixed" or "adaptive".
    depth_policy: &'a str,
    /// Nominal depth of the row: the pinned depth under "fixed", the
    /// controller's max bound under "adaptive" (`mean_depth` records
    /// what the controller actually chose).
    depth: usize,
    /// How batches reached the driver: "none" (single fixed batch),
    /// "ring" (pre-generated ring, generation excluded), "off" (live
    /// inline generation) or "on" (live generation on a `PrefetchSource`
    /// producer thread).
    prefetch: &'a str,
    /// Requested embedding shard count (1 = the unsharded layout).
    shards: usize,
}

fn emit(args: &Args, mode: &str, sched: &str, threads: usize, axes: &RowAxes, m: &Measurement) {
    println!(
        "  {mode:<8} {sched:<14} depth {} ({:<8} mean {:>4.1}) prefetch {:<4}  {:>8.2} steps/s  \
         (bwd_emb {:>9.0} ns, exposed {:>9.0} ns, hidden {:>5.1}%, gen wait {:>9.0} ns)",
        axes.depth,
        axes.depth_policy,
        m.mean_depth,
        axes.prefetch,
        m.steps_per_s,
        phase_ns(m.phases.bwd_embedding, args.steps),
        phase_ns(m.exposed_wait, args.steps),
        100.0 * m.hidden_fraction,
        phase_ns(m.gen_wait, args.steps),
    );
    let mut row = json::JsonRow::new();
    row.str_field("kind", "step_throughput")
        .str_field("mode", mode)
        .str_field("schedule", sched)
        .str_field("depth_policy", axes.depth_policy)
        .str_field("prefetch", axes.prefetch)
        .u64_field("threads", threads as u64)
        .u64_field("cores", tcast_pool::default_parallelism() as u64)
        .u64_field("batch", args.batch as u64)
        .u64_field("dim", args.dim as u64)
        .u64_field("steps", args.steps as u64)
        .u64_field("pipeline_depth", axes.depth as u64)
        .u64_field("shards", axes.shards as u64)
        .f64_field("mean_depth", m.mean_depth)
        .f64_field("steps_per_s", m.steps_per_s)
        .f64_field("fwd_gather_ns", phase_ns(m.phases.fwd_gather, args.steps))
        .f64_field("fwd_dnn_ns", phase_ns(m.phases.fwd_dnn, args.steps))
        .f64_field("bwd_dnn_ns", phase_ns(m.phases.bwd_dnn, args.steps))
        .f64_field(
            "bwd_embedding_ns",
            phase_ns(m.phases.bwd_embedding, args.steps),
        )
        .f64_field("bwd_scatter_ns", phase_ns(m.phases.bwd_scatter, args.steps))
        .f64_field("exposed_wait_ns", phase_ns(m.exposed_wait, args.steps))
        .f64_field("gen_wait_ns", phase_ns(m.gen_wait, args.steps))
        .f64_field("hidden_fraction", m.hidden_fraction);
    if let Err(e) = json::append_row(&args.json, &row) {
        eprintln!(
            "[step_throughput] cannot write {}: {e}",
            args.json.display()
        );
    }
}

fn main() {
    let args = parse_args();
    banner(
        "step_throughput",
        "end-to-end DLRM training-step throughput, serial vs pooled",
    );
    println!(
        "batch {}, dim {}, {} measured steps, pool threads {}, host cores {}, sink {}",
        args.batch,
        args.dim,
        args.steps,
        args.threads,
        tcast_pool::default_parallelism(),
        args.json.display()
    );

    let pool = Arc::new(Pool::new(args.threads));
    let fixed0 = |prefetch: &'static str| RowAxes {
        depth_policy: "fixed",
        depth: 0,
        prefetch,
        shards: 1,
    };

    let serial_casted = measure(BackwardMode::Casted, Execution::Serial, &args);
    emit(
        &args,
        "casted",
        "serial",
        1,
        &fixed0("none"),
        &serial_casted,
    );
    let pooled_casted = measure(
        BackwardMode::Casted,
        Execution::Pooled(Arc::clone(&pool)),
        &args,
    );
    emit(
        &args,
        "casted",
        "pooled",
        args.threads,
        &fixed0("none"),
        &pooled_casted,
    );

    let serial_baseline = measure(BackwardMode::Baseline, Execution::Serial, &args);
    emit(
        &args,
        "baseline",
        "serial",
        1,
        &fixed0("none"),
        &serial_baseline,
    );
    let pooled_baseline = measure(
        BackwardMode::Baseline,
        Execution::Pooled(Arc::clone(&pool)),
        &args,
    );
    emit(
        &args,
        "baseline",
        "pooled",
        args.threads,
        &fixed0("none"),
        &pooled_baseline,
    );

    // --- Shard axis: per-shard optimizer slabs, shard-routed casting ---
    // jobs, shard-concurrent scatter. The trajectory is bit-identical at
    // every shard count (tests/sharded_equivalence.rs), so these rows
    // measure placement cost alone: 1 shard is the unsharded layout,
    // 4 shards runs the backward embedding phases shard-concurrent under
    // the pool. The "STEP sharded" lines are CI's grep anchors.
    println!("\nsharded data plane (pooled execution), shards {{1, 4}}:");
    let mut sharded_rows = Vec::new();
    for mode in [BackwardMode::Casted, BackwardMode::Baseline] {
        for shards in [1usize, 4] {
            let m = measure_sharded(mode, Execution::Pooled(Arc::clone(&pool)), shards, &args);
            let mode_name = match mode {
                BackwardMode::Casted => "casted",
                BackwardMode::Baseline => "baseline",
            };
            let axes = RowAxes {
                depth_policy: "fixed",
                depth: 0,
                prefetch: "none",
                shards,
            };
            emit(&args, mode_name, "pooled", args.threads, &axes, &m);
            println!(
                "STEP sharded {mode_name} shards={shards} fwd_gather {:.0} ns  \
                 bwd_scatter {:.0} ns  {:.2} steps/s",
                phase_ns(m.phases.fwd_gather, args.steps),
                phase_ns(m.phases.bwd_scatter, args.steps),
                m.steps_per_s,
            );
            sharded_rows.push((mode, shards, m));
        }
    }

    // --- Pipeline-depth axis: the cross-batch TrainLoop driver. --------
    // Depth 0 is the serial composition (casting overlaps only its own
    // step's forward pass); depth D keeps D future batches' casting jobs
    // in flight. The trajectory is bit-identical at every depth, so the
    // only thing that moves is how much casting latency stays exposed.
    // The sweep pins its own batch size: the exposed-wait effect lives
    // in the small-batch regime (the forward window per step is short,
    // so depth-0 submission leaves real casting latency exposed), while
    // the throughput rows above measure the full-size batch. Extra steps
    // stabilize the exposed-wait totals the gate below compares.
    let sweep_args = Args {
        dim: SWEEP_DIM,
        batch: args.batch.min(512),
        steps: args.steps * 5,
        ..args.clone()
    };
    println!(
        "\npipelined driver (casted, serial execution), lookahead sweep \
         (casting-bound: dim {SWEEP_DIM}, batch {}, {} steps):",
        sweep_args.batch, sweep_args.steps
    );
    let depths: &[usize] = if fast_mode() { &[0, 2] } else { &[0, 1, 2, 4] };
    let mut by_depth = Vec::new();
    for &depth in depths {
        let m = measure_depth(Execution::Serial, DepthPolicy::Fixed(depth), &sweep_args);
        let axes = RowAxes {
            depth_policy: "fixed",
            depth,
            prefetch: "ring",
            shards: 1,
        };
        emit(&sweep_args, "casted", "pipelined", 1, &axes, &m);
        by_depth.push((depth, m));
    }
    let exposed_ns = |m: &Measurement| phase_ns(m.exposed_wait, sweep_args.steps);
    let depth0 = &by_depth[0].1;
    let deepest = &by_depth[by_depth.len() - 1].1;
    println!(
        "hidden fraction: depth {} {:.1}% -> depth {} {:.1}% \
         (exposed wait {:.0} ns -> {:.0} ns per step)",
        by_depth[0].0,
        100.0 * depth0.hidden_fraction,
        by_depth[by_depth.len() - 1].0,
        100.0 * deepest.hidden_fraction,
        exposed_ns(depth0),
        exposed_ns(deepest),
    );

    // --- Depth-policy axis: the adaptive controller vs the sweep. -----
    // Same casting-bound ring, but the depth is chosen at run time by
    // the AIMD controller from measured exposed waits. Full-size runs
    // gate its hidden fraction against the best fixed depth's: the
    // controller must find the knee, not just move.
    // Knobs scaled to the sweep: casting runs ~100-400 us/step here, so
    // "hidden" means under 20 us/step exposed (1 us would be noise
    // level on a busy host and trigger spurious decrease trials), and
    // the long decrease_after keeps the converged depth from shedding
    // more than once per measured run.
    let adaptive_policy = DepthPolicy::Adaptive(AdaptiveDepth {
        min: 0,
        max: 8,
        window: 8,
        target_exposed_ns: 20_000,
        decrease_after: 8,
        floor_decay_after: 16,
    });
    let adaptive = measure_depth(Execution::Serial, adaptive_policy, &sweep_args);
    let axes = RowAxes {
        depth_policy: "adaptive",
        depth: 8,
        prefetch: "ring",
        shards: 1,
    };
    emit(&sweep_args, "casted", "pipelined", 1, &axes, &adaptive);
    let best_fixed = by_depth
        .iter()
        .map(|(_, m)| m.hidden_fraction)
        .fold(0.0f64, f64::max);
    println!(
        "adaptive depth: mean {:.1}, hidden {:.1}% (best fixed depth: {:.1}%)",
        adaptive.mean_depth,
        100.0 * adaptive.hidden_fraction,
        100.0 * best_fixed,
    );

    // --- Prefetch axis: live generation, inline vs producer thread. ---
    // The same casting-bound config over a real SyntheticSource, so
    // every step pays batch generation: inline it lands in the step
    // slot (the driver blocks in next_batch); with a PrefetchSource a
    // producer thread generates ahead behind a bounded queue, and the
    // driver only pays the residual the producer couldn't stay ahead of.
    println!("\nbatch generation (casted, depth 2, live synthetic source):");
    let gen_off = measure_gen(false, 2, &sweep_args);
    let axes_off = RowAxes {
        depth_policy: "fixed",
        depth: 2,
        prefetch: "off",
        shards: 1,
    };
    emit(&sweep_args, "casted", "pipelined", 1, &axes_off, &gen_off);
    let gen_on = measure_gen(true, 2, &sweep_args);
    let axes_on = RowAxes {
        depth_policy: "fixed",
        depth: 2,
        prefetch: "on",
        shards: 1,
    };
    // threads stays 1: the field counts pool workers (the serial/pooled
    // convention); the producer thread is what the `prefetch` field
    // records.
    emit(&sweep_args, "casted", "pipelined", 1, &axes_on, &gen_on);
    let gen_ns = |m: &Measurement| phase_ns(m.gen_wait, sweep_args.steps);
    println!(
        "generation wait: prefetch off {:.0} ns/step -> prefetch on {:.0} ns/step",
        gen_ns(&gen_off),
        gen_ns(&gen_on),
    );

    let speedup = pooled_casted.steps_per_s / serial_casted.steps_per_s;
    let casted_vs_baseline = serial_casted.steps_per_s / serial_baseline.steps_per_s;
    println!(
        "\npooled/serial (casted): {speedup:.2}x at {} threads on {} core(s); \
         casted/baseline (serial): {casted_vs_baseline:.2}x",
        args.threads,
        tcast_pool::default_parallelism()
    );
    // The scatter phase is band-parallel since the splittable-optimizer
    // refactor; report its serial/pooled ratio so multi-core CI runners
    // track it alongside the end-to-end speedup (>1 means the pooled
    // scatter is faster).
    let scatter_ratio = |serial: &Measurement, pooled: &Measurement| {
        phase_ns(serial.phases.bwd_scatter, args.steps)
            / phase_ns(pooled.phases.bwd_scatter, args.steps).max(1.0)
    };
    println!(
        "bwd_scatter serial/pooled: casted {:.2}x, baseline {:.2}x",
        scatter_ratio(&serial_casted, &pooled_casted),
        scatter_ratio(&serial_baseline, &pooled_baseline),
    );
    // The 1.5x gate only applies to full-size measurement runs: FAST
    // smoke batches are too small for the pool to amortize dispatch, so
    // CI smoke jobs report the ratios without failing on them.
    if !fast_mode() && tcast_pool::default_parallelism() >= 4 && args.threads >= 4 && speedup < 1.5
    {
        eprintln!(
            "[step_throughput] WARNING: pooled speedup {speedup:.2}x < 1.5x target on a \
             >=4-core host"
        );
        std::process::exit(1);
    }
    // Cross-batch lookahead must strictly collapse the exposed casting
    // wait: some depth >= 2 has to beat depth 0 outright. (On a 1-core
    // host the scheduler decides when the casting worker runs, so an
    // individual depth's exposure is noisy — but deeper lookahead keeps
    // widening the worker's window, and the best deep run shows it.)
    // Gate full-size runs only — FAST smoke runs are too short to be
    // stable — and only when depth 0 actually exposes something: on a
    // host fast enough to hide casting with no lookahead (under 1 us per
    // step exposed) there is nothing left to collapse, which is success,
    // not failure.
    let best_deep_exposed = by_depth
        .iter()
        .filter(|(d, _)| *d >= 2)
        .map(|(_, m)| m.exposed_wait)
        .min()
        .expect("depth sweep includes >= 2");
    let already_hidden = depth0.exposed_wait <= Duration::from_micros(sweep_args.steps as u64);
    if !fast_mode() && !already_hidden && best_deep_exposed >= depth0.exposed_wait {
        eprintln!(
            "[step_throughput] WARNING: depth >= 2 lookahead did not reduce exposed casting \
             wait ({best_deep_exposed:?} vs {:?} at depth 0)",
            depth0.exposed_wait
        );
        std::process::exit(1);
    }
    // The adaptive controller must land within 5 points of the best
    // fixed depth's hidden fraction (full-size runs only; FAST runs are
    // too short for the controller to converge, and skip the gate like
    // every other). Guarded like the depth gate: when depth 0 already
    // hides everything there is no knee to find. The 5pt margin needs
    // >= 2 cores — on one core the fixed sweep's own hidden fractions
    // swing by ~10pt run to run (the scheduler decides when the casting
    // worker gets the CPU), so there the gate is the stable property:
    // the controller must still beat no lookahead at all.
    let adaptive_floor = if tcast_pool::default_parallelism() >= 2 {
        best_fixed - 0.05
    } else {
        depth0.hidden_fraction
    };
    if !fast_mode() && !already_hidden && adaptive.hidden_fraction < adaptive_floor {
        eprintln!(
            "[step_throughput] WARNING: adaptive depth converged to {:.1}% hidden \
             (mean depth {:.1}), below the gate floor {:.1}% (best fixed {:.1}%, \
             depth 0 {:.1}%)",
            100.0 * adaptive.hidden_fraction,
            adaptive.mean_depth,
            100.0 * adaptive_floor,
            100.0 * best_fixed,
            100.0 * depth0.hidden_fraction,
        );
        std::process::exit(1);
    }
    // Sharding is placement, not a performance feature in itself — but
    // it must not cripple the step either. Loose gate, full-size
    // multi-core runs only (FAST batches are too small to amortize the
    // per-shard dispatch; on one core shard concurrency cannot help):
    // the 4-shard pooled step must hold >= 0.6x of the 1-shard rate in
    // the same mode.
    if !fast_mode() && tcast_pool::default_parallelism() >= 2 {
        for mode in [BackwardMode::Casted, BackwardMode::Baseline] {
            let rate = |want_shards: usize| {
                sharded_rows
                    .iter()
                    .find(|(m, s, _)| *m == mode && *s == want_shards)
                    .map(|(_, _, meas)| meas.steps_per_s)
                    .expect("sharded rows cover {1, 4}")
            };
            let ratio = rate(4) / rate(1);
            if ratio < 0.6 {
                eprintln!(
                    "[step_throughput] WARNING: 4-shard {mode:?} step fell to {ratio:.2}x \
                     of the 1-shard rate"
                );
                std::process::exit(1);
            }
        }
    }
    // Prefetching must strictly reduce the exposed generation wait once
    // inline generation costs something worth hiding. Multi-core
    // full-size runs only: on one core producer and trainer share the
    // CPU, so generation cannot actually overlap compute — the 2-4-core
    // CI runners are where the delta accumulates (like the pooled
    // speedup target).
    let inline_gen = gen_off.gen_wait;
    let gen_noise_floor = Duration::from_micros(50 * sweep_args.steps as u64);
    if !fast_mode()
        && tcast_pool::default_parallelism() >= 2
        && inline_gen > gen_noise_floor
        && gen_on.gen_wait >= inline_gen
    {
        eprintln!(
            "[step_throughput] WARNING: prefetch did not reduce the generation wait \
             ({:?} prefetched vs {inline_gen:?} inline)",
            gen_on.gen_wait
        );
        std::process::exit(1);
    }
}

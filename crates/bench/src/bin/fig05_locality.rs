//! Fig. 5: (a) the lookup-probability function of each dataset's largest
//! embedding table; (b) gradient tensor sizes before/after expansion and
//! coalescing as a function of batch size (pooling factor 10, matching
//! the paper's setup where "the expanded gradient size is precisely 10x
//! larger than the initial backpropagated gradients").

use tcast_bench::{banner, fast_mode};
use tcast_datasets::{CoalesceStats, DatasetPreset, LookupHistogram};
use tcast_system::render_table;
use tcast_tensor::SplitMix64;

fn main() {
    banner("Fig. 5a", "Probability of lookup per table entry (sorted)");
    let scale_rows = if fast_mode() { 50_000 } else { 200_000 };
    let sample = if fast_mode() { 50_000 } else { 400_000 };

    let ranks = [0usize, 9, 99, 999, 9999];
    let mut rows = Vec::new();
    for preset in DatasetPreset::ALL {
        let pop = preset.popularity().with_rows(scale_rows);
        let sampler = pop.sampler();
        let mut rng = SplitMix64::new(7);
        let hist = LookupHistogram::from_lookups(&sampler.sample_many(sample, &mut rng));
        let probs = hist.sorted_probabilities();
        let mut row = vec![preset.name().to_string()];
        for &r in &ranks {
            row.push(
                probs
                    .get(r)
                    .map(|p| format!("{p:.2e}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        row.push(format!("{:.1}%", 100.0 * hist.head_mass(100)));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "p(rank 1)",
                "p(rank 10)",
                "p(rank 100)",
                "p(rank 1k)",
                "p(rank 10k)",
                "top-100 mass"
            ],
            &rows,
        )
    );

    banner(
        "Fig. 5b",
        "Gradient size before/after expand and coalesce (normalized to backpropagated; 10 gathers/table)",
    );
    let mut rows = Vec::new();
    for preset in DatasetPreset::ALL {
        let workload = preset.table_workload(10).with_rows(scale_rows);
        for batch in [1024usize, 2048, 4096] {
            let s = CoalesceStats::measure(&workload, batch, 11);
            rows.push(vec![
                preset.name().to_string(),
                format!("b{batch}"),
                "1.00".to_string(),
                format!("{:.2}", s.expansion_ratio()),
                format!("{:.2}", s.coalesced_ratio()),
                format!("{:.0}%", 100.0 * s.coalesce_savings()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "batch",
                "backpropagated",
                "expanded",
                "coalesced",
                "coalesce savings"
            ],
            &rows,
        )
    );
    println!("paper check: expanded = exactly 10x; coalesced shrinks with batch size and dataset skew (MovieLens most, Random least).");
}

//! Section VI-D (communication bandwidth): sweep the GPU <-> pool link
//! from the default 25 GB/s up to NVLINK-class 150 GB/s. The paper omits
//! the figure "for brevity" after reporting that 25 GB/s already reaches
//! 99% of the 150 GB/s configuration — this binary regenerates the
//! underlying data.

use tcast_bench::banner;
use tcast_system::{render_table, Calibration, DesignPoint, RmModel, SystemWorkload};

fn main() {
    banner(
        "Section VI-D",
        "Ours(NMP) sensitivity to GPU<->pool link bandwidth",
    );
    let mut rows = Vec::new();
    for model in RmModel::all() {
        let wl = SystemWorkload::build(model.clone(), 2048, 64, 42);
        let best = DesignPoint::OursNmp
            .evaluate(&wl, &Calibration::default().with_pool_link_gbps(150.0))
            .total_ns;
        let mut row = vec![model.name.to_string()];
        for gbps in [25.0, 50.0, 100.0, 150.0] {
            let cal = Calibration::default().with_pool_link_gbps(gbps);
            let t = DesignPoint::OursNmp.evaluate(&wl, &cal).total_ns;
            row.push(format!("{:.1}%", 100.0 * best / t));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["model", "25 GB/s", "50 GB/s", "100 GB/s", "150 GB/s"],
            &rows,
        )
    );
    println!("paper check: the 25 GB/s default achieves ~99% of the 150 GB/s configuration's performance.");
}

//! Fig. 6: memory read/write traffic of the key embedding-layer
//! primitives per dataset (pooling 10, batch 2048), normalized to the
//! backpropagated gradient tensor size. The "Coalesce" row counts only
//! the accumulation step, matching the paper's convention.

use tcast_bench::{banner, fast_mode};
use tcast_datasets::{CoalesceStats, DatasetPreset};
use tcast_embedding::traffic::{self, WorkloadShape};
use tcast_system::render_table;

fn main() {
    banner(
        "Fig. 6",
        "Memory read/write traffic per primitive (normalized to backpropagated gradient size)",
    );
    let batch = 2048usize;
    let dim = 64u64;
    let scale_rows = if fast_mode() { 50_000 } else { 200_000 };
    let unit = (batch as u64 * dim * 4) as f64; // backpropagated tensor bytes

    let mut rows = Vec::new();
    for preset in DatasetPreset::ALL {
        let workload = preset.table_workload(10).with_rows(scale_rows);
        let stats = CoalesceStats::measure(&workload, batch, 5);
        let s = WorkloadShape {
            lookups: stats.expanded as u64,
            outputs: stats.backpropagated as u64,
            unique: stats.coalesced as u64,
            dim,
        };
        let prims: [(&str, traffic::Traffic); 4] = [
            ("Gather", traffic::gather_reduce(&s)),
            ("Expand", traffic::gradient_expand(&s)),
            ("Coalesce", traffic::coalesce_accumulate(&s)),
            ("Scatter", traffic::scatter(&s, 0)),
        ];
        for (name, t) in prims {
            rows.push(vec![
                preset.name().to_string(),
                name.to_string(),
                format!("{:.2}", t.read_bytes as f64 / unit),
                format!("{:.2}", t.write_bytes as f64 / unit),
                format!("{:.2}", t.total() as f64 / unit),
            ]);
        }
        let ec = traffic::expand_coalesce_total(&s).total() as f64;
        let gr = traffic::gather_reduce(&s).total() as f64;
        rows.push(vec![
            preset.name().to_string(),
            "(expand-coalesce / gather)".into(),
            String::new(),
            String::new(),
            format!("{:.2}x", ec / gr),
        ]);
    }
    println!(
        "{}",
        render_table(&["dataset", "primitive", "read", "write", "total"], &rows)
    );
    println!("paper check: expand-coalesce aggregate incurs ~3x the traffic of gather-reduce; coalesce and scatter dwarf gather.");
}

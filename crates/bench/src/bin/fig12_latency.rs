//! Fig. 12: latency breakdown of the four design points (normalized to
//! Baseline(CPU)) plus the speedup Tensor Casting brings to the gradient
//! expand-coalesce operator alone (the paper's right axis: 1.1-9.5x).

use tcast_bench::{banner, grid_label, workload_grid, DEFAULT_BATCHES};
use tcast_system::{render_table, Calibration, DesignPoint, PhaseKind};

fn main() {
    banner(
        "Fig. 12",
        "Latency breakdown per design point (normalized to Baseline(CPU) accumulated latency)",
    );
    let cal = Calibration::default();
    let kinds = [
        PhaseKind::FwdGather,
        PhaseKind::FwdDnn,
        PhaseKind::BwdDnn,
        PhaseKind::BwdExpand,
        PhaseKind::BwdCoalesceSort,
        PhaseKind::BwdCoalesceAccu,
        PhaseKind::BwdScatter,
        PhaseKind::Casting,
        PhaseKind::BwdCastedGather,
    ];
    let mut headers = vec!["config", "design"];
    headers.extend(kinds.iter().map(|k| k.label()));
    headers.push("sum (norm)");
    headers.push("operator speedup");

    let designs = [
        DesignPoint::BaselineCpuGpu,
        DesignPoint::BaselineNmp,
        DesignPoint::OursCpu,
        DesignPoint::OursNmp,
    ];
    let mut rows = Vec::new();
    for wl in workload_grid(&DEFAULT_BATCHES, 64) {
        let base = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal);
        let norm = base.serial_sum_ns();
        for dp in designs {
            let e = dp.evaluate(&wl, &cal);
            let mut row = vec![grid_label(&wl), dp.name().to_string()];
            for k in kinds {
                let v = e.phase_ns(k) / norm;
                row.push(if v == 0.0 {
                    "-".into()
                } else {
                    format!("{:.3}", v)
                });
            }
            row.push(format!("{:.3}", e.serial_sum_ns() / norm));
            row.push(if dp.uses_casting() {
                format!(
                    "{:.2}x",
                    base.backward_operator_ns() / e.backward_operator_ns()
                )
            } else {
                "-".into()
            });
            rows.push(row);
        }
    }
    println!("{}", render_table(&headers, &rows));
    println!("paper check: expand-coalesce operator speedup 1.1-9.5x for Ours(CPU); a further 1.3-6.1x for Ours(NMP).");
}

//! Table I: disaggregated memory architecture configuration, plus the
//! measured effective bandwidth (">600 GB/s of the 819.2 GB/s peak") and
//! a rank-scaling sweep validating linear bandwidth amplification.

use tcast_bench::{banner, fast_mode};
use tcast_dram::{streams, AddressMapping, DramConfig, MemorySystem};
use tcast_system::render_table;

fn main() {
    banner("Table I", "Disaggregated memory architecture configuration");
    let mut channel = DramConfig::ddr4_3200().with_mapping(AddressMapping::ColumnFirst);
    channel.ranks_per_channel = 2;
    let per_rank = channel.peak_bandwidth_gbps();
    let ranks = 32usize;

    println!(
        "{}",
        render_table(
            &["parameter", "value"],
            &[
                vec![
                    "DRAM specification".into(),
                    "DDR4-3200 (dual-rank LRDIMM)".into()
                ],
                vec!["Number of ranks".into(), ranks.to_string()],
                vec![
                    "Effective memory bandwidth (per rank)".into(),
                    format!("{per_rank:.1} GB/sec"),
                ],
                vec![
                    "Effective memory bandwidth (in aggregate)".into(),
                    format!("{:.1} GB/sec", per_rank * ranks as f64),
                ],
            ],
        )
    );

    // Measured effective bandwidth of the gather pattern the NMP cores
    // service (random 64 B-granule slice reads).
    let sample = if fast_mode() { 2_000 } else { 16_000 };
    let rows: Vec<u32> = (0..sample as u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 500_000)
        .collect();
    let eff = MemorySystem::new(channel.clone())
        .run_trace(streams::gather_reads(&rows, 64, 0))
        .effective_bandwidth_gbps(&channel);
    println!(
        "measured per-rank gather bandwidth : {eff:.1} GB/s ({:.0}% of peak)",
        100.0 * eff / per_rank
    );
    println!(
        "measured aggregate gather bandwidth: {:.0} GB/s of {:.1} GB/s peak (paper: >600 of 819.2)\n",
        eff * ranks as f64,
        per_rank * ranks as f64
    );

    // Rank-scaling sweep: the premise that bandwidth amplifies linearly.
    println!("rank-scaling sweep (measured aggregate gather bandwidth):");
    let mut rows_out = Vec::new();
    for r in [4usize, 8, 16, 32, 64] {
        rows_out.push(vec![
            r.to_string(),
            format!("{:.1}", per_rank * r as f64),
            format!("{:.1}", eff * r as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["ranks", "peak GB/s", "effective GB/s"], &rows_out)
    );
}

//! Ablation studies for the design choices DESIGN.md §5 calls out:
//! the runtime overlap (hidden vs exposed casting), optimizer state
//! traffic on the scatter, and the fused-backward extension.

use tcast_bench::banner;
use tcast_system::{ablation, render_table, Calibration, DesignPoint, RmModel, SystemWorkload};

fn main() {
    let cal = Calibration::default();

    banner(
        "Ablation 1",
        "Casting exposure: value of the Section IV-B overlap runtime",
    );
    let mut rows = Vec::new();
    for model in RmModel::all() {
        let wl = SystemWorkload::build(model.clone(), 2048, 64, 42);
        for dp in [DesignPoint::OursCpu, DesignPoint::OursNmp] {
            let e = ablation::casting_exposure(dp, &wl, &cal);
            rows.push(vec![
                format!("{} {}", model.name, dp.name()),
                format!("{:.3} ms", e.exposed_ns / 1e6),
                format!("{:.3} ms", e.hidden_ns / 1e6),
                format!("{:.2}x", e.runtime_speedup()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "config",
                "casting exposed",
                "casting hidden",
                "runtime speedup"
            ],
            &rows,
        )
    );

    banner(
        "Ablation 2",
        "Optimizer state traffic added to the scatter (Adagrad/RMSprop: 8 B/elem)",
    );
    let mut rows = Vec::new();
    for model in RmModel::all() {
        let wl = SystemWorkload::build(model.clone(), 2048, 64, 42);
        for dp in [DesignPoint::BaselineCpuGpu, DesignPoint::OursNmp] {
            let base = dp.evaluate(&wl, &cal);
            let extra = ablation::optimizer_state_overhead_ns(dp, &wl, &cal, 8);
            rows.push(vec![
                format!("{} {}", model.name, dp.name()),
                format!("{:.3} ms", extra / 1e6),
                format!("{:.2}%", 100.0 * extra / base.total_ns),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["config", "added scatter time", "of iteration"], &rows)
    );

    banner(
        "Ablation 3",
        "Fused backward extension: casted gather-reduce + scatter in one pass",
    );
    let mut rows = Vec::new();
    for model in RmModel::all() {
        let wl = SystemWorkload::build(model.clone(), 2048, 64, 42);
        let normal = DesignPoint::OursNmp.evaluate(&wl, &cal);
        let fused = ablation::fused_backward_evaluation(&wl, &cal);
        rows.push(vec![
            model.name.to_string(),
            format!("{:.3} ms", normal.total_ns / 1e6),
            format!("{:.3} ms", fused.total_ns / 1e6),
            format!("{:.2}x", normal.total_ns / fused.total_ns),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["model", "Ours(NMP)", "Ours(NMP)+fused", "extra speedup"],
            &rows,
        )
    );
}

//! Fig. 9: execution timelines of (a) the CPU-centric baseline and (b)
//! the Tensor-Casting CPU-centric and memory-centric systems, showing the
//! casting stage hidden under forward propagation.

use tcast_bench::banner;
use tcast_system::{
    build_timeline, render_timeline, Calibration, DesignPoint, RmModel, SystemWorkload,
};

fn main() {
    banner("Fig. 9", "Execution timelines (RM2, batch 2048)");
    let cal = Calibration::default();
    let wl = SystemWorkload::build(RmModel::rm2(), 2048, 64, 42);
    for dp in [
        DesignPoint::BaselineCpuGpu,
        DesignPoint::OursCpu,
        DesignPoint::OursNmp,
    ] {
        println!("--- {} ---", dp.name());
        let events = build_timeline(dp, &wl, &cal);
        println!("{}", render_timeline(&events, 96));
        let e = dp.evaluate(&wl, &cal);
        if dp.uses_casting() {
            println!(
                "casting: {:.3} ms total, {:.3} ms hidden under forward propagation\n",
                e.casting_total_ns / 1e6,
                e.casting_hidden_ns / 1e6
            );
        } else {
            println!();
        }
    }
}

//! Fig. 14: per-iteration energy consumption of every design point,
//! normalized to Baseline(CPU).

use tcast_bench::{banner, grid_label, workload_grid, DEFAULT_BATCHES};
use tcast_system::{energy_joules, render_table, Calibration, DesignPoint};

fn main() {
    banner(
        "Fig. 14",
        "Energy consumption (normalized to Baseline(CPU))",
    );
    let cal = Calibration::default();
    let designs = [
        DesignPoint::BaselineCpuGpu,
        DesignPoint::BaselineNmp,
        DesignPoint::OursCpu,
        DesignPoint::OursNmp,
    ];
    let mut headers = vec!["config"];
    headers.extend(designs.iter().map(|d| d.name()));
    headers.push("Ours(NMP) J/iter");
    let mut rows = Vec::new();
    for wl in workload_grid(&DEFAULT_BATCHES, 64) {
        let base = energy_joules(&DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal), &cal).total();
        let mut row = vec![grid_label(&wl)];
        let mut last_abs = 0.0;
        for dp in designs {
            let e = energy_joules(&dp.evaluate(&wl, &cal), &cal).total();
            row.push(format!("{:.3}", e / base));
            last_abs = e;
        }
        row.push(format!("{last_abs:.3} J"));
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));
    println!("paper check: throughput gains translate directly into energy savings; even Ours(CPU) beats Baseline(NMP).");
}

//! Fig. 13: end-to-end training speedup of every design point over
//! Baseline(CPU), RM1-4 x batch 1024-8192.

use tcast_bench::{banner, grid_label, speedup, workload_grid, DEFAULT_BATCHES};
use tcast_system::{geometric_mean, render_table, Calibration, DesignPoint};

fn main() {
    banner("Fig. 13", "End-to-end speedup over Baseline(CPU)");
    let cal = Calibration::default();
    let designs = [
        DesignPoint::BaselineCpuGpu,
        DesignPoint::BaselineNmp,
        DesignPoint::OursCpu,
        DesignPoint::OursNmp,
    ];
    let mut headers = vec!["config"];
    headers.extend(designs.iter().map(|d| d.name()));
    let mut rows = Vec::new();
    let mut ours_nmp = Vec::new();
    let mut ours_cpu = Vec::new();
    for wl in workload_grid(&DEFAULT_BATCHES, 64) {
        let mut row = vec![grid_label(&wl)];
        for dp in designs {
            let s = speedup(&wl, DesignPoint::BaselineCpuGpu, dp, &cal);
            row.push(format!("{s:.2}x"));
            if dp == DesignPoint::OursNmp {
                ours_nmp.push(s);
            }
            if dp == DesignPoint::OursCpu {
                ours_cpu.push(s);
            }
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));
    let avg = ours_nmp.iter().sum::<f64>() / ours_nmp.len() as f64;
    println!(
        "Ours(CPU): {:.2}x-{:.2}x | Ours(NMP): {:.2}x-{:.2}x, arithmetic mean {:.2}x, geomean {:.2}x",
        ours_cpu.iter().copied().fold(f64::INFINITY, f64::min),
        ours_cpu.iter().copied().fold(0.0, f64::max),
        ours_nmp.iter().copied().fold(f64::INFINITY, f64::min),
        ours_nmp.iter().copied().fold(0.0, f64::max),
        avg,
        geometric_mean(&ours_nmp),
    );
    println!(
        "paper check: Ours(CPU) 1.2-1.6x (default batches), Ours(NMP) 2.0-15x with average 6.9x."
    );
}

//! Fig. 15: NMP utilization — fraction of training time the NMP pool is
//! actively executing, TensorDIMM (Baseline(NMP)) vs Tensor Casting
//! (Ours(NMP)).

use tcast_bench::{banner, grid_label, workload_grid, DEFAULT_BATCHES};
use tcast_system::{render_table, Calibration, DesignPoint};

fn main() {
    banner(
        "Fig. 15",
        "NMP utilization (% of training time NMP is active)",
    );
    let cal = Calibration::default();
    let mut rows = Vec::new();
    let mut td_sum = (0.0, 0usize);
    let mut tc_emb = (0.0, 0usize);
    let mut tc_mlp = (0.0, 0usize);
    for wl in workload_grid(&DEFAULT_BATCHES, 64) {
        let td = DesignPoint::BaselineNmp
            .evaluate(&wl, &cal)
            .nmp_utilization();
        let tc = DesignPoint::OursNmp.evaluate(&wl, &cal).nmp_utilization();
        rows.push(vec![
            grid_label(&wl),
            format!("{:.1}%", 100.0 * td),
            format!("{:.1}%", 100.0 * tc),
        ]);
        td_sum = (td_sum.0 + td, td_sum.1 + 1);
        if wl.model.embedding_intensive {
            tc_emb = (tc_emb.0 + tc, tc_emb.1 + 1);
        } else {
            tc_mlp = (tc_mlp.0 + tc, tc_mlp.1 + 1);
        }
    }
    println!(
        "{}",
        render_table(&["config", "TensorDIMM", "T.Casting"], &rows)
    );
    println!(
        "averages: TensorDIMM {:.1}% | T.Casting {:.1}% (RM1/2) / {:.1}% (RM3/4)",
        100.0 * td_sum.0 / td_sum.1 as f64,
        100.0 * tc_emb.0 / tc_emb.1 as f64,
        100.0 * tc_mlp.0 / tc_mlp.1 as f64,
    );
    println!("paper check: TensorDIMM ~7% average; T.Casting 92% (embedding-intensive) / 44% (MLP-intensive).");
}

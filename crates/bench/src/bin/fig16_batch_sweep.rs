//! Fig. 16: Tensor Casting sensitivity to training batch size
//! (8K/16K/32K mini-batches, the "several tens of thousands" regime of
//! MLPerf-style recommendation training).

use tcast_bench::{banner, speedup, LARGE_BATCHES};
use tcast_system::{render_table, Calibration, DesignPoint, RmModel, SystemWorkload};

fn main() {
    banner("Fig. 16", "Sensitivity to training batch size (b8K-32K)");
    let cal = Calibration::default();
    let mut rows = Vec::new();
    let mut max_speedup = 0.0f64;
    for model in RmModel::all() {
        for &batch in &LARGE_BATCHES {
            let wl = SystemWorkload::build(model.clone(), batch, 64, 42);
            let cpu = speedup(&wl, DesignPoint::BaselineCpuGpu, DesignPoint::OursCpu, &cal);
            let nmp = speedup(&wl, DesignPoint::BaselineCpuGpu, DesignPoint::OursNmp, &cal);
            max_speedup = max_speedup.max(nmp);
            rows.push(vec![
                format!("{} b{batch}", model.name),
                "1.00x".into(),
                format!("{cpu:.2}x"),
                format!("{nmp:.2}x"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["config", "Baseline", "Ours(CPU)", "Ours(NMP)"], &rows)
    );
    println!("max Ours(NMP) speedup at large batch: {max_speedup:.1}x (paper: up to 15x; Ours(CPU) reaches 1.4-2.8x)");
}

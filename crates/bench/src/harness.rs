//! Dependency-free micro-benchmark harness.
//!
//! The workspace builds fully offline, so criterion cannot be a
//! dependency; this module provides the small slice of it the `benches/`
//! files need: named groups, per-case median timing with automatic
//! iteration-count calibration, optional throughput annotation, and
//! machine-readable output through [`crate::json`] when
//! `TCAST_BENCH_JSON` is set.
//!
//! Every bench target is built with `harness = false` and drives a
//! [`BenchGroup`] from `fn main()`:
//!
//! ```no_run
//! use tcast_bench::harness::BenchGroup;
//!
//! let mut group = BenchGroup::new("example");
//! group.throughput_elements(1_000);
//! group.bench("noop", || std::hint::black_box(1 + 1));
//! group.finish();
//! ```

use std::time::{Duration, Instant};

/// What one measured number of work-per-iteration means.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes moved per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group this case belongs to.
    pub group: String,
    /// Case name.
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

/// A named group of benchmark cases, printed as aligned rows and
/// optionally appended to the `TCAST_BENCH_JSON` sink.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
    sample_time: Duration,
    samples: usize,
}

impl BenchGroup {
    /// Creates a group. `FAST=1` shrinks per-case measurement time by an
    /// order of magnitude (smoke runs, CI).
    pub fn new(name: &str) -> Self {
        let fast = crate::fast_mode();
        println!("== bench group: {name} ==");
        Self {
            name: name.to_string(),
            throughput: None,
            results: Vec::new(),
            sample_time: if fast {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(40)
            },
            samples: if fast { 3 } else { 5 },
        }
    }

    /// Annotates subsequent cases with elements processed per iteration.
    pub fn throughput_elements(&mut self, elements: u64) {
        self.throughput = Some(Throughput::Elements(elements));
    }

    /// Annotates subsequent cases with bytes moved per iteration.
    pub fn throughput_bytes(&mut self, bytes: u64) {
        self.throughput = Some(Throughput::Bytes(bytes));
    }

    /// Measures `f`, printing the median time per iteration (and
    /// throughput, when annotated).
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate: grow the iteration count until one sample fills the
        // sample-time budget.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.sample_time || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                ((self.sample_time.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64)
                    .clamp(2, 16)
            };
            iters = iters.saturating_mul(grow);
        }
        // Measure.
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median_ns = per_iter[per_iter.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Melem/s", n as f64 / median_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>10.2} GiB/s",
                    n as f64 / median_ns * 1e9 / (1u64 << 30) as f64
                )
            }
            None => String::new(),
        };
        println!("  {name:<40} {:>12.0} ns/iter{rate}", median_ns);
        self.results.push(BenchResult {
            group: self.name.clone(),
            name: name.to_string(),
            median_ns,
            iters_per_sample: iters,
        });
    }

    /// Prints the footer and, when `TCAST_BENCH_JSON` names a sink file,
    /// appends one JSON row per case.
    pub fn finish(self) -> Vec<BenchResult> {
        if let Some(path) = crate::json::sink_from_env() {
            for r in &self.results {
                let mut row = crate::json::JsonRow::new();
                row.str_field("kind", "bench");
                row.str_field("group", &r.group);
                row.str_field("name", &r.name);
                row.f64_field("median_ns", r.median_ns);
                row.u64_field("iters_per_sample", r.iters_per_sample);
                if let Err(e) = crate::json::append_row(&path, &row) {
                    eprintln!("[bench] could not append to {}: {e}", path.display());
                }
            }
        }
        println!();
        self.results
    }
}

//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! This workspace builds fully offline (no crates.io access), so the real
//! proptest cannot be vendored. This shim implements exactly the API
//! surface the repository's property tests use — deterministic, seeded
//! random-input testing with strategies, `proptest!`, `prop_assert*!` and
//! `prop_assume!` — with per-test seeds derived from the test name, so
//! every run explores the same input sequence (reproducible failures).
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its case number and message;
//! * strategies sample uniformly (no bias toward edge values);
//! * `ProptestConfig` only carries `cases`.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

/// Per-test configuration (only `cases` is supported).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted input cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.next_below(span) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize, u8, u16);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_unit() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

/// Full-domain strategy for `T` (`any::<u32>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects the current inputs (the case is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares seeded property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // `#[test]` goes here in a real test module.
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(16).max(64),
                    "too many rejected cases ({} accepted of {} wanted)",
                    accepted,
                    config.cases
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {accepted}: {msg}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::seed_from_name;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f32..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (3u64..=3).generate(&mut rng);
            assert_eq!(i, 3);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = collection::vec(0u32..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(seed_from_name("abc"), seed_from_name("abc"));
        assert_ne!(seed_from_name("abc"), seed_from_name("abd"));
    }

    proptest! {
        #[test]
        fn macro_roundtrip(a in 0u32..100, flag in any::<bool>()) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            if flag {
                prop_assert_eq!(a + 1, 1 + a);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn flat_map_composes(v in (1u64..10).prop_flat_map(|n| (Just(n), 0u64..n))) {
            let (n, k) = v;
            prop_assert!(k < n);
        }
    }
}

//! A compact on-disk format for lookup traces.
//!
//! Research workflows want reproducible index streams that can be
//! generated once and replayed across experiments (the paper replays the
//! same dataset-derived lookups through every design point). This module
//! serializes a sequence of [`IndexArray`]s to a simple little-endian
//! binary format:
//!
//! ```text
//! magic  "TCTR"            4 bytes
//! version u32              (currently 1)
//! batches u32
//! per batch:
//!   num_outputs u32
//!   len         u32
//!   src         len x u32
//!   dst         len x u32
//! ```
//!
//! No external serialization crates are needed; the format is fully
//! specified above and guarded by magic/version/shape validation on
//! load.

use crate::workload::TableWorkload;
use std::io::{self, Read, Write};
use tcast_embedding::{EmbeddingError, IndexArray};

const MAGIC: &[u8; 4] = b"TCTR";
const VERSION: u32 = 1;

/// Errors from reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a trace file, or an unsupported version.
    Format(String),
    /// The payload decoded but violated index-array invariants.
    Invalid(EmbeddingError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format(m) => write!(f, "malformed trace: {m}"),
            TraceError::Invalid(e) => write!(f, "invalid trace payload: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Invalid(e) => Some(e),
            TraceError::Format(_) => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<EmbeddingError> for TraceError {
    fn from(e: EmbeddingError) -> Self {
        TraceError::Invalid(e)
    }
}

/// Writes a sequence of index arrays to `w`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failure or
/// [`TraceError::Format`] if there are more than `u32::MAX` batches.
pub fn write_trace(w: &mut impl Write, batches: &[IndexArray]) -> Result<(), TraceError> {
    let count: u32 = batches
        .len()
        .try_into()
        .map_err(|_| TraceError::Format("too many batches".to_string()))?;
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&count.to_le_bytes())?;
    for b in batches {
        let outputs: u32 = b
            .num_outputs()
            .try_into()
            .map_err(|_| TraceError::Format("batch too large".to_string()))?;
        let len: u32 = b
            .len()
            .try_into()
            .map_err(|_| TraceError::Format("batch too large".to_string()))?;
        w.write_all(&outputs.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
        for &s in b.src() {
            w.write_all(&s.to_le_bytes())?;
        }
        for &d in b.dst() {
            w.write_all(&d.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceError::Format`] for bad magic/version/truncation,
/// [`TraceError::Invalid`] when a decoded batch violates index-array
/// invariants, or [`TraceError::Io`] on read failure.
pub fn read_trace(r: &mut impl Read) -> Result<Vec<IndexArray>, TraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|_| TraceError::Format("file shorter than header".to_string()))?;
    if &magic != MAGIC {
        return Err(TraceError::Format(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(TraceError::Format(format!("unsupported version {version}")));
    }
    let count = read_u32(r)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let outputs = read_u32(r)? as usize;
        let len = read_u32(r)? as usize;
        let mut src = Vec::with_capacity(len);
        for _ in 0..len {
            src.push(read_u32(r)?);
        }
        let mut dst = Vec::with_capacity(len);
        for _ in 0..len {
            dst.push(read_u32(r)?);
        }
        out.push(IndexArray::from_pairs(src, dst, outputs)?);
    }
    Ok(out)
}

fn read_u32(r: &mut impl Read) -> Result<u32, TraceError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|_| TraceError::Format("truncated trace".to_string()))?;
    Ok(u32::from_le_bytes(buf))
}

/// Generates `iterations` mini-batches from a workload and serializes
/// them — the one-call "record a training trace" helper.
///
/// # Errors
///
/// Propagates [`write_trace`] errors.
pub fn record_trace(
    w: &mut impl Write,
    workload: &TableWorkload,
    batch: usize,
    iterations: usize,
    seed: u64,
) -> Result<(), TraceError> {
    let mut generator = workload.generator(seed);
    let batches: Vec<IndexArray> = (0..iterations)
        .map(|_| generator.next_batch(batch))
        .collect();
    write_trace(w, &batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;

    fn sample_batches() -> Vec<IndexArray> {
        vec![
            IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap(),
            IndexArray::from_samples(&[vec![9], vec![9], vec![3, 3]]).unwrap(),
        ]
    }

    #[test]
    fn roundtrip() {
        let batches = sample_batches();
        let mut buf = Vec::new();
        write_trace(&mut buf, &batches).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back, batches);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_batches()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::Format(_))
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_batches()).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::Format(m)) if m.contains("version")
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_batches()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::Format(m)) if m.contains("truncated")
        ));
    }

    #[test]
    fn corrupted_dst_rejected_by_invariants() {
        let batches = vec![IndexArray::from_samples(&[vec![1]]).unwrap()];
        let mut buf = Vec::new();
        write_trace(&mut buf, &batches).unwrap();
        // Overwrite the single dst (last 4 bytes) with an out-of-range slot.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&5u32.to_le_bytes());
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::Invalid(_))
        ));
    }

    #[test]
    fn record_trace_is_deterministic() {
        let w = TableWorkload::new(
            Popularity::Zipf {
                rows: 1000,
                exponent: 1.0,
            },
            4,
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        record_trace(&mut a, &w, 32, 3, 7).unwrap();
        record_trace(&mut b, &w, 32, 3, 7).unwrap();
        assert_eq!(a, b);
        let batches = read_trace(&mut a.as_slice()).unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].num_outputs(), 32);
        assert_eq!(batches[0].len(), 128);
    }

    #[test]
    fn error_display_and_source() {
        let e = TraceError::Format("oops".to_string());
        assert!(e.to_string().contains("oops"));
        let e: TraceError = io::Error::other("disk").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Per-table workload specification and index-array generation.

use crate::popularity::{CdfSampler, Popularity};
use tcast_embedding::IndexArray;
use tcast_tensor::SplitMix64;

/// The workload of one embedding table: its popularity model and the
/// pooling factor (lookups per sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableWorkload {
    popularity: Popularity,
    pooling: usize,
}

impl TableWorkload {
    /// Creates a workload spec.
    ///
    /// # Panics
    ///
    /// Panics if `pooling == 0` (every sample must gather at least once).
    pub fn new(popularity: Popularity, pooling: usize) -> Self {
        assert!(pooling > 0, "pooling factor must be positive");
        Self {
            popularity,
            pooling,
        }
    }

    /// The table's popularity model.
    pub fn popularity(&self) -> Popularity {
        self.popularity
    }

    /// Lookups per sample.
    pub fn pooling(&self) -> usize {
        self.pooling
    }

    /// Table cardinality.
    pub fn rows(&self) -> usize {
        self.popularity.rows()
    }

    /// Returns a copy with a scaled-down/up cardinality (same skew).
    pub fn with_rows(&self, rows: usize) -> TableWorkload {
        TableWorkload {
            popularity: self.popularity.with_rows(rows),
            pooling: self.pooling,
        }
    }

    /// Returns a copy with a different pooling factor.
    ///
    /// # Panics
    ///
    /// Panics if `pooling == 0`.
    pub fn with_pooling(&self, pooling: usize) -> TableWorkload {
        TableWorkload::new(self.popularity, pooling)
    }

    /// Builds a seeded generator for this workload.
    pub fn generator(&self, seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(*self, seed)
    }
}

/// A seeded stream of mini-batch index arrays for one table.
///
/// Successive calls to [`WorkloadGenerator::next_batch`] advance the RNG,
/// modelling a training stream; two generators with equal seeds produce
/// identical streams (which is what lets the baseline and casted training
/// runs see the same data).
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    spec: TableWorkload,
    sampler: CdfSampler,
    rng: SplitMix64,
}

impl WorkloadGenerator {
    /// Creates a generator with the given seed.
    pub fn new(spec: TableWorkload, seed: u64) -> Self {
        Self {
            sampler: spec.popularity().sampler(),
            spec,
            rng: SplitMix64::new(seed),
        }
    }

    /// The underlying workload spec.
    pub fn spec(&self) -> TableWorkload {
        self.spec
    }

    /// Restarts the generator's RNG at `seed`, keeping the precomputed
    /// popularity sampler. `g.reseed(s)` followed by a batch draws
    /// exactly what `spec.generator(s)` would draw — but building a
    /// generator pays the O(rows) CDF precomputation (one `powf` per
    /// row for Zipf tables), so a per-batch producer such as
    /// [`crate::SyntheticCtr`] reseeds a cached generator instead of
    /// constructing a fresh one every batch.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SplitMix64::new(seed);
    }

    /// Generates the next mini-batch's index array
    /// (`batch * pooling` lookups, `batch` outputs).
    pub fn next_batch(&mut self, batch: usize) -> IndexArray {
        let mut out =
            IndexArray::from_pairs(Vec::new(), Vec::new(), 0).expect("empty index array is valid");
        self.next_batch_into(batch, &mut out);
        out
    }

    /// [`WorkloadGenerator::next_batch`] into a recycled [`IndexArray`],
    /// reusing its pair buffers — the per-table refill behind a
    /// `BatchSource` free-list's zero-allocation steady state. Draws the
    /// same RNG sequence as `next_batch`, so mixing the two forms keeps
    /// the stream bit-identical.
    pub fn next_batch_into(&mut self, batch: usize, out: &mut IndexArray) {
        let pooling = self.spec.pooling();
        let sampler = &self.sampler;
        let rng = &mut self.rng;
        out.refill(batch, |src, dst| {
            src.reserve(batch * pooling);
            dst.reserve(batch * pooling);
            for b in 0..batch {
                for _ in 0..pooling {
                    src.push(sampler.sample(rng));
                    dst.push(b as u32);
                }
            }
        })
        .expect("generated pairs are in range");
    }

    /// Generates a *multi-hot* mini-batch: each sample draws a uniform
    /// pooling count in `[1, 2 * pooling)` (mean ~= the spec's pooling
    /// factor), modelling variable-length categorical features such as
    /// Criteo's multi-valued fields and Taobao behaviour histories.
    pub fn next_batch_multihot(&mut self, batch: usize) -> IndexArray {
        let pooling = self.spec.pooling();
        let mut src = Vec::with_capacity(batch * pooling);
        let mut dst = Vec::with_capacity(batch * pooling);
        for b in 0..batch {
            let count = 1 + self.rng.next_below(2 * pooling as u64 - 1) as usize;
            for _ in 0..count {
                src.push(self.sampler.sample(&mut self.rng));
                dst.push(b as u32);
            }
        }
        IndexArray::from_pairs(src, dst, batch).expect("generated pairs are in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TableWorkload {
        TableWorkload::new(
            Popularity::Zipf {
                rows: 5000,
                exponent: 1.0,
            },
            4,
        )
    }

    #[test]
    #[should_panic(expected = "pooling factor must be positive")]
    fn zero_pooling_rejected() {
        TableWorkload::new(Popularity::Uniform { rows: 10 }, 0);
    }

    #[test]
    fn next_batch_shape() {
        let mut gen = spec().generator(1);
        let idx = gen.next_batch(64);
        assert_eq!(idx.num_outputs(), 64);
        assert_eq!(idx.len(), 64 * 4);
        assert!(idx.max_src().unwrap() < 5000);
        // dst slots are 0..64, each appearing `pooling` times.
        for b in 0..64u32 {
            assert_eq!(idx.dst().iter().filter(|&&d| d == b).count(), 4);
        }
    }

    #[test]
    fn generators_with_same_seed_agree() {
        let mut a = spec().generator(9);
        let mut b = spec().generator(9);
        assert_eq!(a.next_batch(32), b.next_batch(32));
        assert_eq!(a.next_batch(32), b.next_batch(32));
    }

    #[test]
    fn next_batch_into_matches_allocating_form() {
        let mut a = spec().generator(17);
        let mut b = spec().generator(17);
        let mut recycled = IndexArray::from_pairs(Vec::new(), Vec::new(), 0).unwrap();
        for _ in 0..3 {
            b.next_batch_into(32, &mut recycled);
            assert_eq!(a.next_batch(32), recycled);
        }
    }

    #[test]
    fn reseeding_matches_a_fresh_generator() {
        // The per-batch refill path reseeds one cached generator instead
        // of rebuilding the CDF sampler; the streams must be identical.
        let mut cached = spec().generator(0);
        for seed in [9u64, 3, 7, 3] {
            let mut fresh = spec().generator(seed);
            cached.reseed(seed);
            assert_eq!(cached.next_batch(32), fresh.next_batch(32), "seed {seed}");
        }
    }

    #[test]
    fn successive_batches_differ() {
        let mut gen = spec().generator(3);
        assert_ne!(gen.next_batch(32), gen.next_batch(32));
    }

    #[test]
    fn multihot_batches_have_variable_pooling_with_right_mean() {
        let mut gen = spec().generator(5);
        let idx = gen.next_batch_multihot(512);
        assert_eq!(idx.num_outputs(), 512);
        // Every sample has at least one lookup.
        for b in 0..512u32 {
            assert!(idx.dst().contains(&b), "sample {b} empty");
        }
        // Counts vary (not all equal to the nominal pooling factor).
        let counts: Vec<usize> = (0..512u32)
            .map(|b| idx.dst().iter().filter(|&&d| d == b).count())
            .collect();
        assert!(counts.iter().any(|&c| c != counts[0]));
        // Mean lands near the spec's pooling factor (4): E = (1 + 7)/2 = 4.
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((mean - 4.0).abs() < 0.5, "mean pooling {mean}");
        assert!(idx.max_src().unwrap() < 5000);
    }

    #[test]
    fn multihot_is_seeded() {
        let a = spec().generator(9).next_batch_multihot(64);
        let b = spec().generator(9).next_batch_multihot(64);
        assert_eq!(a, b);
    }

    #[test]
    fn with_rows_and_pooling_rescale() {
        let s = spec().with_rows(100).with_pooling(2);
        assert_eq!(s.rows(), 100);
        assert_eq!(s.pooling(), 2);
        let idx = s.generator(0).next_batch(8);
        assert_eq!(idx.len(), 16);
        assert!(idx.max_src().unwrap() < 100);
    }
}

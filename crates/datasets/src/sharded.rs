//! Multi-producer prefetching: a [`ShardedPrefetchSource`] runs one
//! producer thread per *source shard* and merges their streams with a
//! deterministic round-robin — the data-plane counterpart of the sharded
//! embedding path.
//!
//! A single [`PrefetchSource`](crate::PrefetchSource) hides generation
//! behind one producer thread; once the consumer outruns one producer,
//! the only way to add bandwidth is to add producers. This type does
//! that without giving up the repository's bit-identity discipline:
//!
//! * **One bounded queue per shard.** Each source shard gets its own
//!   [`PrefetchSource`](crate::PrefetchSource) (producer thread +
//!   bounded ready-queue + free-list), so shards generate concurrently
//!   and backpressure independently.
//! * **Deterministic merge.** Batches are checked out round-robin —
//!   shard 0, 1, …, N-1, 0, … — regardless of which producer finished
//!   first. The delivered stream is a pure function of the shard
//!   sources, never of thread scheduling.
//! * **Bit-identical to the single-producer stream.** Each per-shard
//!   queue delivers its wrapped source's exact stream (the
//!   [`PrefetchSource`](crate::PrefetchSource) invariant), and the
//!   merge order is fixed, so the result equals an inline round-robin
//!   over the same sources — enforced in the tests below and in
//!   `tests/sharded_equivalence.rs` at the workspace root.
//! * **Round-robin recycling.** Returned buffers are dealt back to the
//!   shards in checkout order, so every shard's free pool is replenished
//!   at the rate it is drained and the warm steady state stays
//!   allocation-free on the consumer thread.
//!
//! The merged stream ends at the first shard exhaustion (`None` is
//! sticky): every delivered cycle is a *complete* round over the shards,
//! so a consumer never sees a torn round. Shard sources of unequal
//! length are truncated to the shortest — split a finite trace evenly
//! if every step must be served.

use crate::prefetch::{PrefetchSource, PrefetchStats};
use crate::source::{BatchSource, SourceState};
use crate::synthetic::CtrBatch;
use std::sync::Arc;

/// A [`BatchSource`] merging one background producer per source shard
/// into a deterministic round-robin stream.
///
/// ```
/// use tcast_datasets::{BatchSource, ShardedPrefetchSource, SyntheticCtr, SyntheticSource, TableWorkload, Popularity};
///
/// let shard = |seed| {
///     let tables = vec![TableWorkload::new(Popularity::Uniform { rows: 50 }, 2)];
///     SyntheticSource::new(SyntheticCtr::new(tables, 4, seed), 16)
/// };
/// let mut source = ShardedPrefetchSource::new(vec![shard(1), shard(2)], 2);
/// for step in 0..6 {
///     let batch = source.next_batch().expect("synthetic streams are endless");
///     // step 0 came from shard(1), step 1 from shard(2), step 2 from shard(1), ...
///     source.recycle(batch);
/// }
/// assert_eq!(source.num_shards(), 2);
/// assert_eq!(source.stats().delivered, 6);
/// ```
pub struct ShardedPrefetchSource<S: BatchSource + Send + 'static> {
    producers: Vec<PrefetchSource<S>>,
    /// Next shard to check a batch out of.
    next: usize,
    /// Next shard to deal a recycled buffer back to. Tracked separately
    /// from `next` so recycling order (which is the consumer's business)
    /// still deals one buffer per shard per round even when the consumer
    /// holds several batches at once.
    recycle_next: usize,
    /// A shard returned `None`: the merged stream is over, and stays
    /// over — later shards are not drained out of order.
    exhausted: bool,
}

impl<S: BatchSource + Send + 'static> ShardedPrefetchSource<S> {
    /// Spawns one producer thread per shard source, each behind a
    /// bounded ready-queue of `capacity` batches.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or `capacity == 0`.
    pub fn new(sources: Vec<S>, capacity: usize) -> Self {
        assert!(!sources.is_empty(), "need at least one shard source");
        Self {
            producers: sources
                .into_iter()
                .map(|s| PrefetchSource::new(s, capacity))
                .collect(),
            next: 0,
            recycle_next: 0,
            exhausted: false,
        }
    }

    /// Number of shard producers.
    pub fn num_shards(&self) -> usize {
        self.producers.len()
    }

    /// Hand-off counters for one shard's producer.
    pub fn shard_stats(&self, shard: usize) -> PrefetchStats {
        self.producers[shard].stats()
    }

    /// Counters summed across every shard producer (`max_ready` is the
    /// max over shards — the queues are independent).
    pub fn stats(&self) -> PrefetchStats {
        let mut total = PrefetchStats::default();
        for p in &self.producers {
            let s = p.stats();
            total.produced += s.produced;
            total.delivered += s.delivered;
            total.max_ready = total.max_ready.max(s.max_ready);
            total.producer_wait += s.producer_wait;
            total.consumer_wait += s.consumer_wait;
        }
        total
    }

    /// Shuts every producer down and returns the shard sources in shard
    /// order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any producer thread.
    pub fn into_inner(self) -> Vec<S> {
        self.producers
            .into_iter()
            .map(PrefetchSource::into_inner)
            .collect()
    }
}

impl<S: BatchSource + Send + 'static> BatchSource for ShardedPrefetchSource<S> {
    /// Checks the next batch out of the shard whose round-robin turn it
    /// is, blocking until that shard's producer delivers (other shards
    /// keep generating meanwhile). Returns `None` — stickily — once any
    /// shard's stream ends.
    fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
        if self.exhausted {
            return None;
        }
        match self.producers[self.next].next_batch() {
            Some(batch) => {
                self.next = (self.next + 1) % self.producers.len();
                Some(batch)
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }

    /// Deals the buffer back to the shards in round-robin order, keeping
    /// every shard's free pool replenished at its drain rate.
    fn recycle(&mut self, batch: Arc<CtrBatch>) {
        self.producers[self.recycle_next].recycle(batch);
        self.recycle_next = (self.recycle_next + 1) % self.producers.len();
    }

    /// Sharded prefetch is not checkpointable: the merged position spans
    /// N shard states plus the round-robin cursor, which [`SourceState`]
    /// (a single-source position) cannot carry. Returns `None`, so
    /// drivers treat it like any other non-resumable source.
    fn state(&self) -> Option<SourceState> {
        None
    }

    fn restore(&mut self, state: &SourceState) {
        let _ = state;
        panic!(
            "restore the shard sources before constructing the \
             ShardedPrefetchSource (the producer threads own them afterwards)"
        );
    }
}

impl<S: BatchSource + Send + 'static> std::fmt::Debug for ShardedPrefetchSource<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPrefetchSource")
            .field("shards", &self.producers.len())
            .field("next", &self.next)
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;
    use crate::source::{SyntheticSource, TraceReplaySource};
    use crate::synthetic::SyntheticCtr;
    use crate::workload::TableWorkload;

    fn synthetic(seed: u64) -> SyntheticSource {
        let tables = vec![
            TableWorkload::new(
                Popularity::Zipf {
                    rows: 300,
                    exponent: 1.0,
                },
                3,
            ),
            TableWorkload::new(Popularity::Uniform { rows: 100 }, 2),
        ];
        SyntheticSource::new(SyntheticCtr::new(tables, 4, seed), 16)
    }

    fn trace(seed: u64, batches: usize) -> TraceReplaySource {
        let w = TableWorkload::new(
            Popularity::Zipf {
                rows: 200,
                exponent: 1.0,
            },
            3,
        );
        let mut g = w.generator(seed);
        let t: Vec<_> = (0..batches).map(|_| g.next_batch(8)).collect();
        TraceReplaySource::new(vec![t], 4, seed).unwrap()
    }

    /// The reference merge: the same shard sources consumed inline,
    /// round-robin, no threads.
    struct InlineMerge<S: BatchSource>(Vec<S>, usize);

    impl<S: BatchSource> InlineMerge<S> {
        fn next(&mut self) -> Option<Arc<CtrBatch>> {
            let got = self.0[self.1].next_batch()?;
            self.1 = (self.1 + 1) % self.0.len();
            Some(got)
        }
    }

    #[test]
    fn merged_stream_is_bit_identical_to_inline_round_robin() {
        for shards in [1usize, 2, 3] {
            let mut inline = InlineMerge((0..shards as u64).map(synthetic).collect(), 0);
            let mut sharded =
                ShardedPrefetchSource::new((0..shards as u64).map(synthetic).collect(), 2);
            for step in 0..3 * shards + 2 {
                let want = inline.next().unwrap();
                let got = sharded.next_batch().unwrap();
                assert_eq!(*got, *want, "{shards} shards diverged at step {step}");
                sharded.recycle(got);
            }
        }
    }

    #[test]
    fn one_shard_matches_a_plain_prefetch_source() {
        let mut plain = PrefetchSource::new(synthetic(7), 2);
        let mut sharded = ShardedPrefetchSource::new(vec![synthetic(7)], 2);
        for step in 0..8 {
            let want = plain.next_batch().unwrap();
            let got = sharded.next_batch().unwrap();
            assert_eq!(*got, *want, "diverged at step {step}");
            plain.recycle(want);
            sharded.recycle(got);
        }
    }

    #[test]
    fn merge_order_survives_a_slow_shard() {
        // Shard 1 is much slower than shard 0; the merge order must not
        // change (a nondeterministic merge would deliver shard 0 twice).
        struct Slow(SyntheticSource, u64);
        impl BatchSource for Slow {
            fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
                std::thread::sleep(std::time::Duration::from_millis(self.1));
                self.0.next_batch()
            }
            fn recycle(&mut self, batch: Arc<CtrBatch>) {
                self.0.recycle(batch);
            }
        }
        let mut inline = InlineMerge(vec![synthetic(1), synthetic(2)], 0);
        let mut slowed =
            ShardedPrefetchSource::new(vec![Slow(synthetic(1), 0), Slow(synthetic(2), 2)], 2);
        for step in 0..6 {
            let want = inline.next().unwrap();
            let got = slowed.next_batch().unwrap();
            assert_eq!(*got, *want, "diverged at step {step}");
            slowed.recycle(got);
        }
    }

    #[test]
    fn exhaustion_is_sticky_and_never_tears_a_round() {
        // Shard 0 has 3 batches, shard 1 has 2: the merge delivers
        // s0,s1,s0,s1,s0 and ends when shard 1 comes up empty on the
        // third round — 5 batches, exactly what the inline merge gives.
        let mut sharded = ShardedPrefetchSource::new(vec![trace(1, 3), trace(2, 2)], 2);
        let mut inline = InlineMerge(vec![trace(1, 3), trace(2, 2)], 0);
        let mut delivered = 0;
        loop {
            match (inline.next(), sharded.next_batch()) {
                (Some(want), Some(got)) => {
                    assert_eq!(*got, *want, "diverged at step {delivered}");
                    sharded.recycle(got);
                    delivered += 1;
                }
                (None, None) => break,
                (a, b) => panic!(
                    "exhaustion disagrees after {delivered}: inline {:?} vs sharded {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        assert_eq!(delivered, 5, "3+2 shards merge to 5 before the first None");
        assert!(sharded.next_batch().is_none(), "None must be sticky");
    }

    #[test]
    fn equal_length_traces_are_fully_delivered() {
        let mut sharded = ShardedPrefetchSource::new(vec![trace(3, 4), trace(4, 4)], 2);
        let mut n = 0;
        while let Some(b) = sharded.next_batch() {
            sharded.recycle(b);
            n += 1;
        }
        assert_eq!(n, 8, "equal shards deliver every batch");
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let mut sharded = ShardedPrefetchSource::new(vec![synthetic(5), synthetic(6)], 2);
        for _ in 0..6 {
            let b = sharded.next_batch().unwrap();
            sharded.recycle(b);
        }
        assert_eq!(sharded.stats().delivered, 6);
        assert_eq!(sharded.shard_stats(0).delivered, 3);
        assert_eq!(sharded.shard_stats(1).delivered, 3);
        assert!(sharded.stats().produced >= 6);
    }

    #[test]
    fn into_inner_returns_every_shard_source() {
        let mut sharded = ShardedPrefetchSource::new(vec![synthetic(8), synthetic(9)], 2);
        let b = sharded.next_batch().unwrap();
        sharded.recycle(b);
        let mut sources = sharded.into_inner();
        assert_eq!(sources.len(), 2);
        for s in &mut sources {
            assert!(s.next_batch().is_some(), "shard sources keep working");
        }
    }

    #[test]
    fn state_is_none_and_restore_panics() {
        let sharded = ShardedPrefetchSource::new(vec![synthetic(10)], 2);
        assert!(sharded.state().is_none(), "sharded prefetch cannot resume");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s = ShardedPrefetchSource::new(vec![synthetic(11)], 2);
            s.restore(&SourceState::Synthetic {
                rng_state: 1,
                batches: 0,
            });
        }));
        assert!(result.is_err(), "restore must refuse");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_shard_list_is_rejected() {
        let _ = ShardedPrefetchSource::<SyntheticSource>::new(vec![], 2);
    }
}

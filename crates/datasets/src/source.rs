//! Streaming mini-batch sources with buffer recycling — the data side of
//! the cross-batch pipelined training driver.
//!
//! A [`BatchSource`] hands out batches behind `Arc`s (so a driver can
//! hold several in flight while their casting jobs run ahead) and takes
//! completed batches back through [`BatchSource::recycle`]: returned
//! buffers enter a free-list and the next batch is produced with the
//! `*_into` refill forms ([`SyntheticCtr::next_batch_into`],
//! [`IndexArray::refill`]) instead of fresh allocations. After the
//! free-list warms up (roughly `depth + 1` batches for a depth-D
//! lookahead), steady-state prefetch is allocation-free.
//!
//! Two implementations:
//!
//! * [`SyntheticSource`] — wraps the planted-model [`SyntheticCtr`]
//!   generator into an endless stream;
//! * [`TraceReplaySource`] — replays recorded per-table lookup traces
//!   (see [`crate::trace`]), the "same dataset-derived lookups through
//!   every design point" workflow of the paper's experiments.

use crate::synthetic::{CtrBatch, SyntheticCtr};
use crate::trace::{read_trace, TraceError};
use std::collections::VecDeque;
use std::io::Read;
use std::sync::Arc;
use tcast_embedding::IndexArray;
use tcast_tensor::SplitMix64;

/// A stream of training mini-batches with buffer recycling.
///
/// The contract is checkout/return: [`BatchSource::next_batch`] hands out
/// an `Arc<CtrBatch>` the caller may hold across steps (e.g. while its
/// casting job is in flight); once the step completes, the caller gives
/// the `Arc` back via [`BatchSource::recycle`] so its buffers can be
/// refilled in place. Recycling is an optimization, never a correctness
/// requirement — a source must produce the identical stream whether or
/// not batches come back.
pub trait BatchSource {
    /// Produces the next mini-batch, drawing buffers from the free-list
    /// when possible. Returns `None` when the stream is exhausted
    /// (synthetic streams never are; trace replay ends with its trace
    /// unless cycling).
    fn next_batch(&mut self) -> Option<Arc<CtrBatch>>;

    /// Returns a completed batch for buffer reuse. A batch whose `Arc`
    /// is still shared elsewhere is simply kept until the sharing ends
    /// (the refill path falls back to fresh allocation if needed).
    fn recycle(&mut self, batch: Arc<CtrBatch>);

    /// The stream position *as consumed so far*, for checkpointing, or
    /// `None` if this source cannot resume. [`BatchSource::restore`] on
    /// an identically-constructed source makes its next batch the one
    /// this source would produce next — free-list contents are
    /// deliberately not part of the state (recycling never changes the
    /// stream).
    fn state(&self) -> Option<SourceState> {
        None
    }

    /// Rewinds/advances to a position captured by [`BatchSource::state`]
    /// on an identically-constructed source.
    ///
    /// # Panics
    ///
    /// Panics if this source does not support resume or `state` is the
    /// wrong variant for it.
    fn restore(&mut self, state: &SourceState) {
        let _ = state;
        panic!("this batch source does not support resume");
    }
}

/// A [`BatchSource`]'s checkpointable stream position.
///
/// Captured by [`BatchSource::state`], applied by [`BatchSource::restore`]
/// — the batch-stream half of the exact-resume invariant: a restored
/// source continues the identical stream the original would have
/// produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceState {
    /// [`SyntheticSource`] position: the generator's RNG state (the sole
    /// stream position — every per-batch draw descends from it) plus a
    /// bookkeeping count of batches emitted.
    Synthetic {
        /// `SyntheticCtr` RNG state.
        rng_state: u64,
        /// Batches emitted so far (reporting only; the RNG state alone
        /// determines the stream).
        batches: u64,
    },
    /// [`TraceReplaySource`] position: the replay cursor plus the
    /// dense/label RNG state.
    TraceReplay {
        /// Next trace step to serve.
        cursor: u64,
        /// Dense/label RNG state.
        rng_state: u64,
    },
}

/// An endless [`BatchSource`] over the planted-model synthetic CTR
/// generator, at a fixed batch size.
#[derive(Debug)]
pub struct SyntheticSource {
    generator: SyntheticCtr,
    batch: usize,
    /// Batches emitted so far (checkpoint bookkeeping).
    emitted: u64,
    /// FIFO, so recycled buffers rotate round-robin: every buffer in a
    /// steady pool gets refilled (and thus capacity-sized) within one
    /// rotation, instead of a LIFO hot buffer shadowing cold ones that
    /// would then pay their first sizing mid-run.
    free: VecDeque<Arc<CtrBatch>>,
}

impl SyntheticSource {
    /// Wraps `generator` into a source emitting `batch`-sized batches.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(generator: SyntheticCtr, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Self {
            generator,
            batch,
            emitted: 0,
            free: VecDeque::new(),
        }
    }

    /// The fixed batch size this source emits.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Batches currently waiting in the free-list.
    pub fn free_list_len(&self) -> usize {
        self.free.len()
    }
}

impl BatchSource for SyntheticSource {
    fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
        let mut arc = self
            .free
            .pop_front()
            .unwrap_or_else(|| Arc::new(CtrBatch::default()));
        match Arc::get_mut(&mut arc) {
            Some(buf) => self.generator.next_batch_into(self.batch, buf),
            // Still shared (a recycled batch whose Arc someone kept):
            // park it back on the free-list — it becomes refillable once
            // the share drops — and produce a fresh one; the stream is
            // the same either way.
            None => {
                self.free.push_back(arc);
                arc = Arc::new(self.generator.next_batch(self.batch));
            }
        }
        self.emitted += 1;
        Some(arc)
    }

    fn recycle(&mut self, batch: Arc<CtrBatch>) {
        self.free.push_back(batch);
    }

    fn state(&self) -> Option<SourceState> {
        Some(SourceState::Synthetic {
            rng_state: self.generator.rng_state(),
            batches: self.emitted,
        })
    }

    fn restore(&mut self, state: &SourceState) {
        let SourceState::Synthetic { rng_state, batches } = *state else {
            panic!("SyntheticSource cannot restore {state:?}");
        };
        self.generator.set_rng_state(rng_state);
        self.emitted = batches;
    }
}

/// A [`BatchSource`] replaying recorded per-table lookup traces.
///
/// Each training step `i` serves the `i`-th batch of every table's trace
/// as its index arrays (pre-shared as `Arc<[IndexArray]>` once at
/// construction, so serving a step is a refcount bump). Dense features
/// and labels are synthesized from the seed — a trace records *lookups*,
/// which is what every locality/throughput experiment consumes; the
/// labels carry no planted signal.
pub struct TraceReplaySource {
    steps: Vec<Arc<[IndexArray]>>,
    dense_dim: usize,
    rng: SplitMix64,
    cursor: usize,
    cycle: bool,
    free: VecDeque<Arc<CtrBatch>>,
}

impl TraceReplaySource {
    /// Builds a replay source from per-table traces (table `t`'s
    /// sequence of mini-batch index arrays, as [`read_trace`] returns).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] if no traces are given, the tables
    /// disagree on batch count, or a step's arrays disagree on batch
    /// size.
    pub fn new(
        per_table: Vec<Vec<IndexArray>>,
        dense_dim: usize,
        seed: u64,
    ) -> Result<Self, TraceError> {
        let Some(first) = per_table.first() else {
            return Err(TraceError::Format("no traces given".to_string()));
        };
        let batches = first.len();
        if per_table.iter().any(|t| t.len() != batches) {
            return Err(TraceError::Format(format!(
                "tables disagree on batch count: {:?}",
                per_table.iter().map(Vec::len).collect::<Vec<_>>()
            )));
        }
        // Transpose to per-step Arc<[IndexArray]> shares.
        let mut columns: Vec<Vec<IndexArray>> = (0..batches).map(|_| Vec::new()).collect();
        for table in per_table {
            for (step, index) in table.into_iter().enumerate() {
                columns[step].push(index);
            }
        }
        let mut steps = Vec::with_capacity(batches);
        for (i, column) in columns.into_iter().enumerate() {
            let outputs = column[0].num_outputs();
            if column.iter().any(|a| a.num_outputs() != outputs) {
                return Err(TraceError::Format(format!(
                    "step {i}: tables disagree on batch size"
                )));
            }
            steps.push(Arc::from(column));
        }
        Ok(Self {
            steps,
            dense_dim,
            rng: SplitMix64::new(seed),
            cursor: 0,
            cycle: false,
            free: VecDeque::new(),
        })
    }

    /// Reads one trace per table from `readers` (the [`read_trace`]
    /// format) and builds a replay source over them.
    ///
    /// # Errors
    ///
    /// Propagates [`read_trace`] errors, plus the [`TraceReplaySource::new`]
    /// shape validation.
    pub fn from_readers<R: Read>(
        readers: &mut [R],
        dense_dim: usize,
        seed: u64,
    ) -> Result<Self, TraceError> {
        let per_table = readers
            .iter_mut()
            .map(read_trace)
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(per_table, dense_dim, seed)
    }

    /// Makes the source loop back to the first step after the last
    /// instead of ending — an endless benchmark stream from a finite
    /// trace.
    pub fn cycling(mut self) -> Self {
        self.cycle = true;
        self
    }

    /// Steps in one pass of the trace.
    pub fn trace_len(&self) -> usize {
        self.steps.len()
    }
}

impl BatchSource for TraceReplaySource {
    fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
        if self.cursor == self.steps.len() {
            if !self.cycle {
                return None;
            }
            self.cursor = 0;
        }
        let indices = Arc::clone(&self.steps[self.cursor]);
        self.cursor += 1;
        let batch = indices[0].num_outputs();
        let mut arc = self
            .free
            .pop_front()
            .unwrap_or_else(|| Arc::new(CtrBatch::default()));
        let rng = &mut self.rng;
        let fill = |buf: &mut CtrBatch| {
            buf.dense.zero_into(batch, self.dense_dim);
            for v in buf.dense.as_mut_slice() {
                *v = rng.next_range(-1.0, 1.0);
            }
            buf.labels.zero_into(batch, 1);
            for v in buf.labels.as_mut_slice() {
                *v = if rng.next_f32() < 0.5 { 1.0 } else { 0.0 };
            }
            buf.indices = indices;
        };
        match Arc::get_mut(&mut arc) {
            Some(buf) => fill(buf),
            // Park the still-shared buffer for later reuse, as in
            // [`SyntheticSource::next_batch`].
            None => {
                self.free.push_back(arc);
                let mut fresh = CtrBatch::default();
                fill(&mut fresh);
                arc = Arc::new(fresh);
            }
        }
        Some(arc)
    }

    fn recycle(&mut self, batch: Arc<CtrBatch>) {
        self.free.push_back(batch);
    }

    fn state(&self) -> Option<SourceState> {
        Some(SourceState::TraceReplay {
            cursor: self.cursor as u64,
            rng_state: self.rng.state(),
        })
    }

    fn restore(&mut self, state: &SourceState) {
        let SourceState::TraceReplay { cursor, rng_state } = *state else {
            panic!("TraceReplaySource cannot restore {state:?}");
        };
        assert!(
            cursor as usize <= self.steps.len(),
            "restore cursor {cursor} beyond trace of {} steps",
            self.steps.len()
        );
        self.cursor = cursor as usize;
        self.rng = SplitMix64::new(rng_state);
    }
}

impl std::fmt::Debug for TraceReplaySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReplaySource")
            .field("trace_len", &self.steps.len())
            .field("cursor", &self.cursor)
            .field("cycle", &self.cycle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;
    use crate::trace::write_trace;
    use crate::workload::TableWorkload;

    fn ctr() -> SyntheticCtr {
        let tables = vec![
            TableWorkload::new(
                Popularity::Zipf {
                    rows: 300,
                    exponent: 1.0,
                },
                3,
            ),
            TableWorkload::new(Popularity::Uniform { rows: 100 }, 2),
        ];
        SyntheticCtr::new(tables, 4, 11)
    }

    #[test]
    fn synthetic_source_recycles_without_changing_the_stream() {
        let mut plain = ctr();
        let mut source = SyntheticSource::new(ctr(), 24);
        for step in 0..5 {
            let expected = plain.next_batch(24);
            let batch = source.next_batch().expect("endless");
            assert_eq!(*batch, expected, "diverged at step {step}");
            source.recycle(batch);
            assert_eq!(source.free_list_len(), 1);
        }
    }

    #[test]
    fn still_shared_recycled_buffers_are_parked_not_dropped() {
        // Regression: a recycled batch whose Arc is still shared used to
        // be silently discarded, draining the free-list for good. It
        // must be parked and refilled once the share drops.
        let mut source = SyntheticSource::new(ctr(), 8);
        let first = source.next_batch().unwrap();
        let hold = Arc::clone(&first); // external share outlives recycle
        source.recycle(first);
        let fresh = source.next_batch().unwrap(); // can't refill: parked + fresh
        assert_eq!(source.free_list_len(), 1, "shared buffer must be parked");
        drop(hold);
        source.recycle(fresh);
        // Both buffers are recyclable again; no allocation is ever
        // required to keep serving.
        for _ in 0..3 {
            let b = source.next_batch().unwrap();
            source.recycle(b);
        }
        assert_eq!(source.free_list_len(), 2);
    }

    #[test]
    fn synthetic_source_without_recycling_is_identical() {
        let mut recycled = SyntheticSource::new(ctr(), 16);
        let mut hoarded = SyntheticSource::new(ctr(), 16);
        let mut kept = Vec::new();
        for _ in 0..4 {
            let a = recycled.next_batch().unwrap();
            let b = hoarded.next_batch().unwrap();
            assert_eq!(*a, *b);
            recycled.recycle(a);
            kept.push(b); // never recycled
        }
    }

    fn table_trace(pooling: usize, seed: u64, batches: usize, batch: usize) -> Vec<IndexArray> {
        let w = TableWorkload::new(
            Popularity::Zipf {
                rows: 200,
                exponent: 1.0,
            },
            pooling,
        );
        let mut g = w.generator(seed);
        (0..batches).map(|_| g.next_batch(batch)).collect()
    }

    #[test]
    fn trace_replay_serves_the_recorded_indices_in_order() {
        let t0 = table_trace(3, 1, 4, 16);
        let t1 = table_trace(2, 2, 4, 16);
        let mut source = TraceReplaySource::new(vec![t0.clone(), t1.clone()], 4, 7).unwrap();
        assert_eq!(source.trace_len(), 4);
        for step in 0..4 {
            let batch = source.next_batch().expect("trace not exhausted");
            assert_eq!(batch.indices[0], t0[step]);
            assert_eq!(batch.indices[1], t1[step]);
            assert_eq!(batch.dense.shape(), (16, 4));
            assert_eq!(batch.labels.shape(), (16, 1));
            source.recycle(batch);
        }
        assert!(source.next_batch().is_none(), "trace must end");
    }

    #[test]
    fn trace_replay_cycles_when_asked() {
        let t0 = table_trace(2, 3, 2, 8);
        let mut source = TraceReplaySource::new(vec![t0.clone()], 2, 9)
            .unwrap()
            .cycling();
        for step in 0..5 {
            let batch = source.next_batch().expect("cycling source is endless");
            assert_eq!(batch.indices[0], t0[step % 2]);
            source.recycle(batch);
        }
    }

    #[test]
    fn trace_replay_roundtrips_through_the_disk_format() {
        let t0 = table_trace(3, 4, 3, 8);
        let t1 = table_trace(1, 5, 3, 8);
        let mut bufs = Vec::new();
        for t in [&t0, &t1] {
            let mut buf = Vec::new();
            write_trace(&mut buf, t).unwrap();
            bufs.push(buf);
        }
        let mut readers: Vec<&[u8]> = bufs.iter().map(Vec::as_slice).collect();
        let mut source = TraceReplaySource::from_readers(&mut readers, 4, 1).unwrap();
        let batch = source.next_batch().unwrap();
        assert_eq!(batch.indices[0], t0[0]);
        assert_eq!(batch.indices[1], t1[0]);
    }

    #[test]
    fn trace_replay_validates_shapes() {
        assert!(TraceReplaySource::new(vec![], 4, 0).is_err());
        let short = table_trace(2, 6, 2, 8);
        let long = table_trace(2, 7, 3, 8);
        assert!(TraceReplaySource::new(vec![short, long], 4, 0).is_err());
        let a = table_trace(2, 8, 2, 8);
        let b = table_trace(2, 9, 2, 16); // batch-size mismatch
        assert!(matches!(
            TraceReplaySource::new(vec![a, b], 4, 0),
            Err(TraceError::Format(m)) if m.contains("batch size")
        ));
    }

    #[test]
    fn synthetic_source_resumes_bit_identically_from_any_point() {
        for cut in 0..5usize {
            let mut reference = SyntheticSource::new(ctr(), 16);
            let mut interrupted = SyntheticSource::new(ctr(), 16);
            for _ in 0..cut {
                let a = reference.next_batch().unwrap();
                reference.recycle(a);
                let b = interrupted.next_batch().unwrap();
                interrupted.recycle(b);
            }
            let state = interrupted.state().expect("synthetic sources resume");
            drop(interrupted); // the "crash"
            let mut resumed = SyntheticSource::new(ctr(), 16);
            resumed.restore(&state);
            for step in 0..4 {
                let expected = reference.next_batch().unwrap();
                let got = resumed.next_batch().unwrap();
                assert_eq!(*got, *expected, "cut {cut}, step {step} diverged");
                reference.recycle(expected);
                resumed.recycle(got);
            }
        }
    }

    #[test]
    fn trace_replay_resumes_bit_identically_mid_trace() {
        let t0 = table_trace(3, 1, 5, 8);
        let t1 = table_trace(2, 2, 5, 8);
        let mk = || TraceReplaySource::new(vec![t0.clone(), t1.clone()], 4, 7).unwrap();
        let mut reference = mk();
        for _ in 0..2 {
            let b = reference.next_batch().unwrap();
            reference.recycle(b);
        }
        let state = reference.state().expect("trace replay resumes");
        let mut resumed = mk();
        resumed.restore(&state);
        loop {
            match (reference.next_batch(), resumed.next_batch()) {
                (Some(a), Some(b)) => assert_eq!(*a, *b),
                (None, None) => break,
                (a, b) => panic!(
                    "exhaustion disagrees: reference {:?} vs resumed {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot restore")]
    fn restore_rejects_the_wrong_state_variant() {
        let mut source = SyntheticSource::new(ctr(), 8);
        source.restore(&SourceState::TraceReplay {
            cursor: 0,
            rng_state: 1,
        });
    }

    #[test]
    fn trace_replay_is_seeded() {
        let mk = || TraceReplaySource::new(vec![table_trace(2, 10, 3, 8)], 4, 42).unwrap();
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..3 {
            assert_eq!(*a.next_batch().unwrap(), *b.next_batch().unwrap());
        }
    }
}

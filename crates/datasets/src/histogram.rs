//! Lookup histograms and coalescing statistics — the measurements behind
//! Fig. 5 of the paper.
//!
//! Fig. 5a plots, per dataset, the probability of each table entry being
//! looked up (sorted descending); Fig. 5b measures the size of the
//! gradient tensor before expansion, after expansion, and after
//! coalescing, as a function of batch size. [`LookupHistogram`] computes
//! the former from sampled lookups; [`CoalesceStats`] the latter.

use crate::workload::TableWorkload;
use std::collections::HashMap;
use tcast_embedding::IndexArray;

/// A histogram of lookups per distinct table row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LookupHistogram {
    counts: HashMap<u32, u64>,
    total: u64,
}

impl LookupHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from a stream of looked-up row ids.
    pub fn from_lookups(ids: &[u32]) -> Self {
        let mut h = Self::new();
        h.record_all(ids);
        h
    }

    /// Records one lookup.
    pub fn record(&mut self, id: u32) {
        *self.counts.entry(id).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records many lookups.
    pub fn record_all(&mut self, ids: &[u32]) {
        for &id in ids {
            self.record(id);
        }
    }

    /// Total lookups recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct rows ever looked up.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Empirical probabilities sorted descending — the Fig. 5a curve.
    pub fn sorted_probabilities(&self) -> Vec<f64> {
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = self.total.max(1) as f64;
        counts.into_iter().map(|c| c as f64 / total).collect()
    }

    /// Fraction of all lookups captured by the `k` hottest rows
    /// (the head-concentration scalar quoted alongside Fig. 5a).
    pub fn head_mass(&self, k: usize) -> f64 {
        self.sorted_probabilities().iter().take(k).sum()
    }
}

/// The three gradient-tensor sizes of Fig. 5b for one mini-batch, in rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Rows backpropagated from the DNN (= batch size `B`).
    pub backpropagated: usize,
    /// Rows after gradient expansion (= total lookups `n`).
    pub expanded: usize,
    /// Rows after coalescing (= unique lookups `U`).
    pub coalesced: usize,
}

impl CoalesceStats {
    /// Measures the stats of one index array.
    pub fn of_index(index: &IndexArray) -> Self {
        Self {
            backpropagated: index.num_outputs(),
            expanded: index.len(),
            coalesced: index.unique_src_count(),
        }
    }

    /// Generates a mini-batch from `workload` (seeded) and measures it —
    /// the Fig. 5b experiment for one (dataset, batch-size) cell.
    pub fn measure(workload: &TableWorkload, batch: usize, seed: u64) -> Self {
        let index = workload.generator(seed).next_batch(batch);
        Self::of_index(&index)
    }

    /// Expanded size relative to the backpropagated gradient
    /// (= pooling factor; "precisely 10x" in the paper's setup).
    pub fn expansion_ratio(&self) -> f64 {
        self.expanded as f64 / self.backpropagated.max(1) as f64
    }

    /// Coalesced size relative to the backpropagated gradient
    /// (the middle bars of Fig. 5b).
    pub fn coalesced_ratio(&self) -> f64 {
        self.coalesced as f64 / self.backpropagated.max(1) as f64
    }

    /// Fraction of expanded rows eliminated by coalescing
    /// (`1 - U/n`); higher = more locality.
    pub fn coalesce_savings(&self) -> f64 {
        1.0 - self.coalesced as f64 / self.expanded.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;
    use crate::presets::DatasetPreset;

    #[test]
    fn histogram_counts_and_total() {
        let h = LookupHistogram::from_lookups(&[1, 1, 2, 3, 3, 3]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.distinct(), 3);
        let probs = h.sorted_probabilities();
        assert_eq!(probs.len(), 3);
        assert!((probs[0] - 0.5).abs() < 1e-12); // id 3
        assert!((probs[1] - 2.0 / 6.0).abs() < 1e-12); // id 1
    }

    #[test]
    fn sorted_probabilities_sum_to_one() {
        let h = LookupHistogram::from_lookups(&[5, 9, 9, 1, 5, 5, 5]);
        let sum: f64 = h.sorted_probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn head_mass_monotone_in_k() {
        let h = LookupHistogram::from_lookups(&[0, 0, 0, 1, 1, 2]);
        assert!(h.head_mass(1) < h.head_mass(2));
        assert!((h.head_mass(3) - 1.0).abs() < 1e-12);
        assert!((h.head_mass(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LookupHistogram::new();
        assert_eq!(h.total(), 0);
        assert!(h.sorted_probabilities().is_empty());
        assert_eq!(h.head_mass(10), 0.0);
    }

    #[test]
    fn coalesce_stats_of_paper_example() {
        let idx = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        let s = CoalesceStats::of_index(&idx);
        assert_eq!(s.backpropagated, 2);
        assert_eq!(s.expanded, 5);
        assert_eq!(s.coalesced, 4);
        assert!((s.expansion_ratio() - 2.5).abs() < 1e-12);
        assert!((s.coalesced_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_ratio_equals_pooling_factor() {
        // "the expanded gradient size is precisely 10x larger than the
        // initial backpropagated gradients" for pooling 10.
        let w = TableWorkload::new(Popularity::Uniform { rows: 1000 }, 10);
        let s = CoalesceStats::measure(&w, 256, 1);
        assert!((s.expansion_ratio() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn coalescing_improves_with_batch_size() {
        // Fig. 5b: "the effectiveness of expanded gradient's getting
        // shrunk through coalescing is gradually increased as batch size
        // gets larger."
        let w = DatasetPreset::CriteoKaggle
            .table_workload(10)
            .with_rows(50_000);
        let small = CoalesceStats::measure(&w, 256, 2);
        let large = CoalesceStats::measure(&w, 4096, 2);
        assert!(
            large.coalesce_savings() > small.coalesce_savings(),
            "large-batch savings {} should exceed small-batch {}",
            large.coalesce_savings(),
            small.coalesce_savings()
        );
    }

    #[test]
    fn skewed_datasets_coalesce_better_than_random() {
        let random = DatasetPreset::Random.table_workload(10).with_rows(50_000);
        let criteo = DatasetPreset::CriteoKaggle
            .table_workload(10)
            .with_rows(50_000);
        let r = CoalesceStats::measure(&random, 2048, 3);
        let c = CoalesceStats::measure(&criteo, 2048, 3);
        assert!(c.coalesced < r.coalesced);
        assert!(c.coalesce_savings() > r.coalesce_savings());
    }
}

//! Background-prefetched batch generation: a [`PrefetchSource`] wraps
//! any [`BatchSource`] with a producer thread so batch *generation*
//! overlaps the consumer's work — the data-side counterpart of the
//! casting pipeline's Section IV-B overlap.
//!
//! The cross-batch `TrainLoop` driver hides *casting* behind training,
//! but generation itself (dense draws, Zipf index sampling, planted
//! labels) was still paid inline: the training loop blocks in
//! `next_batch`, and the online serving loop pays it inside its update
//! slot. `PrefetchSource` moves that work onto a dedicated producer
//! thread feeding a bounded ready-queue:
//!
//! * **Same stream, any interleaving.** One producer fills a FIFO
//!   queue, so the delivered checkout order is exactly the wrapped
//!   source's order — bit-identical regardless of how producer and
//!   consumer interleave (and recycling never changes a source's
//!   stream, by the [`BatchSource`] contract).
//! * **Bounded queue = backpressure.** The producer blocks once
//!   `capacity` batches are ready (mirroring the casting pipeline's
//!   in-flight cap), so a fast producer cannot buffer unboundedly.
//! * **Free-list recycling across the thread boundary.** Batches given
//!   back via [`BatchSource::recycle`] park in a shared free-list the
//!   producer drains into the wrapped source before each generation, so
//!   the steady state refills recycled buffers instead of allocating:
//!   once `capacity + 2` buffers circulate, the free-list can never be
//!   empty at production time (buffers only move between the ready
//!   queue, the consumer, and the free-list), and every later batch is
//!   an in-place refill (enforced in `tests/zero_alloc.rs`).
//!
//! Dropping a `PrefetchSource` (or calling
//! [`PrefetchSource::into_inner`]) signals shutdown and joins the
//! producer; a producer blocked on a full queue wakes immediately, and
//! one that is mid-generation finishes its batch first.

use crate::source::{BatchSource, SourceState};
use crate::synthetic::CtrBatch;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Counters a [`PrefetchSource`] keeps about its producer/consumer
/// hand-off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Batches the producer thread generated.
    pub produced: u64,
    /// Batches handed to the consumer.
    pub delivered: u64,
    /// High-water mark of the ready-queue — never exceeds the capacity
    /// (the producer blocks instead of overfilling).
    pub max_ready: usize,
    /// Total time the producer spent blocked on a full ready-queue
    /// (backpressure; the consumer is the bottleneck).
    pub producer_wait: Duration,
    /// Total time the consumer spent blocked on an empty ready-queue —
    /// the *exposed* generation latency, the prefetch analogue of the
    /// casting pipeline's exposed wait. Zero means generation was fully
    /// hidden behind the consumer's own work.
    pub consumer_wait: Duration,
}

struct State {
    /// Each ready batch travels with the wrapped source's stream
    /// position *after* generating it, so the consumer always knows the
    /// exact resume point for what it has checked out — the producer's
    /// run-ahead never leaks into checkpoints.
    ready: VecDeque<(Arc<CtrBatch>, Option<SourceState>)>,
    /// The wrapped source's position as of the last batch the consumer
    /// checked out (initially, its position at construction).
    consumed_state: Option<SourceState>,
    free: Vec<Arc<CtrBatch>>,
    /// The wrapped source returned `None`: the stream is over.
    exhausted: bool,
    /// Consumer-side shutdown request (drop / `into_inner`).
    shutdown: bool,
    /// The producer thread has exited (set on every exit path,
    /// including a panic in the wrapped source, so a waiting consumer
    /// can never deadlock on a dead producer).
    producer_done: bool,
    stats: PrefetchStats,
}

struct Shared {
    state: Mutex<State>,
    /// Signals the consumer: a batch arrived / the stream ended.
    produced: Condvar,
    /// Signals the producer: queue space opened / shutdown requested.
    space: Condvar,
    capacity: usize,
}

impl Shared {
    /// Locks the state, recovering from poisoning: the state is plain
    /// bookkeeping (queues and counters mutated under the lock only),
    /// so a panicking peer leaves it consistent — and the shutdown path
    /// must still work after one side has died.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Ensures `producer_done` is published and sleepers woken on *every*
/// producer exit — normal return, shutdown, or a panic unwinding out of
/// the wrapped source.
struct ProducerExitGuard(Arc<Shared>);

impl Drop for ProducerExitGuard {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.producer_done = true;
        self.0.produced.notify_all();
        self.0.space.notify_all();
    }
}

/// A [`BatchSource`] adapter running the wrapped source on a background
/// producer thread behind a bounded ready-queue.
///
/// ```
/// use tcast_datasets::{BatchSource, PrefetchSource, SyntheticCtr, SyntheticSource, TableWorkload, Popularity};
///
/// let tables = vec![TableWorkload::new(Popularity::Uniform { rows: 50 }, 2)];
/// let inner = SyntheticSource::new(SyntheticCtr::new(tables, 4, 1), 16);
/// let mut source = PrefetchSource::new(inner, 2); // generation runs ahead
/// for _ in 0..5 {
///     let batch = source.next_batch().expect("synthetic streams are endless");
///     // ... train on `batch` while the producer generates the next ...
///     source.recycle(batch);
/// }
/// assert_eq!(source.stats().delivered, 5);
/// ```
pub struct PrefetchSource<S: BatchSource + Send + 'static> {
    shared: Arc<Shared>,
    producer: Option<JoinHandle<S>>,
}

impl<S: BatchSource + Send + 'static> PrefetchSource<S> {
    /// Wraps `source`, spawning the producer thread with a ready-queue
    /// bound of `capacity` batches.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(source: S, capacity: usize) -> Self {
        assert!(capacity > 0, "need a nonzero prefetch capacity");
        let initial_state = source.state();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                ready: VecDeque::with_capacity(capacity),
                consumed_state: initial_state,
                free: Vec::with_capacity(capacity + 2),
                exhausted: false,
                shutdown: false,
                producer_done: false,
                stats: PrefetchStats::default(),
            }),
            produced: Condvar::new(),
            space: Condvar::new(),
            capacity,
        });
        let worker_shared = Arc::clone(&shared);
        let producer = std::thread::Builder::new()
            .name("tcast-prefetch".to_string())
            .spawn(move || Self::produce(source, &worker_shared))
            .expect("spawn prefetch producer");
        Self {
            shared,
            producer: Some(producer),
        }
    }

    /// The producer loop: wait for queue space, drain recycled buffers
    /// into the wrapped source, generate one batch (lock *not* held —
    /// this is the work being overlapped), publish it. Returns the
    /// wrapped source so [`PrefetchSource::into_inner`] can hand it
    /// back.
    fn produce(mut source: S, shared: &Arc<Shared>) -> S {
        let _guard = ProducerExitGuard(Arc::clone(shared));
        // Prime the wrapped source's free pool with empty shells (its
        // `*_into` refill path sizes them on first use). With
        // `capacity + 2` buffers circulating from the start, a consumer
        // holding at most one batch can never catch the pool empty —
        // even when its recycle races the producer's drain — so the
        // warm steady state provably needs no fresh batch allocation.
        // Consumers that hold more batches at once self-stabilize: each
        // miss adds one buffer to the pool, permanently.
        for _ in 0..shared.capacity + 2 {
            source.recycle(Arc::new(CtrBatch::default()));
        }
        let mut recycled: Vec<Arc<CtrBatch>> = Vec::new();
        loop {
            {
                let mut st = shared.lock();
                while st.ready.len() >= shared.capacity && !st.shutdown {
                    let t0 = Instant::now();
                    st = shared.space.wait(st).unwrap_or_else(|e| e.into_inner());
                    st.stats.producer_wait += t0.elapsed();
                }
                if st.shutdown {
                    return source;
                }
                recycled.append(&mut st.free);
            }
            for batch in recycled.drain(..) {
                source.recycle(batch);
            }
            let next = source.next_batch();
            let post_state = source.state();
            let mut st = shared.lock();
            match next {
                Some(batch) => {
                    st.ready.push_back((batch, post_state));
                    st.stats.produced += 1;
                    st.stats.max_ready = st.stats.max_ready.max(st.ready.len());
                    shared.produced.notify_one();
                }
                None => {
                    st.exhausted = true;
                    shared.produced.notify_all();
                    return source;
                }
            }
            if st.shutdown {
                return source;
            }
        }
    }

    /// The ready-queue bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Batches generated and waiting to be checked out.
    pub fn ready_len(&self) -> usize {
        self.shared.lock().ready.len()
    }

    /// Snapshot of the hand-off counters.
    pub fn stats(&self) -> PrefetchStats {
        self.shared.lock().stats
    }

    /// Shuts the producer down and returns the wrapped source (with its
    /// own free-list intact). Batches still in the ready-queue or the
    /// shared free-list are dropped — a source must produce the same
    /// stream without them, per the [`BatchSource`] contract.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the producer thread (i.e. from the
    /// wrapped source's `next_batch`/`recycle`).
    pub fn into_inner(mut self) -> S {
        self.request_shutdown();
        let handle = self.producer.take().expect("producer not yet joined");
        match handle.join() {
            Ok(source) => source,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    fn request_shutdown(&self) {
        let mut st = self.shared.lock();
        st.shutdown = true;
        self.shared.space.notify_all();
        self.shared.produced.notify_all();
    }
}

impl<S: BatchSource + Send + 'static> BatchSource for PrefetchSource<S> {
    /// Pops the oldest prefetched batch, blocking until the producer
    /// delivers one (the blocked time is recorded as
    /// [`PrefetchStats::consumer_wait`] — the exposed generation
    /// latency). Returns `None` once the wrapped stream is exhausted
    /// and the queue drained.
    ///
    /// # Panics
    ///
    /// Panics if the producer thread died without ending the stream
    /// (the wrapped source panicked mid-generation).
    fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
        let mut st = self.shared.lock();
        loop {
            if let Some((batch, post_state)) = st.ready.pop_front() {
                st.stats.delivered += 1;
                st.consumed_state = post_state;
                self.shared.space.notify_one();
                return Some(batch);
            }
            if st.exhausted {
                return None;
            }
            assert!(
                !st.producer_done,
                "prefetch producer died without exhausting the stream"
            );
            let t0 = Instant::now();
            st = self
                .shared
                .produced
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
            st.stats.consumer_wait += t0.elapsed();
        }
    }

    /// Parks the batch in the shared free-list; the producer drains it
    /// into the wrapped source before its next generation.
    fn recycle(&mut self, batch: Arc<CtrBatch>) {
        let mut st = self.shared.lock();
        st.free.push(batch);
        self.shared.space.notify_one();
    }

    /// The wrapped source's position as of the last batch the *consumer*
    /// checked out — not the producer's run-ahead position. A fresh
    /// wrapped source restored to this state and re-wrapped continues
    /// the delivered stream exactly, which is how `TrainLoop` checkpoints
    /// through a prefetched source without draining it.
    fn state(&self) -> Option<SourceState> {
        self.shared.lock().consumed_state
    }

    fn restore(&mut self, state: &SourceState) {
        let _ = state;
        panic!(
            "restore the wrapped source before constructing the \
             PrefetchSource (the producer thread owns it afterwards)"
        );
    }
}

impl<S: BatchSource + Send + 'static> Drop for PrefetchSource<S> {
    fn drop(&mut self) {
        if let Some(handle) = self.producer.take() {
            self.request_shutdown();
            // Swallow a producer panic: propagating from drop would
            // abort. `into_inner` is the propagating path.
            let _ = handle.join();
        }
    }
}

impl<S: BatchSource + Send + 'static> std::fmt::Debug for PrefetchSource<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.lock();
        f.debug_struct("PrefetchSource")
            .field("capacity", &self.shared.capacity)
            .field("ready", &st.ready.len())
            .field("free", &st.free.len())
            .field("exhausted", &st.exhausted)
            .field("stats", &st.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;
    use crate::source::{SyntheticSource, TraceReplaySource};
    use crate::synthetic::SyntheticCtr;
    use crate::workload::TableWorkload;

    fn ctr(seed: u64) -> SyntheticCtr {
        let tables = vec![
            TableWorkload::new(
                Popularity::Zipf {
                    rows: 300,
                    exponent: 1.0,
                },
                3,
            ),
            TableWorkload::new(Popularity::Uniform { rows: 100 }, 2),
        ];
        SyntheticCtr::new(tables, 4, seed)
    }

    fn trace(seed: u64, batches: usize, batch: usize) -> TraceReplaySource {
        let w = TableWorkload::new(
            Popularity::Zipf {
                rows: 200,
                exponent: 1.0,
            },
            3,
        );
        let mut g = w.generator(seed);
        let t: Vec<_> = (0..batches).map(|_| g.next_batch(batch)).collect();
        TraceReplaySource::new(vec![t], 4, seed).unwrap()
    }

    #[test]
    fn prefetched_stream_is_bit_identical_to_inline() {
        let mut inline = SyntheticSource::new(ctr(11), 16);
        let mut prefetched = PrefetchSource::new(SyntheticSource::new(ctr(11), 16), 3);
        for step in 0..12 {
            let want = inline.next_batch().unwrap();
            let got = prefetched.next_batch().unwrap();
            assert_eq!(*got, *want, "diverged at step {step}");
            inline.recycle(want);
            prefetched.recycle(got);
        }
        let stats = prefetched.stats();
        assert_eq!(stats.delivered, 12);
        assert!(stats.produced >= 12);
        assert!(
            stats.max_ready <= 3,
            "queue overfilled: {}",
            stats.max_ready
        );
    }

    #[test]
    fn prefetched_stream_is_identical_without_recycling() {
        // Recycling is an optimization, never a correctness requirement
        // — hoarding every batch must not change the stream.
        let mut inline = SyntheticSource::new(ctr(5), 8);
        let mut prefetched = PrefetchSource::new(SyntheticSource::new(ctr(5), 8), 2);
        let mut hoard = Vec::new();
        for step in 0..8 {
            let want = inline.next_batch().unwrap();
            let got = prefetched.next_batch().unwrap();
            assert_eq!(*got, *want, "diverged at step {step}");
            hoard.push(got);
        }
    }

    #[test]
    fn finite_trace_replay_exhausts_cleanly() {
        let mut plain = trace(7, 4, 8);
        let mut prefetched = PrefetchSource::new(trace(7, 4, 8), 2);
        for step in 0..4 {
            let want = plain.next_batch().unwrap();
            let got = prefetched.next_batch().expect("trace not exhausted");
            assert_eq!(*got, *want, "diverged at step {step}");
            prefetched.recycle(got);
        }
        assert!(prefetched.next_batch().is_none(), "trace must end");
        assert!(prefetched.next_batch().is_none(), "None must be sticky");
    }

    #[test]
    fn producer_respects_the_capacity_bound() {
        let prefetched = PrefetchSource::new(SyntheticSource::new(ctr(3), 8), 2);
        // Never consume: the producer fills the queue to capacity and
        // parks *before* generating a third batch.
        let deadline = Instant::now() + Duration::from_secs(5);
        while prefetched.ready_len() < 2 {
            assert!(Instant::now() < deadline, "producer never filled the queue");
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(20));
        let stats = prefetched.stats();
        assert_eq!(stats.produced, 2, "producer overran the bounded queue");
        assert_eq!(stats.max_ready, 2);
    }

    #[test]
    fn into_inner_returns_the_wrapped_source() {
        let mut prefetched = PrefetchSource::new(SyntheticSource::new(ctr(9), 16), 2);
        let first = prefetched.next_batch().unwrap();
        prefetched.recycle(first);
        // The wrapped source keeps working after unwrapping. Its stream
        // position reflects every batch the producer generated — some
        // were dropped with the ready-queue, which is fine: the stream,
        // not the buffers, is the contract.
        let mut inner = prefetched.into_inner();
        assert!(inner.next_batch().is_some());
    }

    #[test]
    fn consumer_wait_is_recorded_when_the_producer_is_slow() {
        struct Slow(SyntheticSource);
        impl BatchSource for Slow {
            fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
                std::thread::sleep(Duration::from_millis(2));
                self.0.next_batch()
            }
            fn recycle(&mut self, batch: Arc<CtrBatch>) {
                self.0.recycle(batch);
            }
        }
        let mut prefetched = PrefetchSource::new(Slow(SyntheticSource::new(ctr(13), 8)), 1);
        for _ in 0..3 {
            let b = prefetched.next_batch().unwrap();
            prefetched.recycle(b);
        }
        assert!(prefetched.stats().consumer_wait > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "producer died")]
    fn panicking_source_fails_the_consumer_instead_of_deadlocking() {
        struct Bomb;
        impl BatchSource for Bomb {
            fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
                panic!("synthetic source failure");
            }
            fn recycle(&mut self, _batch: Arc<CtrBatch>) {}
        }
        let mut prefetched = PrefetchSource::new(Bomb, 2);
        let _ = prefetched.next_batch();
    }

    #[test]
    fn prefetch_state_tracks_the_consumer_not_the_producer() {
        use crate::source::SourceState;
        // An inline source consumed in lockstep defines the expected
        // resume point; the prefetched source must report the same state
        // even while its producer runs ahead.
        let mut inline = SyntheticSource::new(ctr(17), 8);
        let mut prefetched = PrefetchSource::new(SyntheticSource::new(ctr(17), 8), 3);
        assert_eq!(prefetched.state(), inline.state(), "initial state");
        for step in 0..6 {
            let a = inline.next_batch().unwrap();
            let b = prefetched.next_batch().unwrap();
            assert_eq!(*a, *b);
            inline.recycle(a);
            prefetched.recycle(b);
            let (Some(SourceState::Synthetic { rng_state: ri, .. }), Some(state)) =
                (inline.state(), prefetched.state())
            else {
                panic!("synthetic sources must report state");
            };
            let SourceState::Synthetic { rng_state: rp, .. } = state else {
                panic!("wrong variant");
            };
            assert_eq!(rp, ri, "state diverged at step {step}");
            // Resuming a fresh source from the prefetched state continues
            // the delivered stream (checked on the last step).
            if step == 5 {
                let mut resumed = SyntheticSource::new(ctr(17), 8);
                resumed.restore(&state);
                let want = inline.next_batch().unwrap();
                let got = resumed.next_batch().unwrap();
                assert_eq!(*got, *want, "resumed stream diverged");
            }
        }
    }

    #[test]
    fn steady_state_circulates_a_bounded_buffer_pool() {
        // The allocation-free claim, certified structurally: with the
        // consumer recycling every batch, the wrapped source's free-list
        // plus the circulating buffers stop growing — every refill after
        // warm-up reuses a recycled CtrBatch. (The counting-allocator
        // enforcement lives in tests/zero_alloc.rs.)
        let mut prefetched = PrefetchSource::new(SyntheticSource::new(ctr(21), 16), 2);
        for _ in 0..40 {
            let b = prefetched.next_batch().unwrap();
            prefetched.recycle(b);
        }
        let inner = prefetched.into_inner();
        // Capacity 2 in the queue + 1 at the consumer + free-list slack.
        assert!(
            inner.free_list_len() <= 2 + 2,
            "buffer pool grew without bound: {} buffers parked",
            inner.free_list_len()
        );
    }
}

//! Popularity distributions over embedding-table rows.
//!
//! The gradient-coalescing behaviour the paper analyzes (Fig. 5) is
//! entirely a function of *how often distinct lookups collide*, i.e. the
//! popularity distribution of table rows. Two models cover the datasets:
//! uniform (the paper's "Random") and truncated Zipf (everything real).

use tcast_tensor::SplitMix64;

/// A popularity model over `rows` table entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every row equally likely — the paper's "Random" dataset.
    Uniform {
        /// Table cardinality.
        rows: usize,
    },
    /// Truncated Zipf: row of popularity-rank `k` (1-based) has weight
    /// `1 / k^exponent`. Larger exponents mean stronger skew (more
    /// coalescing).
    Zipf {
        /// Table cardinality.
        rows: usize,
        /// Zipf exponent `s > 0`.
        exponent: f64,
    },
}

impl Popularity {
    /// Truncated Zipf at `exponent`, degrading to [`Popularity::Uniform`]
    /// when `exponent <= 0` — the "0 means no skew" convention every
    /// config knob in the workspace uses (embedding-table lookup skew,
    /// serving hot-query skew).
    pub fn zipf_or_uniform(rows: usize, exponent: f64) -> Popularity {
        if exponent <= 0.0 {
            Popularity::Uniform { rows }
        } else {
            Popularity::Zipf { rows, exponent }
        }
    }

    /// Table cardinality.
    pub fn rows(&self) -> usize {
        match *self {
            Popularity::Uniform { rows } | Popularity::Zipf { rows, .. } => rows,
        }
    }

    /// Returns a copy with a different cardinality (used to scale presets
    /// down for fast tests without changing the skew).
    pub fn with_rows(&self, rows: usize) -> Popularity {
        match *self {
            Popularity::Uniform { .. } => Popularity::Uniform { rows },
            Popularity::Zipf { exponent, .. } => Popularity::Zipf { rows, exponent },
        }
    }

    /// The probability of the rank-`k` most popular row (0-based rank).
    ///
    /// This is the "probability function that quantifies an embedding
    /// table entry's likelihood of lookup" plotted in Fig. 5a.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= rows` or the table is empty.
    pub fn rank_probability(&self, rank: usize) -> f64 {
        assert!(rank < self.rows(), "rank {rank} out of range");
        match *self {
            Popularity::Uniform { rows } => 1.0 / rows as f64,
            Popularity::Zipf { rows, exponent } => {
                let h: f64 = harmonic(rows, exponent);
                ((rank + 1) as f64).powf(-exponent) / h
            }
        }
    }

    /// Builds a sampler for this distribution.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn sampler(&self) -> CdfSampler {
        CdfSampler::new(self)
    }
}

/// Generalized harmonic number `H(n, s) = sum_{k=1..n} k^-s`.
fn harmonic(n: usize, s: f64) -> f64 {
    (1..=n).map(|k| (k as f64).powf(-s)).sum()
}

/// Exact inverse-CDF sampler: O(rows) precomputation, O(log rows) per
/// sample via binary search, deterministic given the RNG.
///
/// Sampled ids are *popularity ranks* (0 = most popular). Real tables
/// store hot rows at arbitrary ids; since row placement does not affect
/// any statistic we model (collision rates, traffic, timing are
/// placement-independent under the paper's interleaving), rank ids are
/// used directly.
#[derive(Debug, Clone)]
pub struct CdfSampler {
    cdf: Vec<f64>,
    uniform_rows: Option<usize>,
}

impl CdfSampler {
    /// Builds the sampler for a distribution.
    ///
    /// # Panics
    ///
    /// Panics if the distribution has zero rows.
    pub fn new(pop: &Popularity) -> Self {
        let rows = pop.rows();
        assert!(rows > 0, "popularity model must have at least one row");
        match *pop {
            Popularity::Uniform { rows } => Self {
                cdf: Vec::new(),
                uniform_rows: Some(rows),
            },
            Popularity::Zipf { rows, exponent } => {
                let mut cdf = Vec::with_capacity(rows);
                let mut acc = 0.0f64;
                for k in 1..=rows {
                    acc += (k as f64).powf(-exponent);
                    cdf.push(acc);
                }
                let total = acc;
                for v in &mut cdf {
                    *v /= total;
                }
                Self {
                    cdf,
                    uniform_rows: None,
                }
            }
        }
    }

    /// Number of rows this sampler draws from.
    pub fn rows(&self) -> usize {
        self.uniform_rows.unwrap_or(self.cdf.len())
    }

    /// Draws one row id.
    pub fn sample(&self, rng: &mut SplitMix64) -> u32 {
        if let Some(rows) = self.uniform_rows {
            return rng.next_below(rows as u64) as u32;
        }
        let u = rng.next_f32() as f64;
        // First index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as u32
    }

    /// Draws `count` row ids.
    pub fn sample_many(&self, count: usize, rng: &mut SplitMix64) -> Vec<u32> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_or_uniform_honors_the_zero_convention() {
        assert_eq!(
            Popularity::zipf_or_uniform(10, 0.0),
            Popularity::Uniform { rows: 10 }
        );
        assert_eq!(
            Popularity::zipf_or_uniform(10, -1.0),
            Popularity::Uniform { rows: 10 }
        );
        assert_eq!(
            Popularity::zipf_or_uniform(10, 1.05),
            Popularity::Zipf {
                rows: 10,
                exponent: 1.05
            }
        );
    }

    #[test]
    fn uniform_rank_probability_is_flat() {
        let p = Popularity::Uniform { rows: 100 };
        assert!((p.rank_probability(0) - 0.01).abs() < 1e-12);
        assert_eq!(p.rank_probability(0), p.rank_probability(99));
    }

    #[test]
    fn zipf_probabilities_decrease_and_sum_to_one() {
        let p = Popularity::Zipf {
            rows: 1000,
            exponent: 1.1,
        };
        let mut sum = 0.0;
        let mut prev = f64::INFINITY;
        for k in 0..1000 {
            let q = p.rank_probability(k);
            assert!(q <= prev);
            prev = q;
            sum += q;
        }
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn with_rows_preserves_family() {
        let z = Popularity::Zipf {
            rows: 10,
            exponent: 0.8,
        };
        assert_eq!(
            z.with_rows(99),
            Popularity::Zipf {
                rows: 99,
                exponent: 0.8
            }
        );
        let u = Popularity::Uniform { rows: 10 };
        assert_eq!(u.with_rows(99), Popularity::Uniform { rows: 99 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_probability_bounds_checked() {
        Popularity::Uniform { rows: 5 }.rank_probability(5);
    }

    #[test]
    fn uniform_sampler_covers_range() {
        let s = Popularity::Uniform { rows: 16 }.sampler();
        let mut rng = SplitMix64::new(1);
        let draws = s.sample_many(4000, &mut rng);
        assert!(draws.iter().all(|&d| d < 16));
        let mut seen = [false; 16];
        for d in draws {
            seen[d as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "4000 draws must hit all 16 rows");
    }

    #[test]
    fn zipf_sampler_matches_analytic_head_probability() {
        let pop = Popularity::Zipf {
            rows: 1000,
            exponent: 1.0,
        };
        let s = pop.sampler();
        let mut rng = SplitMix64::new(2);
        let n = 200_000;
        let draws = s.sample_many(n, &mut rng);
        let head = draws.iter().filter(|&&d| d == 0).count() as f64 / n as f64;
        let expect = pop.rank_probability(0);
        assert!(
            (head - expect).abs() < 0.01,
            "empirical {head} vs analytic {expect}"
        );
    }

    #[test]
    fn zipf_skew_increases_collisions() {
        let mut rng = SplitMix64::new(3);
        let mut unique = |e: f64| {
            let s = Popularity::Zipf {
                rows: 10_000,
                exponent: e,
            }
            .sampler();
            let mut d = s.sample_many(5000, &mut rng);
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        let weak = unique(0.5);
        let strong = unique(1.5);
        assert!(
            strong < weak,
            "stronger skew must produce fewer unique ids ({strong} !< {weak})"
        );
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let s = Popularity::Zipf {
            rows: 100,
            exponent: 1.0,
        }
        .sampler();
        let a = s.sample_many(50, &mut SplitMix64::new(7));
        let b = s.sample_many(50, &mut SplitMix64::new(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_distribution_panics() {
        Popularity::Uniform { rows: 0 }.sampler();
    }

    #[test]
    fn single_row_always_sampled() {
        let s = Popularity::Zipf {
            rows: 1,
            exponent: 2.0,
        }
        .sampler();
        let mut rng = SplitMix64::new(4);
        assert!(s.sample_many(100, &mut rng).iter().all(|&d| d == 0));
    }
}

//! Per-dataset popularity presets (the paper's Fig. 5a datasets).
//!
//! Each preset fixes the cardinality of the dataset's *largest embedding
//! table* (what Fig. 5a plots) and a Zipf exponent fitted to the
//! qualitative shape of its published lookup-frequency curve. The ordering
//! of skew matters more than the absolute exponents: MovieLens (a small,
//! head-heavy catalog) coalesces best, Criteo ads traffic is strongly
//! skewed, Amazon and Alibaba have broader catalogs with milder skew, and
//! Random is the uniform control — the same qualitative ordering visible
//! in the paper's Fig. 5b.

use crate::popularity::Popularity;
use crate::workload::TableWorkload;

/// The five dataset rows of Figs. 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetPreset {
    /// Uniform-random lookups (the paper's locality-free control).
    Random,
    /// Amazon Review (Books): ~2.3 M items, mild skew.
    AmazonBooks,
    /// MovieLens-20M: ~27 k movies, strong head concentration.
    MovieLens20M,
    /// Alibaba Taobao UserBehavior: ~4.1 M items, mild-moderate skew.
    AlibabaUserBehavior,
    /// Criteo Kaggle display ads: ~1.3 M ids in the largest table,
    /// strong skew.
    CriteoKaggle,
}

impl DatasetPreset {
    /// All presets in the paper's Fig. 5/6 presentation order.
    pub const ALL: [DatasetPreset; 5] = [
        DatasetPreset::Random,
        DatasetPreset::AmazonBooks,
        DatasetPreset::MovieLens20M,
        DatasetPreset::AlibabaUserBehavior,
        DatasetPreset::CriteoKaggle,
    ];

    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::Random => "Random",
            DatasetPreset::AmazonBooks => "Amazon",
            DatasetPreset::MovieLens20M => "MovieLens",
            DatasetPreset::AlibabaUserBehavior => "Alibaba",
            DatasetPreset::CriteoKaggle => "Criteo Ads",
        }
    }

    /// The popularity model of the dataset's largest embedding table.
    pub fn popularity(&self) -> Popularity {
        match self {
            DatasetPreset::Random => Popularity::Uniform { rows: 1_000_000 },
            DatasetPreset::AmazonBooks => Popularity::Zipf {
                rows: 2_300_000,
                exponent: 0.85,
            },
            DatasetPreset::MovieLens20M => Popularity::Zipf {
                rows: 27_000,
                exponent: 1.15,
            },
            DatasetPreset::AlibabaUserBehavior => Popularity::Zipf {
                rows: 4_100_000,
                exponent: 0.75,
            },
            DatasetPreset::CriteoKaggle => Popularity::Zipf {
                rows: 1_300_000,
                exponent: 1.05,
            },
        }
    }

    /// Builds a [`TableWorkload`] for this dataset with the given pooling
    /// factor (lookups per sample; the paper's Fig. 5/6 uses 10).
    pub fn table_workload(&self, pooling: usize) -> TableWorkload {
        TableWorkload::new(self.popularity(), pooling)
    }
}

impl std::fmt::Display for DatasetPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_tensor::SplitMix64;

    #[test]
    fn all_presets_have_distinct_names() {
        let mut names: Vec<&str> = DatasetPreset::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn random_is_uniform() {
        assert!(matches!(
            DatasetPreset::Random.popularity(),
            Popularity::Uniform { .. }
        ));
    }

    #[test]
    fn real_datasets_are_zipf() {
        for p in [
            DatasetPreset::AmazonBooks,
            DatasetPreset::MovieLens20M,
            DatasetPreset::AlibabaUserBehavior,
            DatasetPreset::CriteoKaggle,
        ] {
            assert!(matches!(p.popularity(), Popularity::Zipf { .. }), "{p}");
        }
    }

    #[test]
    fn skew_ordering_matches_fig5b() {
        // Coalescing effectiveness (unique/lookups, lower = better
        // coalescing) must order: MovieLens < Criteo < Amazon/Alibaba <
        // Random — the qualitative ordering of the paper's Fig. 5b.
        // Scaled-down tables keep test time low while preserving ordering.
        let mut ratios = std::collections::HashMap::new();
        for p in DatasetPreset::ALL {
            let pop = p.popularity().with_rows(100_000);
            let sampler = pop.sampler();
            let mut rng = SplitMix64::new(11);
            let mut draws = sampler.sample_many(20_480, &mut rng);
            draws.sort_unstable();
            draws.dedup();
            ratios.insert(p.name(), draws.len() as f64 / 20_480.0);
        }
        assert!(ratios["MovieLens"] < ratios["Criteo Ads"]);
        assert!(ratios["Criteo Ads"] < ratios["Amazon"]);
        assert!(ratios["Amazon"] < ratios["Random"]);
        assert!(ratios["Alibaba"] < ratios["Random"]);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DatasetPreset::CriteoKaggle.to_string(), "Criteo Ads");
    }
}

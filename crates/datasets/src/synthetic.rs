//! Synthetic CTR training data with a *planted* model.
//!
//! End-to-end training tests need data whose loss actually decreases, so
//! the generator plants a ground-truth logistic model: each table row
//! carries a hidden affinity score, each dense feature a hidden weight,
//! and the click label is drawn from the sigmoid of their sum. A DLRM
//! model trained on this stream can (and in tests, must) beat the
//! all-zeros predictor.

use crate::workload::{TableWorkload, WorkloadGenerator};
use std::sync::Arc;
use tcast_embedding::IndexArray;
use tcast_tensor::{Matrix, SplitMix64};

/// One mini-batch of synthetic CTR data.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrBatch {
    /// Dense (continuous) features, `batch x dense_dim`.
    pub dense: Matrix,
    /// Per-table index arrays, each with `batch` outputs.
    ///
    /// Shared behind an `Arc` so consumers that ship the arrays to
    /// another thread — the trainer hands every casted step's indices to
    /// the [`CastingPipeline`] worker — bump a refcount instead of
    /// deep-cloning each table's arrays per step.
    ///
    /// [`CastingPipeline`]: ../tcast_core/struct.CastingPipeline.html
    pub indices: Arc<[IndexArray]>,
    /// Click labels in {0.0, 1.0}, `batch x 1`.
    pub labels: Matrix,
}

impl Default for CtrBatch {
    /// An empty shell ready to be filled by a `*_into` producer — the
    /// seed buffer a `BatchSource` free-list starts from.
    fn default() -> Self {
        Self {
            dense: Matrix::default(),
            indices: Arc::from(Vec::new()),
            labels: Matrix::default(),
        }
    }
}

impl CtrBatch {
    /// The mini-batch size.
    pub fn batch_size(&self) -> usize {
        self.labels.rows()
    }
}

/// Seeded generator of synthetic CTR batches over a set of tables.
#[derive(Debug, Clone)]
pub struct SyntheticCtr {
    tables: Vec<TableWorkload>,
    dense_dim: usize,
    dense_weights: Vec<f32>,
    row_affinity_seeds: Vec<u64>,
    rng: SplitMix64,
    /// Per-batch table seeds, drawn before the generators run; buffered
    /// here so the steady-state refill path performs no allocation.
    table_seed_scratch: Vec<u64>,
    /// One cached generator per table, reseeded each batch. A
    /// [`WorkloadGenerator`] owns the table's popularity sampler, whose
    /// construction is O(rows) (a `powf` per row for Zipf CDFs) —
    /// rebuilding it per batch per table used to dominate generation
    /// cost *and* allocate, breaking the free-list's allocation-free
    /// steady state. Reseeding draws the identical stream.
    generators: Vec<WorkloadGenerator>,
    /// Per-sample planted logits and per-sample affinity accumulators,
    /// buffered so the refill path stays allocation-free.
    logit_scratch: Vec<f32>,
    affinity_scratch: Vec<f32>,
    count_scratch: Vec<u32>,
}

impl SyntheticCtr {
    /// Creates a generator for `tables` with `dense_dim` continuous
    /// features, fully determined by `seed`.
    pub fn new(tables: Vec<TableWorkload>, dense_dim: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let dense_weights = (0..dense_dim).map(|_| rng.next_range(-1.0, 1.0)).collect();
        let row_affinity_seeds = (0..tables.len()).map(|_| rng.next_u64()).collect();
        let generators = tables.iter().map(|t| t.generator(0)).collect();
        Self {
            tables,
            dense_dim,
            dense_weights,
            row_affinity_seeds,
            rng,
            table_seed_scratch: Vec::new(),
            generators,
            logit_scratch: Vec::new(),
            affinity_scratch: Vec::new(),
            count_scratch: Vec::new(),
        }
    }

    /// Number of embedding tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Dense feature dimensionality.
    pub fn dense_dim(&self) -> usize {
        self.dense_dim
    }

    /// The stream position: everything a batch draws — dense features,
    /// per-table generator seeds, labels — comes from the one `rng`
    /// (generators are reseeded from it each batch; weights and affinity
    /// seeds are fixed at construction), so its state alone pins the
    /// position.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rewinds/advances the stream to a position captured by
    /// [`SyntheticCtr::rng_state`] on a generator built with the same
    /// tables, `dense_dim` and seed.
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = SplitMix64::new(state);
    }

    /// Generates the next mini-batch.
    pub fn next_batch(&mut self, batch: usize) -> CtrBatch {
        let mut out = CtrBatch::default();
        self.next_batch_into(batch, &mut out);
        out
    }

    /// [`SyntheticCtr::next_batch`] into a recycled [`CtrBatch`]: dense
    /// and label matrices are `zero_into`-recycled, and each table's
    /// index array is refilled in place whenever the batch's `indices`
    /// `Arc` is no longer shared (the steady state once the casting
    /// pipeline has dropped its submission share). Draws the same RNG
    /// sequence as `next_batch`, so recycled and fresh batches come from
    /// one bit-identical stream.
    pub fn next_batch_into(&mut self, batch: usize, out: &mut CtrBatch) {
        // Dense features ~ U(-1, 1).
        out.dense.zero_into(batch, self.dense_dim);
        for v in out.dense.as_mut_slice() {
            *v = self.rng.next_range(-1.0, 1.0);
        }
        // Sparse lookups per table: refill the recycled arrays if this
        // batch holds the only reference, else allocate a fresh set.
        self.table_seed_scratch.clear();
        for _ in 0..self.tables.len() {
            self.table_seed_scratch.push(self.rng.next_u64());
        }
        let recyclable = match Arc::get_mut(&mut out.indices) {
            Some(arrays) if arrays.len() == self.tables.len() => {
                for ((g, &s), index) in self
                    .generators
                    .iter_mut()
                    .zip(self.table_seed_scratch.iter())
                    .zip(arrays.iter_mut())
                {
                    g.reseed(s);
                    g.next_batch_into(batch, index);
                }
                true
            }
            _ => false,
        };
        if !recyclable {
            let indices: Vec<IndexArray> = self
                .generators
                .iter_mut()
                .zip(self.table_seed_scratch.iter())
                .map(|(g, &s)| {
                    g.reseed(s);
                    g.next_batch(batch)
                })
                .collect();
            out.indices = indices.into();
        }
        // Planted logit: dense part + mean affinity of looked-up rows.
        // Accumulated in one pass over each table's pairs (rather than
        // rescanning the whole index array per sample, which made
        // generation O(batch^2 x pooling) and too slow to ever hide
        // behind training at benchmark batch sizes). Per sample, the
        // additions happen in exactly the old order — dense dot first,
        // then each table's pairs in index order, tables in order — and
        // the label RNG draws once per sample in sample order, so the
        // stream is bit-identical to the quadratic form.
        out.labels.zero_into(batch, 1);
        self.logit_scratch.clear();
        for b in 0..batch {
            self.logit_scratch.push(
                out.dense
                    .row(b)
                    .iter()
                    .zip(self.dense_weights.iter())
                    .map(|(x, w)| x * w)
                    .sum(),
            );
        }
        for (t, index) in out.indices.iter().enumerate() {
            self.affinity_scratch.clear();
            self.affinity_scratch.resize(batch, 0.0);
            self.count_scratch.clear();
            self.count_scratch.resize(batch, 0);
            let table_seed = self.row_affinity_seeds[t];
            for (src, dst) in index.iter() {
                self.affinity_scratch[dst as usize] += affinity_of(table_seed, src);
                self.count_scratch[dst as usize] += 1;
            }
            for b in 0..batch {
                if self.count_scratch[b] > 0 {
                    self.logit_scratch[b] +=
                        self.affinity_scratch[b] / self.count_scratch[b] as f32;
                }
            }
        }
        for b in 0..batch {
            let p = 1.0 / (1.0 + (-2.0 * self.logit_scratch[b]).exp());
            out.labels.row_mut(b)[0] = if self.rng.next_f32() < p { 1.0 } else { 0.0 };
        }
    }
}

/// The planted model's hidden per-row affinity: a deterministic hash of
/// `(table seed, row)` mapped into `[-0.5, 0.5]`. Free-standing so the
/// refill path can call it while holding its scratch borrows.
fn affinity_of(table_seed: u64, row: u32) -> f32 {
    let mut h = SplitMix64::new(table_seed ^ (row as u64).wrapping_mul(0x9E3779B97F4A7C15));
    h.next_range(-0.5, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;

    fn gen() -> SyntheticCtr {
        let tables = vec![
            TableWorkload::new(
                Popularity::Zipf {
                    rows: 500,
                    exponent: 1.0,
                },
                3,
            ),
            TableWorkload::new(Popularity::Uniform { rows: 200 }, 2),
        ];
        SyntheticCtr::new(tables, 8, 42)
    }

    #[test]
    fn batch_shapes_are_consistent() {
        let mut g = gen();
        let b = g.next_batch(32);
        assert_eq!(b.dense.shape(), (32, 8));
        assert_eq!(b.labels.shape(), (32, 1));
        assert_eq!(b.indices.len(), 2);
        assert_eq!(b.indices[0].num_outputs(), 32);
        assert_eq!(b.indices[0].len(), 96); // pooling 3
        assert_eq!(b.indices[1].len(), 64); // pooling 2
    }

    #[test]
    fn labels_are_binary_and_mixed() {
        let mut g = gen();
        let b = g.next_batch(512);
        let ones = b.labels.as_slice().iter().filter(|&&v| v == 1.0).count();
        assert!(b.labels.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        // Planted model is roughly balanced; allow wide slack.
        assert!(ones > 64 && ones < 448, "ones = {ones}");
    }

    #[test]
    fn recycled_refill_matches_fresh_stream_bit_identically() {
        let mut fresh = gen();
        let mut recycling = gen();
        let mut buf = CtrBatch::default();
        for step in 0..4 {
            let expected = fresh.next_batch(32);
            // `buf.indices` is uniquely held, so from the second step on
            // this takes the in-place refill path.
            recycling.next_batch_into(32, &mut buf);
            assert_eq!(buf, expected, "stream diverged at step {step}");
        }
    }

    #[test]
    fn shared_indices_fall_back_to_fresh_allocation() {
        let mut a = gen();
        let mut b = gen();
        let mut buf = a.next_batch(16);
        let hold = Arc::clone(&buf.indices); // simulate the pipeline's share
        let _ = b.next_batch(16);
        b.next_batch_into(16, &mut buf);
        assert_eq!(buf, a.next_batch(16));
        drop(hold);
    }

    #[test]
    fn single_pass_logits_match_the_per_sample_scan() {
        // The planted logit used to be computed by rescanning every
        // table's pairs once per sample (O(batch^2 x pooling)); the
        // single-pass accumulator must reproduce that formula bit for
        // bit — per sample: dense dot, then each table's matching pairs
        // in index order.
        let mut g = gen();
        let b = g.next_batch(48);
        for s in 0..48 {
            let mut logit: f32 = b
                .dense
                .row(s)
                .iter()
                .zip(g.dense_weights.iter())
                .map(|(x, w)| x * w)
                .sum();
            for (t, index) in b.indices.iter().enumerate() {
                let mut acc = 0.0;
                let mut cnt = 0;
                for (src, dst) in index.iter() {
                    if dst as usize == s {
                        acc += affinity_of(g.row_affinity_seeds[t], src);
                        cnt += 1;
                    }
                }
                if cnt > 0 {
                    logit += acc / cnt as f32;
                }
            }
            assert_eq!(g.logit_scratch[s], logit, "sample {s} diverged");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = gen();
        let mut b = gen();
        let ba = a.next_batch(16);
        let bb = b.next_batch(16);
        assert_eq!(ba, bb);
    }

    #[test]
    fn labels_correlate_with_planted_model() {
        // Samples whose planted logit is positive must click more often
        // than those with negative logit: the signal is learnable.
        let mut g = gen();
        let mut pos_clicks = 0u32;
        let mut pos_total = 0u32;
        let mut neg_clicks = 0u32;
        let mut neg_total = 0u32;
        for _ in 0..4 {
            let batch = g.next_batch(256);
            for b in 0..256 {
                let logit: f32 = batch
                    .dense
                    .row(b)
                    .iter()
                    .zip(g.dense_weights.iter())
                    .map(|(x, w)| x * w)
                    .sum();
                let clicked = batch.labels.row(b)[0] == 1.0;
                if logit > 0.25 {
                    pos_total += 1;
                    pos_clicks += clicked as u32;
                } else if logit < -0.25 {
                    neg_total += 1;
                    neg_clicks += clicked as u32;
                }
            }
        }
        let pos_rate = pos_clicks as f64 / pos_total.max(1) as f64;
        let neg_rate = neg_clicks as f64 / neg_total.max(1) as f64;
        assert!(
            pos_rate > neg_rate + 0.1,
            "click rates must separate: {pos_rate} vs {neg_rate}"
        );
    }
}

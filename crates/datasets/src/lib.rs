//! Workload generation for the Tensor Casting reproduction: popularity
//! models of the paper's four public recommendation datasets, lookup
//! histograms and coalescing statistics (Fig. 5), and per-table index
//! generators plus synthetic CTR training data.
//!
//! # Substitution note (see DESIGN.md)
//!
//! The paper drives its locality analysis with Amazon Review (Books),
//! MovieLens-20M, Alibaba Taobao UserBehavior and Criteo Kaggle. Those
//! datasets are not redistributable here, so each is modelled as a
//! truncated-Zipf popularity distribution whose exponent and cardinality
//! are chosen to match the published shape of its lookup-frequency curve
//! (a handful of very hot entries, long cold tail — Fig. 5a). Every
//! figure that depends on a dataset consumes only its popularity
//! distribution (how often lookups collide), which the Zipf model
//! reproduces; item identities are irrelevant to the systems analysis.
//!
//! # Example
//!
//! ```
//! use tcast_datasets::{DatasetPreset, TableWorkload};
//!
//! // Criteo-like table, pooling factor 10 (the Fig. 5/6 setup).
//! let spec = DatasetPreset::CriteoKaggle.table_workload(10).with_rows(100_000);
//! let mut gen = spec.generator(42);
//! let index = gen.next_batch(2048);
//! assert_eq!(index.num_outputs(), 2048);
//! assert_eq!(index.len(), 2048 * 10);
//! // Skewed lookups coalesce well: far fewer unique rows than lookups.
//! assert!(index.unique_src_count() < index.len() / 2);
//! ```

mod histogram;
mod popularity;
mod prefetch;
mod presets;
mod sharded;
mod source;
mod synthetic;
pub mod trace;
mod workload;

pub use histogram::{CoalesceStats, LookupHistogram};
pub use popularity::{CdfSampler, Popularity};
pub use prefetch::{PrefetchSource, PrefetchStats};
pub use presets::DatasetPreset;
pub use sharded::ShardedPrefetchSource;
pub use source::{BatchSource, SourceState, SyntheticSource, TraceReplaySource};
pub use synthetic::{CtrBatch, SyntheticCtr};
pub use workload::{TableWorkload, WorkloadGenerator};

//! Multi-threaded Tensor Casting: Algorithm 2 with its dominant cost —
//! the sort-by-key — parallelized on the persistent pool.
//!
//! The paper runs the casting on a GPU (thousands of lanes); the original
//! host analogue here sorted per-thread chunks and then k-way-merged them
//! with an O(n·k) cursor scan, copying every chunk twice. This version is
//! an MSB-partitioned bucket sort with **no merge step at all**:
//!
//! 1. histogram the packed `(src, position)` keys into 256 buckets by the
//!    top bits of `src` (parallel, one histogram per task);
//! 2. prefix-sum the histograms so every bucket owns its final contiguous
//!    slice of the output;
//! 3. scatter each key into its bucket slice (stable single pass);
//! 4. sort every bucket independently in parallel (`split_at_mut` bands,
//!    no overlap).
//!
//! Because the bucket id is the high bits of the key, concatenated sorted
//! buckets *are* the globally sorted order — and because every packed key
//! is unique, that order is exactly the serial stable sort's. The result
//! is bit-identical to [`crate::tensor_casting`] on any distribution
//! (all-equal, all-unique, power-law, ...).

use crate::casted_index::CastedIndexArray;
use tcast_embedding::IndexArray;
use tcast_pool::Pool;

/// Number of MSB partitions (and an upper bound on sort tasks).
const BUCKETS: usize = 256;

/// Below this many lookups the serial transform wins; matches the old
/// threshold so existing behavior is preserved.
const PARALLEL_MIN: usize = 1024;

/// Parallel variant of [`crate::tensor_casting`] using `threads` tasks on
/// the shared [`tcast_pool::global`] pool. Bit-identical results to the
/// serial transform.
pub fn tensor_casting_parallel(index: &IndexArray, threads: usize) -> CastedIndexArray {
    tensor_casting_parallel_in(tcast_pool::global(), index, threads)
}

/// [`tensor_casting_parallel`] on an explicit pool.
pub fn tensor_casting_parallel_in(
    pool: &Pool,
    index: &IndexArray,
    threads: usize,
) -> CastedIndexArray {
    let n = index.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < PARALLEL_MIN {
        return crate::casting::tensor_casting(index);
    }
    let src = index.src();
    let dst = index.dst();
    let max_src = *src.iter().max().expect("n >= PARALLEL_MIN");

    // Bucket id = top (up to) 8 bits of src, so bucket order == key order.
    // Derived from max_src's bit length directly: `max_src + 1` would
    // overflow when an id equals u32::MAX.
    let shift = (u32::BITS - max_src.leading_zeros()).saturating_sub(8);

    // Step 1: parallel histogram, one row of counts per chunk-task.
    let chunk = n.div_ceil(threads);
    let tasks = n.div_ceil(chunk);
    let mut counts = vec![0u32; tasks * BUCKETS];
    pool.scope(|scope| {
        let mut rest = counts.as_mut_slice();
        for piece in src.chunks(chunk) {
            let (hist, tail) = rest.split_at_mut(BUCKETS);
            rest = tail;
            scope.spawn(move || {
                for &s in piece {
                    hist[(s >> shift) as usize] += 1;
                }
            });
        }
    });

    // Step 2: exclusive prefix sum over buckets (summed across chunks).
    let mut bucket_start = [0usize; BUCKETS + 1];
    for b in 0..BUCKETS {
        let total: usize = (0..tasks).map(|t| counts[t * BUCKETS + b] as usize).sum();
        bucket_start[b + 1] = bucket_start[b] + total;
    }

    // Step 3: stable scatter of packed keys into their bucket slices.
    let mut cursor = [0usize; BUCKETS];
    cursor.copy_from_slice(&bucket_start[..BUCKETS]);
    let mut keys = vec![0u64; n];
    for (pos, &s) in src.iter().enumerate() {
        let b = (s >> shift) as usize;
        keys[cursor[b]] = ((s as u64) << 32) | pos as u64;
        cursor[b] += 1;
    }

    // Step 4: sort each bucket slice in parallel. Keys are unique, so
    // `sort_unstable` within a bucket plus bucket-major order equals the
    // serial stable sort by `src`.
    pool.scope(|scope| {
        let mut rest = keys.as_mut_slice();
        for b in 0..BUCKETS {
            let len = bucket_start[b + 1] - bucket_start[b];
            let (bucket, tail) = rest.split_at_mut(len);
            rest = tail;
            if len > 1 {
                scope.spawn(move || bucket.sort_unstable());
            }
        }
    });

    // Unpack and run the scan/cumsum stages (Algorithm 2 steps 2-3).
    let mut sorted_src = Vec::with_capacity(n);
    let mut sorted_dst = Vec::with_capacity(n);
    for &key in &keys {
        sorted_src.push((key >> 32) as u32);
        sorted_dst.push(dst[(key & 0xFFFF_FFFF) as usize]);
    }
    crate::casting::build_casted(&sorted_src, sorted_dst, index.num_outputs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casting::tensor_casting;
    use tcast_tensor::SplitMix64;

    fn random_index(n_samples: usize, pooling: usize, rows: u64, seed: u64) -> IndexArray {
        let mut rng = SplitMix64::new(seed);
        let samples: Vec<Vec<u32>> = (0..n_samples)
            .map(|_| (0..pooling).map(|_| rng.next_below(rows) as u32).collect())
            .collect();
        IndexArray::from_samples(&samples).unwrap()
    }

    /// Power-law (approximately Zipf) ids over a large range: stresses
    /// skewed bucket occupancy.
    fn power_law_index(n_samples: usize, pooling: usize, rows: u64, seed: u64) -> IndexArray {
        let mut rng = SplitMix64::new(seed);
        let samples: Vec<Vec<u32>> = (0..n_samples)
            .map(|_| {
                (0..pooling)
                    .map(|_| {
                        let u = (rng.next_below(1 << 20) as f64 + 1.0) / (1u64 << 20) as f64;
                        let id = (u.powf(-1.2) - 1.0) as u64;
                        id.min(rows - 1) as u32
                    })
                    .collect()
            })
            .collect();
        IndexArray::from_samples(&samples).unwrap()
    }

    #[test]
    fn small_inputs_fall_back_to_serial() {
        let idx = random_index(8, 4, 100, 1);
        assert_eq!(tensor_casting_parallel(&idx, 8), tensor_casting(&idx));
    }

    #[test]
    fn large_inputs_match_serial_exactly() {
        let idx = random_index(512, 8, 1000, 2);
        assert!(idx.len() >= 1024);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                tensor_casting_parallel(&idx, threads),
                tensor_casting(&idx),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn heavy_duplication_matches_serial() {
        // Only 4 distinct rows: long equal-key runs concentrated in few
        // buckets stress the partitioning's stability.
        let idx = random_index(1024, 2, 4, 3);
        assert_eq!(tensor_casting_parallel(&idx, 4), tensor_casting(&idx));
    }

    #[test]
    fn all_equal_src_matches_serial() {
        // Degenerate distribution: every lookup hits one row, so a single
        // bucket holds everything.
        let samples: Vec<Vec<u32>> = (0..800).map(|_| vec![7, 7]).collect();
        let idx = IndexArray::from_samples(&samples).unwrap();
        assert!(idx.len() >= 1024);
        for threads in [2, 4, 16] {
            assert_eq!(
                tensor_casting_parallel(&idx, threads),
                tensor_casting(&idx),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn all_unique_src_matches_serial() {
        // Every src distinct (reversed so the input is maximally
        // unsorted); buckets are uniformly thin.
        let n = 4096u32;
        let src: Vec<u32> = (0..n).rev().collect();
        let dst: Vec<u32> = (0..n).map(|i| i % 64).collect();
        let idx = IndexArray::from_pairs(src, dst, 64).unwrap();
        for threads in [2, 4, 8] {
            assert_eq!(
                tensor_casting_parallel(&idx, threads),
                tensor_casting(&idx),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn power_law_matches_serial() {
        let idx = power_law_index(512, 8, 1_000_000, 4);
        assert!(idx.len() >= 1024);
        for threads in [2, 4, 8] {
            assert_eq!(
                tensor_casting_parallel(&idx, threads),
                tensor_casting(&idx),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn huge_id_range_matches_serial() {
        // max_src near u32::MAX exercises the full 8-bit shift.
        let mut rng = SplitMix64::new(9);
        let src: Vec<u32> = (0..2048)
            .map(|_| rng.next_below(u32::MAX as u64) as u32)
            .collect();
        let dst: Vec<u32> = (0..2048).map(|i| i % 128).collect();
        let idx = IndexArray::from_pairs(src, dst, 128).unwrap();
        assert_eq!(tensor_casting_parallel(&idx, 4), tensor_casting(&idx));
    }

    #[test]
    fn src_at_u32_max_matches_serial() {
        // Regression: ids at the very top of the u32 range must not
        // overflow the bucket-shift derivation.
        let n = 2048u32;
        let src: Vec<u32> = (0..n).map(|i| u32::MAX - (i % 97)).collect();
        let dst: Vec<u32> = (0..n).map(|i| i % 64).collect();
        let idx = IndexArray::from_pairs(src, dst, 64).unwrap();
        for threads in [2, 4] {
            assert_eq!(
                tensor_casting_parallel(&idx, threads),
                tensor_casting(&idx),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn single_thread_matches_serial() {
        let idx = random_index(512, 4, 500, 4);
        assert_eq!(tensor_casting_parallel(&idx, 1), tensor_casting(&idx));
    }

    #[test]
    fn explicit_pool_matches_global() {
        let pool = Pool::new(2);
        let idx = random_index(512, 4, 300, 5);
        assert_eq!(
            tensor_casting_parallel_in(&pool, &idx, 2),
            tensor_casting(&idx)
        );
    }
}

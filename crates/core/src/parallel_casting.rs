//! Multi-threaded Tensor Casting: Algorithm 2 with its dominant cost —
//! the sort-by-key — parallelized.
//!
//! The paper runs the casting on a GPU (thousands of lanes); the host
//! analogue is a chunked parallel sort: partition the packed
//! `(src, position)` keys, sort each partition on its own thread, then
//! k-way merge. Because every packed key is unique, the merged order is
//! identical to the serial stable sort's, so the result is *exactly* the
//! serial [`crate::tensor_casting`] output.

use crate::casted_index::CastedIndexArray;
use tcast_embedding::IndexArray;

/// Parallel variant of [`crate::tensor_casting`] using `threads` sort
/// workers. Bit-identical results to the serial transform.
pub fn tensor_casting_parallel(index: &IndexArray, threads: usize) -> CastedIndexArray {
    let n = index.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        return crate::casting::tensor_casting(index);
    }

    // Pack (src, position); unique keys make merge order deterministic.
    let src = index.src();
    let keys: Vec<u64> = src
        .iter()
        .enumerate()
        .map(|(pos, &s)| ((s as u64) << 32) | pos as u64)
        .collect();

    // Sort chunks in parallel.
    let chunk = n.div_ceil(threads);
    let mut sorted_chunks: Vec<Vec<u64>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = keys
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    let mut v = c.to_vec();
                    v.sort_unstable();
                    v
                })
            })
            .collect();
        for h in handles {
            sorted_chunks.push(h.join().expect("sort worker panicked"));
        }
    });

    // K-way merge via a simple cursor scan (k is small).
    let mut cursors = vec![0usize; sorted_chunks.len()];
    let mut merged = Vec::with_capacity(n);
    loop {
        let mut best: Option<(usize, u64)> = None;
        for (i, chunk) in sorted_chunks.iter().enumerate() {
            if let Some(&key) = chunk.get(cursors[i]) {
                if best.is_none_or(|(_, b)| key < b) {
                    best = Some((i, key));
                }
            }
        }
        let Some((i, key)) = best else { break };
        cursors[i] += 1;
        merged.push(key);
    }

    // Unpack and run the scan/cumsum stages.
    let dst = index.dst();
    let mut sorted_src = Vec::with_capacity(n);
    let mut sorted_dst = Vec::with_capacity(n);
    for key in merged {
        sorted_src.push((key >> 32) as u32);
        sorted_dst.push(dst[(key & 0xFFFF_FFFF) as usize]);
    }
    let mut reduce_dst = Vec::with_capacity(n);
    let mut unique_rows = Vec::new();
    let mut current: i64 = -1;
    let mut prev: Option<u32> = None;
    for &s in &sorted_src {
        if prev != Some(s) {
            current += 1;
            unique_rows.push(s);
        }
        reduce_dst.push(current as u32);
        prev = Some(s);
    }
    CastedIndexArray::new(sorted_dst, reduce_dst, unique_rows, index.num_outputs())
        .expect("parallel casting output satisfies invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casting::tensor_casting;
    use tcast_tensor::SplitMix64;

    fn random_index(n_samples: usize, pooling: usize, rows: u64, seed: u64) -> IndexArray {
        let mut rng = SplitMix64::new(seed);
        let samples: Vec<Vec<u32>> = (0..n_samples)
            .map(|_| (0..pooling).map(|_| rng.next_below(rows) as u32).collect())
            .collect();
        IndexArray::from_samples(&samples).unwrap()
    }

    #[test]
    fn small_inputs_fall_back_to_serial() {
        let idx = random_index(8, 4, 100, 1);
        assert_eq!(tensor_casting_parallel(&idx, 8), tensor_casting(&idx));
    }

    #[test]
    fn large_inputs_match_serial_exactly() {
        let idx = random_index(512, 8, 1000, 2);
        assert!(idx.len() >= 1024);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                tensor_casting_parallel(&idx, threads),
                tensor_casting(&idx),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn heavy_duplication_matches_serial() {
        // Only 4 distinct rows: long equal-key runs across chunks stress
        // the merge's stability.
        let idx = random_index(1024, 2, 4, 3);
        assert_eq!(tensor_casting_parallel(&idx, 4), tensor_casting(&idx));
    }

    #[test]
    fn single_thread_matches_serial() {
        let idx = random_index(512, 4, 500, 4);
        assert_eq!(tensor_casting_parallel(&idx, 1), tensor_casting(&idx));
    }
}

//! **Tensor Casting** — the paper's primary contribution.
//!
//! The baseline backward pass of an embedding layer is the two-step
//! *gradient expand-coalesce* (Algorithm 1 in the paper, implemented in
//! `tcast-embedding`): expand the `B x D` backpropagated gradients into an
//! `n x D` intermediate, sort by `src`, then accumulate duplicates. The
//! paper's key observation is that coalescing *is* a reduction: if the
//! backpropagated gradients are viewed as a "gradient table" of `B` rows,
//! expand-coalesce is exactly a **tensor gather-reduce over that table** —
//! the same primitive as forward propagation.
//!
//! This crate implements:
//!
//! * [`tensor_casting`] — **Algorithm 2**: transform the original
//!   `(src, dst)` index array into the casted `(casted_src, casted_dst)`
//!   pair via sort-by-key → adjacent-difference scan → cumulative sum
//!   (Fig. 8);
//! * [`casted_gather_reduce`] — **Algorithm 3**: the fused backward
//!   kernel that gathers gradient rows by `casted_src` and reduces them
//!   into coalesced rows by `casted_dst`, with no `n x D` intermediate and
//!   no sort on the critical path;
//! * [`CastingPipeline`] — the software runtime of Section IV-B: casting
//!   depends only on the index array, which is known *before* forward
//!   propagation, so a pipeline worker (the paper uses the otherwise-idle
//!   GPU) precomputes casted arrays concurrently with the forward pass and
//!   backward consumes them for free.
//!
//! # Functional equivalence
//!
//! `casted_gather_reduce(tensor_casting(idx), grads)` produces bit-for-bit
//! the gradients of `gradient_expand_coalesce(grads, idx)` (both reduce in
//! ascending-`src`, original-pair order) — see [`verify_equivalence`] and
//! the property tests. This mirrors the paper's own validation: "We
//! thoroughly validate the functional equivalence between the baseline
//! gradient expand-coalesce primitive and our proposed tensor casted
//! gradient gather-reduce operator."
//!
//! # Example
//!
//! ```
//! use tcast_core::{tensor_casting, casted_gather_reduce};
//! use tcast_embedding::IndexArray;
//! use tcast_tensor::Matrix;
//!
//! # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
//! // Fig. 2/7/8 running example.
//! let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]])?;
//! let casted = tensor_casting(&index);
//! assert_eq!(casted.gather_src(), &[1, 0, 0, 1, 0]);
//! assert_eq!(casted.reduce_dst(), &[0, 1, 2, 2, 3]);
//!
//! let grads = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap(); // G[0], G[1]
//! let coalesced = casted_gather_reduce(&grads, &casted)?;
//! assert_eq!(coalesced.rows(), &[0, 1, 2, 4]);
//! assert_eq!(coalesced.grads().row(2), &[3.0]); // G[0]+G[1] for E[2]
//! # Ok(())
//! # }
//! ```

mod cache;
mod casted_forward;
mod casted_index;
mod casting;
mod equivalence;
mod fault;
mod fused;
mod gather_reduce;
mod parallel_casting;
mod runtime;

pub use cache::CastingCache;
pub use casted_forward::{casted_embedding_forward, casted_embedding_forward_into};
pub use casted_index::CastedIndexArray;
pub use casting::{tensor_casting, tensor_casting_counting};
pub use equivalence::verify_equivalence;
pub use fault::{FaultPlan, FaultyWrite};
pub use fused::fused_casted_backward;
pub use gather_reduce::{
    casted_backward, casted_gather_reduce, casted_gather_reduce_into,
    casted_gather_reduce_parallel, casted_gather_reduce_parallel_in, CoalescedScratch,
};
pub use parallel_casting::{tensor_casting_parallel, tensor_casting_parallel_in};
pub use runtime::{CastingPipeline, JobTicket, PipelineStats, DEFAULT_INFLIGHT_CAP};

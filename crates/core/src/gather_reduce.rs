//! Algorithm 3: the T.Casted gradient gather-reduce kernel.
//!
//! With the casted index array in hand, the whole baseline backward
//! pipeline (expand → sort → accumulate) collapses into the single fused
//! loop of the paper's Algorithm 3:
//!
//! ```text
//! for i in 0..n {
//!     coal_grad[dst[i]] += grad[src[i]]
//! }
//! ```
//!
//! No `n x D` expanded intermediate is materialized and no sort runs on
//! the backward critical path — the two properties that cut memory
//! intensity by ~2x (Section IV-A) and unify backward with the forward
//! gather-reduce primitive (Section IV-C).

use crate::casted_index::CastedIndexArray;
use crate::casting::tensor_casting;
use tcast_embedding::{CoalescedGradients, EmbeddingError, IndexArray};
use tcast_pool::{Exec, Pool};
use tcast_tensor::Matrix;

/// The fused casted gather-reduce (Algorithm 3's `GatherReduce`): gathers
/// row `gather_src[i]` of the `B x D` gradient table and reduces it into
/// coalesced row `reduce_dst[i]`.
///
/// Returns the same [`CoalescedGradients`] the baseline
/// `gradient_expand_coalesce` produces.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `grads.rows()` differs
/// from `casted.num_gradient_rows()`.
pub fn casted_gather_reduce(
    grads: &Matrix,
    casted: &CastedIndexArray,
) -> Result<CoalescedGradients, EmbeddingError> {
    if grads.rows() != casted.num_gradient_rows() {
        return Err(EmbeddingError::LengthMismatch {
            expected: casted.num_gradient_rows(),
            found: grads.rows(),
        });
    }
    let dim = grads.cols();
    let mut out = Matrix::zeros(casted.num_unique(), dim);
    let kernel = tcast_tensor::simd::dispatch();
    let gather_src = casted.gather_src();
    for (i, (&src, &dst)) in gather_src
        .iter()
        .zip(casted.reduce_dst().iter())
        .enumerate()
    {
        if let Some(&next) = gather_src.get(i + 1) {
            tcast_tensor::simd::prefetch(grads.row(next as usize));
        }
        let row = grads.row(src as usize);
        let acc = out.row_mut(dst as usize);
        tcast_tensor::simd::add_assign(kernel, acc, row);
    }
    CoalescedGradients::new(casted.unique_rows().to_vec(), out)
}

/// Parallel variant of [`casted_gather_reduce`] on the shared
/// [`tcast_pool::global`] pool.
///
/// Because `reduce_dst` is non-decreasing, the lookups split into
/// contiguous chunks at output-row boundaries: each task owns a disjoint
/// band of coalesced rows, making the parallelization race-free — the same
/// structure the NMP cores exploit per rank. Per output row the
/// accumulation order matches the serial kernel, so results are
/// bit-identical.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `grads.rows()` differs
/// from `casted.num_gradient_rows()`.
pub fn casted_gather_reduce_parallel(
    grads: &Matrix,
    casted: &CastedIndexArray,
    threads: usize,
) -> Result<CoalescedGradients, EmbeddingError> {
    casted_gather_reduce_parallel_in(tcast_pool::global(), grads, casted, threads)
}

/// [`casted_gather_reduce_parallel`] on an explicit pool.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `grads.rows()` differs
/// from `casted.num_gradient_rows()`.
pub fn casted_gather_reduce_parallel_in(
    pool: &Pool,
    grads: &Matrix,
    casted: &CastedIndexArray,
    threads: usize,
) -> Result<CoalescedGradients, EmbeddingError> {
    let mut scratch = CoalescedScratch::default();
    casted_gather_reduce_into(grads, casted, &mut scratch, Exec::Pooled { pool, threads })?;
    let CoalescedScratch { rows, grads, .. } = scratch;
    CoalescedGradients::new(rows, grads)
}

/// Reusable output + bookkeeping buffers for [`casted_gather_reduce_into`].
///
/// Holding one of these per table across training steps is what makes the
/// casted backward allocation-free in steady state: `rows`, `grads` and
/// the `row_start` offset table all retain their capacity between steps.
#[derive(Debug, Clone)]
pub struct CoalescedScratch {
    /// Touched (unique, ascending) table rows — matches
    /// [`CoalescedGradients::rows`].
    pub rows: Vec<u32>,
    /// One coalesced gradient row per entry of `rows`.
    pub grads: Matrix,
    /// Start offset (in lookup space) of every output row; scratch for
    /// the band partitioning.
    row_start: Vec<usize>,
}

impl Default for CoalescedScratch {
    fn default() -> Self {
        Self {
            rows: Vec::new(),
            grads: Matrix::zeros(0, 0),
            row_start: Vec::new(),
        }
    }
}

/// [`casted_gather_reduce`] writing into reusable buffers, serially or on
/// a pool ([`Exec`]). Bit-identical to the allocating serial kernel.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `grads.rows()` differs
/// from `casted.num_gradient_rows()`.
pub fn casted_gather_reduce_into(
    grads: &Matrix,
    casted: &CastedIndexArray,
    out: &mut CoalescedScratch,
    exec: Exec<'_>,
) -> Result<(), EmbeddingError> {
    if grads.rows() != casted.num_gradient_rows() {
        return Err(EmbeddingError::LengthMismatch {
            expected: casted.num_gradient_rows(),
            found: grads.rows(),
        });
    }
    let dim = grads.cols();
    let unique = casted.num_unique();
    out.rows.clear();
    out.rows.extend_from_slice(casted.unique_rows());
    out.grads.zero_into(unique, dim);
    if unique == 0 {
        return Ok(());
    }
    let reduce_dst = casted.reduce_dst();
    let gather_src = casted.gather_src();
    let threads = exec.threads().min(unique);

    let (pool, threads) = match exec.pool() {
        Some(pool) if threads > 1 => (pool, threads),
        _ => {
            // Serial: the exact Algorithm 3 loop.
            let kernel = tcast_tensor::simd::dispatch();
            for (i, (&src, &dst)) in gather_src.iter().zip(reduce_dst.iter()).enumerate() {
                if let Some(&next) = gather_src.get(i + 1) {
                    tcast_tensor::simd::prefetch(grads.row(next as usize));
                }
                let row = grads.row(src as usize);
                let acc = out.grads.row_mut(dst as usize);
                tcast_tensor::simd::add_assign(kernel, acc, row);
            }
            return Ok(());
        }
    };

    // Start offset (in lookup space) of every output row.
    let row_start = &mut out.row_start;
    row_start.clear();
    row_start.resize(unique + 1, 0);
    row_start[unique] = reduce_dst.len();
    let mut prev = 0usize;
    for (i, &d) in reduce_dst.iter().enumerate() {
        let d = d as usize;
        for slot in row_start.iter_mut().take(d + 1).skip(prev + 1) {
            *slot = i;
        }
        if d > prev {
            prev = d;
        }
    }

    let per = unique.div_ceil(threads);
    let buf = out.grads.as_mut_slice();
    let kernel = tcast_tensor::simd::dispatch();
    pool.scope(|scope| {
        let mut rest = buf;
        for t in 0..threads {
            let ulo = t * per;
            let uhi = ((t + 1) * per).min(unique);
            if ulo >= uhi {
                break;
            }
            let (band, tail) = rest.split_at_mut((uhi - ulo) * dim);
            rest = tail;
            let row_start = &*row_start;
            scope.spawn(move || {
                for u in ulo..uhi {
                    let acc = &mut band[(u - ulo) * dim..(u - ulo + 1) * dim];
                    let run = &gather_src[row_start[u]..row_start[u + 1]];
                    for (j, &src) in run.iter().enumerate() {
                        if let Some(&next) = run.get(j + 1) {
                            tcast_tensor::simd::prefetch(grads.row(next as usize));
                        }
                        let row = grads.row(src as usize);
                        tcast_tensor::simd::add_assign(kernel, acc, row);
                    }
                }
            });
        }
    });
    Ok(())
}

/// Convenience composition (Algorithm 3 top-level,
/// `T.CASTED_GRAD_GATHER_REDUCE`): run the casting stage then the fused
/// kernel.
///
/// In the real runtime the casting stage is precomputed during forward
/// propagation ([`crate::CastingPipeline`]); this synchronous form exists
/// for tests and for modeling the *exposed*-casting ablation.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `grads.rows()` differs
/// from `index.num_outputs()`.
pub fn casted_backward(
    grads: &Matrix,
    index: &IndexArray,
) -> Result<CoalescedGradients, EmbeddingError> {
    let casted = tensor_casting(index);
    casted_gather_reduce(grads, &casted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_embedding::gradient_expand_coalesce;
    use tcast_tensor::SplitMix64;

    fn fig_index() -> IndexArray {
        IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap()
    }

    #[test]
    fn fig7_example() {
        let grads = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0]]).unwrap();
        let c = casted_backward(&grads, &fig_index()).unwrap();
        assert_eq!(c.rows(), &[0, 1, 2, 4]);
        assert_eq!(c.grads().row(0), &[2.0, 20.0]); // G[1] -> E[0]
        assert_eq!(c.grads().row(1), &[1.0, 10.0]); // G[0] -> E[1]
        assert_eq!(c.grads().row(2), &[3.0, 30.0]); // G[0]+G[1] -> E[2]
        assert_eq!(c.grads().row(3), &[1.0, 10.0]); // G[0] -> E[4]
    }

    #[test]
    fn equals_baseline_exactly_on_example() {
        let grads = Matrix::from_rows(&[&[0.25, -1.5], &[3.5, 0.125]]).unwrap();
        let baseline = gradient_expand_coalesce(&grads, &fig_index()).unwrap();
        let casted = casted_backward(&grads, &fig_index()).unwrap();
        assert_eq!(baseline.rows(), casted.rows());
        // Bitwise identical: same accumulation order.
        assert_eq!(baseline.grads().as_slice(), casted.grads().as_slice());
    }

    #[test]
    fn equals_baseline_on_random_workloads() {
        let mut rng = SplitMix64::new(99);
        for trial in 0..20 {
            let batch = 1 + (rng.next_below(64) as usize);
            let pooling = 1 + (rng.next_below(8) as usize);
            let table_rows = 1 + rng.next_below(100);
            let dim = 1 + (rng.next_below(16) as usize);
            let samples: Vec<Vec<u32>> = (0..batch)
                .map(|_| {
                    (0..pooling)
                        .map(|_| rng.next_below(table_rows) as u32)
                        .collect()
                })
                .collect();
            let index = IndexArray::from_samples(&samples).unwrap();
            let mut grads = Matrix::zeros(batch, dim);
            for v in grads.as_mut_slice() {
                *v = rng.next_range(-2.0, 2.0);
            }
            let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
            let casted = casted_backward(&grads, &index).unwrap();
            assert_eq!(baseline.rows(), casted.rows(), "trial {trial}");
            assert_eq!(
                baseline.grads().as_slice(),
                casted.grads().as_slice(),
                "trial {trial}: gradients differ"
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = SplitMix64::new(7);
        let samples: Vec<Vec<u32>> = (0..128)
            .map(|_| (0..6).map(|_| rng.next_below(50) as u32).collect())
            .collect();
        let index = IndexArray::from_samples(&samples).unwrap();
        let mut grads = Matrix::zeros(128, 8);
        for v in grads.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }
        let casted = tensor_casting(&index);
        let serial = casted_gather_reduce(&grads, &casted).unwrap();
        for threads in [1, 2, 5, 16] {
            let par = casted_gather_reduce_parallel(&grads, &casted, threads).unwrap();
            assert_eq!(serial.rows(), par.rows());
            assert!(
                serial.max_abs_diff(&par).unwrap() < 1e-5,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn rejects_wrong_gradient_rows() {
        let casted = tensor_casting(&fig_index());
        let wrong = Matrix::zeros(3, 2);
        assert!(casted_gather_reduce(&wrong, &casted).is_err());
        assert!(casted_gather_reduce_parallel(&wrong, &casted, 2).is_err());
    }

    #[test]
    fn empty_workload() {
        let index = IndexArray::from_pairs(vec![], vec![], 0).unwrap();
        let casted = tensor_casting(&index);
        let grads = Matrix::zeros(0, 4);
        let c = casted_gather_reduce(&grads, &casted).unwrap();
        assert!(c.is_empty());
        let cp = casted_gather_reduce_parallel(&grads, &casted, 4).unwrap();
        assert!(cp.is_empty());
    }
}

//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] names *sites* (string labels compiled into the code
//! under test) and arms specific *occurrences* of each site: the Nth
//! time execution reaches the site, the fault fires. Because arming is
//! by occurrence index — not by timer or randomness at fire time — a
//! plan reproduces the identical failure on every run, which is what
//! lets the stress suite assert "this exact crash surfaces as this
//! exact error" instead of hoping a race shows up.
//!
//! The plan is cheaply cloneable (`Arc` inside) so one handle can be
//! held by the test while clones ride into worker threads —
//! [`CastingPipeline::set_fault_plan`](crate::CastingPipeline::set_fault_plan)
//! consults it per casting job, and [`FaultyWrite`] wires it into any
//! `io::Write`-based checkpoint path.
//!
//! ```
//! use tcast_core::FaultPlan;
//!
//! let plan = FaultPlan::new();
//! plan.arm("demo", 2); // the third hit fails
//! assert!(!plan.should_fail("demo"));
//! assert!(!plan.should_fail("demo"));
//! assert!(plan.should_fail("demo"));
//! assert_eq!(plan.fired(), vec![("demo".to_string(), 2)]);
//! ```

use std::collections::{BTreeSet, HashMap};
use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug, Default)]
struct PlanInner {
    /// Site -> set of occurrence indices (0-based) that must fault.
    armed: HashMap<String, BTreeSet<u64>>,
    /// Site -> times execution reached it.
    hits: HashMap<String, u64>,
    /// Faults that actually fired, in firing order.
    fired: Vec<(String, u64)>,
}

/// A seeded, reproducible plan of where and when faults fire.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<PlanInner>>,
}

impl FaultPlan {
    /// An empty plan: every site passes until armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the plan, recovering from poisoning — a fault plan's whole
    /// job is to outlive panicking threads.
    fn lock(&self) -> MutexGuard<'_, PlanInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms occurrence `occurrence` (0-based) of `site`: that hit of
    /// [`FaultPlan::should_fail`] returns `true`.
    pub fn arm(&self, site: &str, occurrence: u64) {
        self.lock()
            .armed
            .entry(site.to_string())
            .or_default()
            .insert(occurrence);
    }

    /// Records one hit of `site` and reports whether this occurrence is
    /// armed. Call exactly once per injection point passed.
    pub fn should_fail(&self, site: &str) -> bool {
        let mut inner = self.lock();
        let hit = *inner
            .hits
            .entry(site.to_string())
            .and_modify(|h| *h += 1)
            .or_insert(0);
        let fail = inner
            .armed
            .get(site)
            .is_some_and(|occs| occs.contains(&hit));
        if fail {
            inner.fired.push((site.to_string(), hit));
        }
        fail
    }

    /// Times `site` has been reached so far.
    pub fn hits(&self, site: &str) -> u64 {
        self.lock().hits.get(site).map_or(0, |&h| h + 1)
    }

    /// Every fault that fired, in order.
    pub fn fired(&self) -> Vec<(String, u64)> {
        self.lock().fired.clone()
    }
}

/// An `io::Write` adapter that consults a [`FaultPlan`] before every
/// `write`/`flush`: an armed occurrence surfaces as
/// `io::ErrorKind::Other` instead of touching the inner writer — the
/// injection point for checkpoint I/O errors.
#[derive(Debug)]
pub struct FaultyWrite<W> {
    inner: W,
    plan: FaultPlan,
    site: String,
}

impl<W: Write> FaultyWrite<W> {
    /// Wraps `inner`; every write/flush hits `site` on `plan` once.
    pub fn new(inner: W, plan: FaultPlan, site: impl Into<String>) -> Self {
        Self {
            inner,
            plan,
            site: site.into(),
        }
    }

    /// Unwraps to the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.plan.should_fail(&self.site) {
            return Err(io::Error::other(format!(
                "injected I/O fault at {}",
                self.site
            )));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.plan.should_fail(&self.site) {
            return Err(io::Error::other(format!(
                "injected I/O fault at {}",
                self.site
            )));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire() {
        let plan = FaultPlan::new();
        for _ in 0..100 {
            assert!(!plan.should_fail("quiet"));
        }
        assert!(plan.fired().is_empty());
        assert_eq!(plan.hits("quiet"), 100);
        assert_eq!(plan.hits("never-reached"), 0);
    }

    #[test]
    fn armed_occurrences_fire_exactly_once_each() {
        let plan = FaultPlan::new();
        plan.arm("s", 0);
        plan.arm("s", 3);
        let fails: Vec<bool> = (0..5).map(|_| plan.should_fail("s")).collect();
        assert_eq!(fails, vec![true, false, false, true, false]);
        assert_eq!(
            plan.fired(),
            vec![("s".to_string(), 0), ("s".to_string(), 3)]
        );
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::new();
        plan.arm("b", 1);
        assert!(!plan.should_fail("a"));
        assert!(!plan.should_fail("b"));
        assert!(!plan.should_fail("a"));
        assert!(plan.should_fail("b"));
    }

    #[test]
    fn clones_share_the_counters() {
        let plan = FaultPlan::new();
        let clone = plan.clone();
        plan.arm("s", 1);
        assert!(!clone.should_fail("s"));
        assert!(plan.should_fail("s"), "clone's hit must count");
    }

    #[test]
    fn faulty_write_surfaces_io_errors_deterministically() {
        let plan = FaultPlan::new();
        plan.arm("w", 1);
        let mut w = FaultyWrite::new(Vec::new(), plan, "w");
        assert_eq!(w.write(b"ok").unwrap(), 2);
        let err = w.write(b"boom").unwrap_err();
        assert!(err.to_string().contains("injected I/O fault at w"));
        assert_eq!(w.write(b"on").unwrap(), 2);
        assert_eq!(w.into_inner(), b"okon");
    }
}

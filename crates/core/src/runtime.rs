//! The software runtime of Section IV-B: hide the casting stage inside
//! forward propagation.
//!
//! "An important observation from Algorithm 2 is that all the data
//! structures required to generate the T.Casted index array is already
//! available at the very beginning of forward propagation." The paper
//! therefore ships the index arrays to the (otherwise idle) GPU, casts
//! them there while the CPU runs embedding gather-reduce, and has the
//! casted arrays ready by the time backpropagation needs them (Fig. 9b).
//!
//! [`CastingPipeline`] is the host-side embodiment: a dedicated worker
//! thread plays the role of the GPU's casting kernel. Training code
//! submits the iteration's index arrays *before* starting forward
//! propagation and collects the casted arrays when backward reaches the
//! embedding layers; the pipeline records how much of the casting latency
//! was actually exposed (i.e. how long the collect blocked).

use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::casted_index::CastedIndexArray;
use crate::casting::tensor_casting;
use crate::fault::FaultPlan;
use tcast_embedding::{IndexArray, RouteScratch, ShardMap};

/// Default bound on uncompleted casting jobs (submitted but not yet cast).
/// Generous enough that any sane lookahead depth never blocks, small
/// enough that a runaway submitter cannot grow the job queue without
/// bound before the worker catches up.
pub const DEFAULT_INFLIGHT_CAP: usize = 64;

/// A handle for one submitted casting job (one training iteration's worth
/// of index arrays, one per embedding table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobTicket(u64);

/// Aggregate pipeline timing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Jobs completed by the worker.
    pub jobs_completed: u64,
    /// Total time the worker spent casting (would-be GPU kernel time).
    pub casting_time: Duration,
    /// Total time callers spent blocked in [`CastingPipeline::collect`] —
    /// the *exposed* casting latency. Zero means casting was fully hidden
    /// under forward propagation, the Fig. 9b ideal.
    pub exposed_wait: Duration,
    /// High-water mark of uncompleted jobs (submitted, not yet cast).
    /// Never exceeds the pipeline's in-flight cap: `submit` blocks
    /// (backpressure) instead of letting the job queue grow.
    pub max_in_flight: u64,
    /// Total time submitters spent blocked on the in-flight cap.
    pub backpressure_wait: Duration,
}

impl PipelineStats {
    /// Fraction of casting time that was hidden under other work
    /// (1.0 = fully hidden). Returns 1.0 when no casting has run.
    pub fn hidden_fraction(&self) -> f64 {
        if self.casting_time.is_zero() {
            return 1.0;
        }
        let exposed = self.exposed_wait.as_secs_f64();
        let total = self.casting_time.as_secs_f64();
        (1.0 - (exposed / total).min(1.0)).max(0.0)
    }
}

struct Job {
    id: u64,
    indices: Arc<[IndexArray]>,
    /// Per-table shard maps for a sharded job: the worker routes each
    /// table's indices per shard *before* casting, so the job yields one
    /// casted array per `(table, shard)` pair, shard-major within table.
    plan: Option<Arc<[ShardMap]>>,
}

struct JobResult {
    id: u64,
    casted: Vec<CastedIndexArray>,
}

/// The uncompleted-job gauge plus the worker-death flag, shared between
/// submitters (who block on the cap) and workers (who drain it).
struct Gauge {
    count: usize,
    /// A worker thread panicked. Every blocked or future submit/collect
    /// must panic instead of waiting for progress that can never come.
    dead: bool,
}

type SharedGauge = Arc<(Mutex<Gauge>, Condvar)>;

/// Locks the gauge, recovering from poisoning: a panicking worker must
/// still be able to publish its death, and survivors must still read it.
fn lock_gauge(gauge: &SharedGauge) -> MutexGuard<'_, Gauge> {
    gauge.0.lock().unwrap_or_else(|e| e.into_inner())
}

/// Publishes worker death on *every* panic exit path — including a panic
/// in the casting kernel itself — so a submitter blocked on the in-flight
/// cap (whose slot the dead worker will never drain) wakes and fails
/// cleanly instead of hanging.
struct WorkerExitGuard(SharedGauge);

impl Drop for WorkerExitGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut g = lock_gauge(&self.0);
            g.dead = true;
            self.0 .1.notify_all();
        }
    }
}

/// Asynchronous casting pipeline: submit index arrays early, collect
/// casted arrays when backward needs them.
///
/// ```
/// use tcast_core::CastingPipeline;
/// use tcast_embedding::IndexArray;
///
/// let mut pipeline = CastingPipeline::new();
/// let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
/// let ticket = pipeline.submit(vec![index]);
/// // ... forward propagation runs here, overlapped with casting ...
/// let casted = pipeline.collect(ticket);
/// assert_eq!(casted[0].gather_src(), &[1, 0, 0, 1, 0]);
/// ```
pub struct CastingPipeline {
    tx: Option<Sender<Job>>,
    rx: Receiver<JobResult>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Uncompleted-job gauge shared with the workers; `submit` blocks on
    /// the condvar while the gauge sits at `inflight_cap`.
    in_flight: SharedGauge,
    inflight_cap: usize,
    /// Optional fault-injection hook the workers consult once per job.
    fault: Arc<Mutex<Option<(FaultPlan, String)>>>,
    ready: HashMap<u64, Vec<CastedIndexArray>>,
    /// Lowest ticket id not yet collected: everything below it is
    /// collected. In-order collection (the trainer's pattern) only moves
    /// this watermark, so the already-collected guard costs O(1) memory
    /// over an arbitrarily long training run.
    collect_watermark: u64,
    /// Collected ids at or above the watermark (out-of-order collects
    /// only); drained as the watermark advances past them.
    collected_ahead: HashSet<u64>,
    next_id: u64,
    stats: Arc<Mutex<PipelineStats>>,
}

impl CastingPipeline {
    /// Spawns the casting worker thread with the
    /// [`DEFAULT_INFLIGHT_CAP`].
    pub fn new() -> Self {
        Self::with_workers(1)
    }

    /// Spawns `workers` casting worker threads sharing one job queue —
    /// the host-side analogue of widening the GPU casting kernel. Jobs
    /// complete out of order under load; [`CastingPipeline::collect`]
    /// reorders transparently.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(workers: usize) -> Self {
        Self::with_inflight_cap(workers, DEFAULT_INFLIGHT_CAP)
    }

    /// [`CastingPipeline::with_workers`] with an explicit bound on
    /// *uncompleted* jobs (submitted but not yet cast). When the bound is
    /// reached, [`CastingPipeline::submit`] blocks until a worker drains a
    /// job — backpressure instead of unbounded job-queue growth. Worker
    /// progress alone releases the block (no collect required), so a
    /// submit-only caller cannot deadlock itself.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `cap == 0`.
    pub fn with_inflight_cap(workers: usize, cap: usize) -> Self {
        assert!(workers > 0, "need at least one casting worker");
        assert!(cap > 0, "need a nonzero in-flight cap");
        // std::sync::mpsc receivers are single-consumer; the worker side
        // shares one behind a mutex (each worker holds the lock only while
        // blocked in recv, releasing it as soon as a job arrives).
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (res_tx, res_rx) = channel::<JobResult>();
        let stats = Arc::new(Mutex::new(PipelineStats::default()));
        let in_flight: SharedGauge = Arc::new((
            Mutex::new(Gauge {
                count: 0,
                dead: false,
            }),
            Condvar::new(),
        ));
        let fault: Arc<Mutex<Option<(FaultPlan, String)>>> = Arc::new(Mutex::new(None));
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            let worker_stats = Arc::clone(&stats);
            let worker_gauge = Arc::clone(&in_flight);
            let worker_fault = Arc::clone(&fault);
            let handle = std::thread::Builder::new()
                .name(format!("tcast-casting-{w}"))
                .spawn(move || {
                    let _guard = WorkerExitGuard(Arc::clone(&worker_gauge));
                    // Routing scratch for sharded jobs, reused across the
                    // worker's whole life: steady-state sharded casting
                    // allocates nothing for routing.
                    let mut route_scratch = RouteScratch::new();
                    loop {
                        let job = {
                            let rx = job_rx
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                            rx.recv()
                        };
                        let Ok(job) = job else {
                            break; // pipeline dropped the sender
                        };
                        if let Some((plan, site)) = worker_fault
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .clone()
                        {
                            assert!(
                                !plan.should_fail(&site),
                                "injected casting-worker fault at {site}"
                            );
                        }
                        let start = Instant::now();
                        let casted: Vec<CastedIndexArray> = match &job.plan {
                            None => job.indices.iter().map(tensor_casting).collect(),
                            Some(plan) => {
                                let mut out = Vec::new();
                                for (index, map) in job.indices.iter().zip(plan.iter()) {
                                    map.route_into(index, &mut route_scratch)
                                        .expect("sharded casting job carries validated indices");
                                    out.extend(route_scratch.routed().iter().map(tensor_casting));
                                }
                                out
                            }
                        };
                        let elapsed = start.elapsed();
                        {
                            let mut s = worker_stats.lock().expect("pipeline stats poisoned");
                            s.jobs_completed += 1;
                            s.casting_time += elapsed;
                        }
                        // Drain the in-flight gauge *before* publishing the
                        // result: a submitter blocked on the cap wakes as soon
                        // as the casting work is done.
                        {
                            let mut g = lock_gauge(&worker_gauge);
                            g.count -= 1;
                            worker_gauge.1.notify_one();
                        }
                        if res_tx.send(JobResult { id: job.id, casted }).is_err() {
                            break; // pipeline dropped
                        }
                    }
                })
                .expect("spawn casting worker");
            handles.push(handle);
        }
        Self {
            tx: Some(job_tx),
            rx: res_rx,
            workers: handles,
            in_flight,
            inflight_cap: cap,
            fault,
            ready: HashMap::new(),
            collect_watermark: 0,
            collected_ahead: HashSet::new(),
            next_id: 0,
            stats,
        }
    }

    /// Arms deterministic fault injection: every subsequent job hits
    /// `site` on `plan` once before casting, and an armed occurrence
    /// panics the worker — the stress suite's handle for proving that a
    /// mid-pipeline crash surfaces as a clean panic on the training
    /// thread (never a hang), see `tests/fault_injection.rs`.
    pub fn set_fault_plan(&self, plan: FaultPlan, site: impl Into<String>) {
        *self
            .fault
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some((plan, site.into()));
    }

    /// Submits one iteration's index arrays (one per table) for casting.
    /// Returns a ticket to [`CastingPipeline::collect`] with.
    ///
    /// Call this *before* forward propagation so the casting latency
    /// overlaps with it.
    ///
    /// The arrays travel to the worker as an `Arc<[IndexArray]>` share:
    /// a caller that already holds its batch indices behind an `Arc`
    /// (as `CtrBatch` does) pays one refcount bump per step instead of
    /// deep-cloning every table's index arrays — the last steady-state
    /// allocation the casted hot path used to make.
    ///
    /// If the number of uncompleted jobs has reached the in-flight cap,
    /// this call **blocks** until a worker drains one (backpressure); the
    /// time spent blocked is recorded in
    /// [`PipelineStats::backpressure_wait`].
    pub fn submit(&mut self, indices: impl Into<Arc<[IndexArray]>>) -> JobTicket {
        self.submit_job(indices.into(), None)
    }

    /// [`CastingPipeline::submit`] for a **sharded** model: `plan[t]` is
    /// table `t`'s row-range shard map. The worker routes each table's
    /// indices per shard (reusing a per-worker scratch — no steady-state
    /// allocation) and casts every routed array, so the collected job
    /// holds one [`CastedIndexArray`] per `(table, shard)` pair,
    /// shard-major within table, in the order
    /// `plan[0]`'s shards, then `plan[1]`'s, …
    ///
    /// Routing preserves the original relative pair order within each
    /// shard and every table row belongs to exactly one shard, so each
    /// per-shard cast equals the global stable cast restricted to that
    /// shard — the casted sharded backward is bit-identical to the
    /// unsharded one.
    ///
    /// The indices must be in bounds for their shard maps (the trainer
    /// validates its batches upstream); a routing failure panics the
    /// worker, which surfaces as a clean "worker died" panic at the next
    /// submit/collect.
    ///
    /// # Panics
    ///
    /// Panics if `plan.len()` differs from the number of index arrays.
    pub fn submit_sharded(
        &mut self,
        indices: impl Into<Arc<[IndexArray]>>,
        plan: Arc<[ShardMap]>,
    ) -> JobTicket {
        let indices = indices.into();
        assert_eq!(
            plan.len(),
            indices.len(),
            "one shard map per index array required"
        );
        self.submit_job(indices, Some(plan))
    }

    fn submit_job(
        &mut self,
        indices: Arc<[IndexArray]>,
        plan: Option<Arc<[ShardMap]>>,
    ) -> JobTicket {
        {
            let mut g = lock_gauge(&self.in_flight);
            assert!(!g.dead, "casting worker died; pipeline is unusable");
            if g.count >= self.inflight_cap {
                let start = Instant::now();
                while g.count >= self.inflight_cap {
                    g = self
                        .in_flight
                        .1
                        .wait(g)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    // A dead worker never drains its slot: fail the
                    // blocked submitter instead of waiting forever.
                    assert!(!g.dead, "casting worker died; pipeline is unusable");
                }
                self.stats
                    .lock()
                    .expect("pipeline stats poisoned")
                    .backpressure_wait += start.elapsed();
            }
            g.count += 1;
            let count = g.count;
            drop(g);
            let mut s = self.stats.lock().expect("pipeline stats poisoned");
            s.max_in_flight = s.max_in_flight.max(count as u64);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.tx
            .as_ref()
            .expect("pipeline not shut down")
            .send(Job { id, indices, plan })
            .expect("casting worker alive");
        JobTicket(id)
    }

    /// Number of submitted jobs not yet cast by a worker.
    pub fn in_flight(&self) -> usize {
        lock_gauge(&self.in_flight).count
    }

    /// Whether a worker thread has died (panicked); a dead pipeline fails
    /// every subsequent `submit`/`collect` with a panic instead of
    /// hanging.
    pub fn worker_died(&self) -> bool {
        lock_gauge(&self.in_flight).dead
    }

    /// The bound on uncompleted jobs that [`CastingPipeline::submit`]
    /// enforces by blocking.
    pub fn inflight_cap(&self) -> usize {
        self.inflight_cap
    }

    /// Blocks until the given job's casted arrays are ready and returns
    /// them. Time spent blocking is recorded as *exposed* casting latency
    /// in [`PipelineStats`].
    ///
    /// # Panics
    ///
    /// Panics if the ticket was never issued by this pipeline, was already
    /// collected, or the worker thread died.
    pub fn collect(&mut self, ticket: JobTicket) -> Vec<CastedIndexArray> {
        self.collect_timed(ticket).0
    }

    /// [`CastingPipeline::collect`] with per-ticket exposed-wait
    /// attribution: returns the casted arrays *and* how long this call
    /// blocked waiting for them. A zero duration means this job's casting
    /// latency was fully hidden — the per-step version of
    /// [`PipelineStats::hidden_fraction`]'s Fig. 9b ideal, which the
    /// cross-batch training driver reports per lookahead depth.
    ///
    /// # Panics
    ///
    /// Panics if the ticket was never issued by this pipeline, was already
    /// collected, or the worker thread died.
    pub fn collect_timed(&mut self, ticket: JobTicket) -> (Vec<CastedIndexArray>, Duration) {
        assert!(ticket.0 < self.next_id, "unknown ticket {ticket:?}");
        // A collected id is gone from `ready`, so without this guard the
        // recv loop below would block forever on a result that can never
        // arrive — the panic the doc promises instead.
        assert!(
            ticket.0 >= self.collect_watermark && !self.collected_ahead.contains(&ticket.0),
            "ticket {ticket:?} already collected"
        );
        if ticket.0 == self.collect_watermark {
            self.collect_watermark += 1;
            while self.collected_ahead.remove(&self.collect_watermark) {
                self.collect_watermark += 1;
            }
        } else {
            self.collected_ahead.insert(ticket.0);
        }
        // Drain results that already arrived before starting the clock:
        // a job whose casting finished during earlier work must report
        // exactly zero exposed wait, not the channel-recv overhead.
        while let Ok(result) = self.rx.try_recv() {
            self.ready.insert(result.id, result.casted);
        }
        if let Some(casted) = self.ready.remove(&ticket.0) {
            return (casted, Duration::ZERO);
        }
        let start = Instant::now();
        loop {
            // A worker that panicked mid-job can never deliver this
            // result; surviving workers keep the channel open, so a plain
            // recv would hang. Poll the death flag between bounded waits
            // — a message still wakes the recv immediately.
            assert!(
                !self.worker_died(),
                "casting worker died; job {} can never complete",
                ticket.0
            );
            let result = match self.rx.recv_timeout(Duration::from_millis(20)) {
                Ok(result) => result,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("casting worker died; job {} can never complete", ticket.0)
                }
            };
            if result.id == ticket.0 {
                let exposed = start.elapsed();
                self.stats
                    .lock()
                    .expect("pipeline stats poisoned")
                    .exposed_wait += exposed;
                return (result.casted, exposed);
            }
            self.ready.insert(result.id, result.casted);
        }
    }

    /// Returns whether the given job has already finished (non-blocking).
    pub fn is_ready(&mut self, ticket: JobTicket) -> bool {
        while let Ok(result) = self.rx.try_recv() {
            self.ready.insert(result.id, result.casted);
        }
        self.ready.contains_key(&ticket.0)
    }

    /// Snapshot of the pipeline's timing statistics.
    pub fn stats(&self) -> PipelineStats {
        *self.stats.lock().expect("pipeline stats poisoned")
    }
}

impl Default for CastingPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CastingPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CastingPipeline")
            .field("next_id", &self.next_id)
            .field("buffered", &self.ready.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for CastingPipeline {
    fn drop(&mut self) {
        // Close the job channel so the workers exit, then join them.
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather_reduce::casted_gather_reduce;
    use tcast_embedding::gradient_expand_coalesce;
    use tcast_tensor::{Matrix, SplitMix64};

    fn random_indices(count: usize, seed: u64) -> Vec<IndexArray> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                let samples: Vec<Vec<u32>> = (0..16)
                    .map(|_| (0..4).map(|_| rng.next_below(40) as u32).collect())
                    .collect();
                IndexArray::from_samples(&samples).unwrap()
            })
            .collect()
    }

    #[test]
    fn submit_collect_roundtrip() {
        let mut p = CastingPipeline::new();
        let indices = random_indices(3, 1);
        let expected: Vec<_> = indices.iter().map(tensor_casting).collect();
        let ticket = p.submit(indices);
        let casted = p.collect(ticket);
        assert_eq!(casted, expected);
        assert_eq!(p.stats().jobs_completed, 1);
    }

    #[test]
    fn multiple_in_flight_jobs_collect_in_any_order() {
        let mut p = CastingPipeline::new();
        let a = random_indices(2, 2);
        let b = random_indices(2, 3);
        let ea: Vec<_> = a.iter().map(tensor_casting).collect();
        let eb: Vec<_> = b.iter().map(tensor_casting).collect();
        let ta = p.submit(a);
        let tb = p.submit(b);
        // Collect out of submission order.
        assert_eq!(p.collect(tb), eb);
        assert_eq!(p.collect(ta), ea);
        assert_eq!(p.stats().jobs_completed, 2);
    }

    #[test]
    fn pipelined_training_loop_matches_baseline() {
        // Double-buffered usage: iteration i trains while i+1 casts.
        let mut p = CastingPipeline::new();
        let mut rng = SplitMix64::new(9);
        let iters: Vec<Vec<IndexArray>> = (0..5).map(|i| random_indices(2, 100 + i)).collect();

        let mut tickets = std::collections::VecDeque::new();
        tickets.push_back(p.submit(iters[0].clone()));
        for i in 0..iters.len() {
            if i + 1 < iters.len() {
                tickets.push_back(p.submit(iters[i + 1].clone()));
            }
            let casted = p.collect(tickets.pop_front().unwrap());
            for (index, c) in iters[i].iter().zip(casted.iter()) {
                let mut grads = Matrix::zeros(index.num_outputs(), 4);
                for v in grads.as_mut_slice() {
                    *v = rng.next_range(-1.0, 1.0);
                }
                let via_pipeline = casted_gather_reduce(&grads, c).unwrap();
                let baseline = gradient_expand_coalesce(&grads, index).unwrap();
                assert_eq!(baseline.grads().as_slice(), via_pipeline.grads().as_slice());
            }
        }
        assert_eq!(p.stats().jobs_completed, 5);
    }

    #[test]
    fn is_ready_becomes_true() {
        let mut p = CastingPipeline::new();
        let ticket = p.submit(random_indices(1, 4));
        // Poll until ready (worker is fast; bound the wait).
        let deadline = Instant::now() + Duration::from_secs(5);
        while !p.is_ready(ticket) {
            assert!(Instant::now() < deadline, "worker never finished");
            std::thread::yield_now();
        }
        let casted = p.collect(ticket);
        assert_eq!(casted.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown ticket")]
    fn collect_unknown_ticket_panics() {
        let mut p = CastingPipeline::new();
        p.collect(JobTicket(42));
    }

    #[test]
    #[should_panic(expected = "already collected")]
    fn collect_twice_panics_instead_of_hanging() {
        // Regression: the id is gone from `ready` after the first
        // collect, so a second collect used to block in recv() forever.
        let mut p = CastingPipeline::new();
        let ticket = p.submit(random_indices(1, 6));
        let _ = p.collect(ticket);
        let _ = p.collect(ticket);
    }

    #[test]
    #[should_panic(expected = "already collected")]
    fn double_collect_detected_after_out_of_order_collection() {
        // The watermark only covers in-order collects; ids collected
        // ahead of it must be remembered until the watermark passes them.
        let mut p = CastingPipeline::new();
        let _ta = p.submit(random_indices(1, 8));
        let tb = p.submit(random_indices(1, 9));
        let _ = p.collect(tb); // out of order: watermark stays behind
        let _ = p.collect(tb);
    }

    #[test]
    fn in_order_collection_keeps_the_guard_set_empty() {
        // The trainer collects strictly in submission order; the
        // already-collected guard must then be a watermark bump, not a
        // per-step set insertion (unbounded growth over a training run).
        let mut p = CastingPipeline::new();
        for i in 0..20 {
            let t = p.submit(random_indices(1, 100 + i));
            let _ = p.collect(t);
        }
        assert_eq!(p.collect_watermark, 20);
        assert!(p.collected_ahead.is_empty());
        // Out-of-order collects pass through the set, then drain as the
        // watermark catches up.
        let ta = p.submit(random_indices(1, 200));
        let tb = p.submit(random_indices(1, 201));
        let _ = p.collect(tb);
        assert_eq!(p.collected_ahead.len(), 1);
        let _ = p.collect(ta);
        assert_eq!(p.collect_watermark, 22);
        assert!(p.collected_ahead.is_empty());
    }

    #[test]
    fn arc_submissions_share_without_cloning() {
        // The trainer's steady-state path: one Arc<[IndexArray]> per
        // batch, re-submitted by refcount bump. Results must match the
        // synchronous casting of the same arrays.
        let mut p = CastingPipeline::new();
        let indices: Arc<[IndexArray]> = random_indices(3, 7).into();
        let expected: Vec<_> = indices.iter().map(tensor_casting).collect();
        for _ in 0..3 {
            let ticket = p.submit(Arc::clone(&indices));
            assert_eq!(p.collect(ticket), expected);
        }
        drop(p); // joins the worker, releasing its shares
        assert_eq!(Arc::strong_count(&indices), 1);
    }

    #[test]
    fn sharded_jobs_carry_per_shard_casts() {
        // A sharded job must return exactly the cast of each routed
        // per-shard array, shard-major within table — the shapes the
        // sharded trainer consumes.
        let mut p = CastingPipeline::new();
        let indices = random_indices(2, 21);
        let plan: Arc<[ShardMap]> = vec![ShardMap::new(40, 3), ShardMap::new(40, 2)].into();
        let expected: Vec<CastedIndexArray> = indices
            .iter()
            .zip(plan.iter())
            .flat_map(|(index, map)| {
                map.route(index)
                    .unwrap()
                    .iter()
                    .map(tensor_casting)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(expected.len(), 5, "3 + 2 shard casts");
        let t = p.submit_sharded(indices, Arc::clone(&plan));
        assert_eq!(p.collect(t), expected);
        // Sharded and plain jobs interleave on the same pipeline.
        let plain = random_indices(1, 22);
        let expected_plain: Vec<_> = plain.iter().map(tensor_casting).collect();
        let t_plain = p.submit(plain);
        let t_sharded = p.submit_sharded(random_indices(2, 23), plan);
        assert_eq!(p.collect(t_plain), expected_plain);
        assert_eq!(p.collect(t_sharded).len(), 5);
    }

    #[test]
    #[should_panic(expected = "one shard map per index array")]
    fn sharded_submit_rejects_mismatched_plan() {
        let mut p = CastingPipeline::new();
        let plan: Arc<[ShardMap]> = vec![ShardMap::new(40, 2)].into();
        let _ = p.submit_sharded(random_indices(2, 24), plan);
    }

    #[test]
    fn hidden_fraction_bounds() {
        let s = PipelineStats::default();
        assert_eq!(s.hidden_fraction(), 1.0);
        let s = PipelineStats {
            jobs_completed: 1,
            casting_time: Duration::from_millis(10),
            exposed_wait: Duration::from_millis(10),
            ..Default::default()
        };
        assert!(s.hidden_fraction() < 1e-9);
        let s = PipelineStats {
            jobs_completed: 1,
            casting_time: Duration::from_millis(10),
            exposed_wait: Duration::from_millis(5),
            ..Default::default()
        };
        assert!((s.hidden_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn collect_timed_attributes_exposed_wait_per_ticket() {
        let mut p = CastingPipeline::new();
        // Collect immediately: whatever this ticket's wait was, it must
        // equal the aggregate (only job so far).
        let t = p.submit(random_indices(2, 11));
        let (casted, exposed) = p.collect_timed(t);
        assert_eq!(casted.len(), 2);
        assert_eq!(p.stats().exposed_wait, exposed);
        // A job that is already finished when collected reports zero
        // exposed wait and adds nothing to the aggregate.
        let t = p.submit(random_indices(1, 12));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !p.is_ready(t) {
            assert!(Instant::now() < deadline, "worker never finished");
            std::thread::yield_now();
        }
        let before = p.stats().exposed_wait;
        let (_, exposed) = p.collect_timed(t);
        assert_eq!(exposed, Duration::ZERO);
        assert_eq!(p.stats().exposed_wait, before);
    }

    #[test]
    fn inflight_cap_blocks_submit_until_the_worker_drains() {
        // With cap 1, the second submit cannot return before the first
        // job has been *cast* (not collected!) — deterministic evidence
        // that the cap back-pressures the submitter instead of queueing.
        let mut p = CastingPipeline::with_inflight_cap(1, 1);
        assert_eq!(p.inflight_cap(), 1);
        let ta = p.submit(random_indices(2, 13));
        let tb = p.submit(random_indices(2, 14));
        assert!(p.stats().jobs_completed >= 1, "submit overtook the cap");
        let _ = p.collect(ta);
        let _ = p.collect(tb);
        assert_eq!(p.stats().jobs_completed, 2);
        assert_eq!(p.stats().max_in_flight, 1);
    }

    #[test]
    fn max_in_flight_never_exceeds_the_cap() {
        let mut p = CastingPipeline::with_inflight_cap(1, 3);
        let tickets: Vec<_> = (0..12)
            .map(|i| p.submit(random_indices(1, 300 + i)))
            .collect();
        for t in tickets {
            let _ = p.collect(t);
        }
        let stats = p.stats();
        assert_eq!(stats.jobs_completed, 12);
        assert!(
            stats.max_in_flight <= 3,
            "cap violated: {} in flight",
            stats.max_in_flight
        );
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero in-flight cap")]
    fn zero_inflight_cap_rejected() {
        CastingPipeline::with_inflight_cap(1, 0);
    }

    #[test]
    fn multi_worker_pipeline_is_correct_under_load() {
        let mut p = CastingPipeline::with_workers(4);
        let jobs: Vec<(Vec<IndexArray>, _)> = (0..12)
            .map(|i| {
                let indices = random_indices(2, 200 + i);
                let ticket = p.submit(indices.clone());
                (indices, ticket)
            })
            .collect();
        for (indices, ticket) in jobs {
            let expected: Vec<_> = indices.iter().map(tensor_casting).collect();
            assert_eq!(p.collect(ticket), expected);
        }
        assert_eq!(p.stats().jobs_completed, 12);
    }

    #[test]
    #[should_panic(expected = "at least one casting worker")]
    fn zero_workers_rejected() {
        CastingPipeline::with_workers(0);
    }

    #[test]
    fn drop_joins_worker_cleanly() {
        let mut p = CastingPipeline::new();
        let _ = p.submit(random_indices(1, 5));
        drop(p); // must not hang or panic even with an uncollected job
    }

    #[test]
    fn worker_panic_fails_collect_instead_of_hanging() {
        let mut p = CastingPipeline::new();
        let plan = FaultPlan::new();
        plan.arm("cast", 0);
        p.set_fault_plan(plan.clone(), "cast");
        let t = p.submit(random_indices(1, 52));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.collect(t)));
        let err = res.expect_err("collect must panic, not hang");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("casting worker died"), "message: {msg}");
        assert!(p.worker_died());
        assert_eq!(plan.fired(), vec![("cast".to_string(), 0)]);
    }

    #[test]
    fn worker_panic_fails_blocked_submitters_instead_of_hanging() {
        // Regression: a worker that panicked mid-job never drains its
        // in-flight slot, so with cap 1 the next submit used to block on
        // the gauge condvar forever. The exit guard must wake and fail
        // it.
        let mut p = CastingPipeline::with_inflight_cap(1, 1);
        let plan = FaultPlan::new();
        plan.arm("cast", 0);
        p.set_fault_plan(plan, "cast");
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.submit(random_indices(1, 53));
            let _ = p.submit(random_indices(1, 54));
            // With the dead flag unchecked the second submit would hang;
            // reaching here without panicking means the fault was missed.
        }));
        assert!(res.is_err(), "submit after worker death must panic");
        assert!(p.worker_died());
    }
}

//! Algorithm 2: the Tensor Casting index transformation.
//!
//! Walking Fig. 8's example, with original pairs
//! `[(1,0), (2,0), (4,0), (0,1), (2,1)]`:
//!
//! 1. **Sort-by-key** on `src` (stable): `[(0,1), (1,0), (2,0), (2,1), (4,0)]`.
//! 2. The sorted `dst` column — `[1, 0, 0, 1, 0]` — *is* the casted `src`:
//!    it says which gradient-table row each lookup's gradient lives in.
//! 3. **Scan** for non-consecutive ids: `[1, 1, 1, 0, 1]`.
//! 4. **Cumulative sum** minus one: `[0, 1, 2, 2, 3]` — the casted `dst`,
//!    i.e. which coalesced output row each gathered gradient reduces into.

use crate::casted_index::CastedIndexArray;
use tcast_embedding::IndexArray;

/// Runs Algorithm 2 (sort-by-key → scan → cumulative sum) on an index
/// array, producing the casted index array used by
/// [`crate::casted_gather_reduce`].
///
/// The sort is the packed-key stable sort shared with the baseline
/// coalescer so that both paths order tied lookups identically (this is
/// what makes the equivalence *bitwise*, not just approximate).
///
/// ```
/// use tcast_core::tensor_casting;
/// use tcast_embedding::IndexArray;
///
/// let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
/// let casted = tensor_casting(&index);
/// assert_eq!(casted.gather_src(), &[1, 0, 0, 1, 0]);
/// assert_eq!(casted.reduce_dst(), &[0, 1, 2, 2, 3]);
/// assert_eq!(casted.unique_rows(), &[0, 1, 2, 4]);
/// ```
pub fn tensor_casting(index: &IndexArray) -> CastedIndexArray {
    // Step 1: SortByKey(src, dst), stable.
    let (sorted_src, sorted_dst) = index.sorted_by_src();
    build_casted(&sorted_src, sorted_dst, index.num_outputs())
}

/// Variant of [`tensor_casting`] that sorts with a counting sort over the
/// `src` id range instead of a comparison sort.
///
/// When the table's *touched* id range is dense (the common case for hot
/// recommendation tables), counting sort is O(n + range) and typically
/// faster; the result is identical. This is the sort-algorithm ablation
/// called out in DESIGN.md. Falls back to [`tensor_casting`] when the id
/// range exceeds `4 * n` (sparse touch pattern).
pub fn tensor_casting_counting(index: &IndexArray) -> CastedIndexArray {
    let n = index.len();
    let Some(max_src) = index.max_src() else {
        return tensor_casting(index);
    };
    let range = max_src as usize + 1;
    if range > 4 * n.max(1) {
        return tensor_casting(index);
    }
    // Counting sort by src, stable by construction.
    let mut counts = vec![0u32; range + 1];
    for &s in index.src() {
        counts[s as usize + 1] += 1;
    }
    for i in 0..range {
        counts[i + 1] += counts[i];
    }
    let mut sorted_src = vec![0u32; n];
    let mut sorted_dst = vec![0u32; n];
    let mut cursor = counts;
    for (&s, &d) in index.src().iter().zip(index.dst().iter()) {
        let at = cursor[s as usize] as usize;
        sorted_src[at] = s;
        sorted_dst[at] = d;
        cursor[s as usize] += 1;
    }
    build_casted(&sorted_src, sorted_dst, index.num_outputs())
}

/// Steps 2-3 of Algorithm 2 over pre-sorted pairs, fused into one pass:
/// each new `src` run starts a fresh output row (the adjacent-difference
/// scan and its cumulative sum collapse into the `current` counter).
///
/// Shared with the parallel casting path, which produces the same sorted
/// pair order by other means.
pub(crate) fn build_casted(
    sorted_src: &[u32],
    sorted_dst: Vec<u32>,
    num_outputs: usize,
) -> CastedIndexArray {
    let n = sorted_src.len();
    let mut reduce_dst = Vec::with_capacity(n);
    let mut unique_rows = Vec::new();
    let mut current: i64 = -1;
    let mut prev: Option<u32> = None;
    for &s in sorted_src {
        if prev != Some(s) {
            current += 1;
            unique_rows.push(s);
        }
        reduce_dst.push(current as u32);
        prev = Some(s);
    }
    CastedIndexArray::new(sorted_dst, reduce_dst, unique_rows, num_outputs)
        .expect("casting output satisfies invariants by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig8_index() -> IndexArray {
        IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap()
    }

    #[test]
    fn fig8_walkthrough() {
        let c = tensor_casting(&fig8_index());
        assert_eq!(c.gather_src(), &[1, 0, 0, 1, 0]);
        assert_eq!(c.reduce_dst(), &[0, 1, 2, 2, 3]);
        assert_eq!(c.unique_rows(), &[0, 1, 2, 4]);
        assert_eq!(c.num_gradient_rows(), 2);
    }

    #[test]
    fn counting_variant_matches_comparison_sort() {
        let c1 = tensor_casting(&fig8_index());
        let c2 = tensor_casting_counting(&fig8_index());
        assert_eq!(c1, c2);
    }

    #[test]
    fn counting_variant_on_sparse_range_falls_back() {
        // max_src >> 4n triggers the comparison-sort fallback; results must
        // still be identical.
        let idx = IndexArray::from_pairs(vec![1_000_000, 5, 1_000_000], vec![0, 1, 2], 3).unwrap();
        assert_eq!(tensor_casting(&idx), tensor_casting_counting(&idx));
    }

    #[test]
    fn all_unique_srcs_yield_identity_reduce() {
        let idx = IndexArray::from_pairs(vec![30, 10, 20], vec![0, 1, 2], 3).unwrap();
        let c = tensor_casting(&idx);
        // Sorted srcs: 10,20,30 -> three distinct outputs 0,1,2.
        assert_eq!(c.reduce_dst(), &[0, 1, 2]);
        assert_eq!(c.unique_rows(), &[10, 20, 30]);
        assert_eq!(c.gather_src(), &[1, 2, 0]);
    }

    #[test]
    fn all_same_src_yields_single_output() {
        let idx = IndexArray::from_pairs(vec![7; 4], vec![0, 1, 2, 3], 4).unwrap();
        let c = tensor_casting(&idx);
        assert_eq!(c.reduce_dst(), &[0, 0, 0, 0]);
        assert_eq!(c.unique_rows(), &[7]);
        // Stable: gradient-table rows in original order.
        assert_eq!(c.gather_src(), &[0, 1, 2, 3]);
    }

    #[test]
    fn empty_index() {
        let idx = IndexArray::from_pairs(vec![], vec![], 0).unwrap();
        let c = tensor_casting(&idx);
        assert!(c.is_empty());
        assert_eq!(c.num_unique(), 0);
    }

    #[test]
    fn unique_count_matches_index_array() {
        let idx = IndexArray::from_samples(&[vec![3, 3, 9], vec![9, 1, 3]]).unwrap();
        let c = tensor_casting(&idx);
        assert_eq!(c.num_unique(), idx.unique_src_count());
    }
}

//! Memoization of casted index arrays.
//!
//! Evaluation loops, multi-epoch training, and — since the serving
//! subsystem — hot inference queries revisit identical index arrays (the
//! same validation batches every epoch; the same popular query's
//! candidate set thousands of times per second). Since Algorithm 2 is a
//! pure function of the index array, its output can be cached and the
//! casting cost paid once. The cache is keyed by a 64-bit FNV-1a hash of
//! the full `(src, dst, num_outputs)` content and verified by equality on
//! hit, so hash collisions cannot return a wrong casted array.

use std::collections::HashMap;

use crate::casted_index::CastedIndexArray;
use crate::casting::tensor_casting;
use tcast_embedding::IndexArray;

/// A bounded LRU memo table for casted index arrays.
///
/// Eviction is true least-recently-used: every hit refreshes the entry's
/// recency stamp, and a miss on a full cache evicts exactly the entry
/// whose last use is oldest — so a working set of hot entries (the serve
/// engine's repeated queries) survives an arbitrary stream of cold
/// entries passing through, which the old evict-everything policy did
/// not guarantee.
///
/// ```
/// use tcast_core::CastingCache;
/// use tcast_embedding::IndexArray;
///
/// let mut cache = CastingCache::new(16);
/// let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
/// let first = cache.get_or_cast(&index).clone();
/// let again = cache.get_or_cast(&index).clone();
/// assert_eq!(first, again);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.evictions(), 0);
/// ```
#[derive(Debug)]
pub struct CastingCache {
    capacity: usize,
    entries: HashMap<u64, Vec<Entry>>,
    len: usize,
    /// Monotonic use counter; each access stamps its entry, so the entry
    /// with the smallest stamp is the least recently used.
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    index: IndexArray,
    casted: CastedIndexArray,
    last_used: u64,
}

impl CastingCache {
    /// Creates a cache holding at most `capacity` casted arrays.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            entries: HashMap::new(),
            len: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of cached arrays.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted so far (always `misses - len` once full).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate over all accesses so far (0.0 before any access).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Returns the casted array for `index`, computing and caching it on
    /// first sight. When the cache is full, a miss evicts the least
    /// recently used entry.
    pub fn get_or_cast(&mut self, index: &IndexArray) -> &CastedIndexArray {
        let key = hash_index(index);
        self.clock += 1;
        let stamp = self.clock;
        // Split-borrow gymnastics: check for a hit first.
        let hit_pos = self
            .entries
            .get(&key)
            .and_then(|bucket| bucket.iter().position(|e| e.index == *index));
        if let Some(pos) = hit_pos {
            self.hits += 1;
            let entry = &mut self.entries.get_mut(&key).expect("bucket exists")[pos];
            entry.last_used = stamp;
            return &entry.casted;
        }
        self.misses += 1;
        if self.len >= self.capacity {
            self.evict_lru();
        }
        let casted = tensor_casting(index);
        let bucket = self.entries.entry(key).or_default();
        bucket.push(Entry {
            index: index.clone(),
            casted,
            last_used: stamp,
        });
        self.len += 1;
        &bucket.last().expect("just pushed").casted
    }

    /// Removes the entry with the oldest `last_used` stamp. O(len) scan:
    /// eviction happens at most once per miss, and misses already pay an
    /// O(n log n) casting transform, so recency bookkeeping stays free on
    /// the hit path where it matters.
    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .flat_map(|(&key, bucket)| bucket.iter().map(move |e| (key, e.last_used)))
            .min_by_key(|&(_, stamp)| stamp);
        let Some((key, stamp)) = victim else {
            return;
        };
        let bucket = self.entries.get_mut(&key).expect("victim bucket exists");
        let pos = bucket
            .iter()
            .position(|e| e.last_used == stamp)
            .expect("victim entry exists");
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.entries.remove(&key);
        }
        self.len -= 1;
        self.evictions += 1;
    }
}

fn hash_index(index: &IndexArray) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    let mut feed = |v: u32| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    feed(index.num_outputs() as u32);
    for &s in index.src() {
        feed(s);
    }
    for &d in index.dst() {
        feed(d);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(seed: u32) -> IndexArray {
        IndexArray::from_samples(&[vec![seed, seed + 1], vec![seed + 2]]).unwrap()
    }

    #[test]
    fn hit_returns_identical_result() {
        let mut cache = CastingCache::new(4);
        let index = idx(1);
        let direct = tensor_casting(&index);
        assert_eq!(cache.get_or_cast(&index), &direct);
        assert_eq!(cache.get_or_cast(&index), &direct);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_indices_do_not_collide() {
        let mut cache = CastingCache::new(8);
        for s in 0..5 {
            let index = idx(s * 10);
            assert_eq!(cache.get_or_cast(&index), &tensor_casting(&index));
        }
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.len(), 5);
        // Revisit all: pure hits.
        for s in 0..5 {
            let index = idx(s * 10);
            cache.get_or_cast(&index);
        }
        assert_eq!(cache.hits(), 5);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn capacity_bound_holds() {
        let mut cache = CastingCache::new(3);
        for s in 0..10 {
            cache.get_or_cast(&idx(s));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 10);
        assert_eq!(cache.evictions(), 7);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = CastingCache::new(3);
        cache.get_or_cast(&idx(0));
        cache.get_or_cast(&idx(10));
        cache.get_or_cast(&idx(20));
        // Refresh 0's recency: 10 is now the oldest.
        cache.get_or_cast(&idx(0));
        // A fourth entry must evict 10, not 0.
        cache.get_or_cast(&idx(30));
        assert_eq!(cache.evictions(), 1);
        let hits_before = cache.hits();
        cache.get_or_cast(&idx(0)); // still cached
        cache.get_or_cast(&idx(20)); // still cached
        cache.get_or_cast(&idx(30)); // still cached
        assert_eq!(cache.hits(), hits_before + 3);
        cache.get_or_cast(&idx(10)); // evicted: must miss
        assert_eq!(cache.hits(), hits_before + 3);
        assert_eq!(cache.misses(), 5);
    }

    #[test]
    fn hot_working_set_survives_a_cold_stream() {
        // The serving scenario the LRU upgrade exists for: a hot query
        // revisited between every cold query must never be evicted. The
        // old evict-everything policy flushed it on each overflow.
        let mut cache = CastingCache::new(4);
        let hot = idx(1000);
        cache.get_or_cast(&hot);
        for s in 0..20 {
            cache.get_or_cast(&idx(s * 7));
            let misses_before = cache.misses();
            cache.get_or_cast(&hot);
            assert_eq!(cache.misses(), misses_before, "hot entry evicted at {s}");
        }
        assert_eq!(cache.hits(), 20);
    }

    #[test]
    fn equal_content_different_allocation_hits() {
        let mut cache = CastingCache::new(4);
        let a = IndexArray::from_pairs(vec![5, 6], vec![0, 1], 2).unwrap();
        let b = IndexArray::from_pairs(vec![5, 6], vec![0, 1], 2).unwrap();
        cache.get_or_cast(&a);
        cache.get_or_cast(&b);
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_pairs_different_outputs_miss() {
        // num_outputs participates in identity: a trailing empty slot
        // changes the gradient-table height.
        let mut cache = CastingCache::new(4);
        let a = IndexArray::from_pairs(vec![1], vec![0], 1).unwrap();
        let b = IndexArray::from_pairs(vec![1], vec![0], 2).unwrap();
        cache.get_or_cast(&a);
        cache.get_or_cast(&b);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CastingCache::new(0);
    }
}

//! Memoization of casted index arrays.
//!
//! Evaluation loops and multi-epoch training revisit identical index
//! arrays (the same validation batches every epoch; hot batches in
//! cached data loaders). Since Algorithm 2 is a pure function of the
//! index array, its output can be cached and the casting cost paid once.
//! The cache is keyed by a 64-bit FNV-1a hash of the full `(src, dst,
//! num_outputs)` content and verified by equality on hit, so hash
//! collisions cannot return a wrong casted array.

use std::collections::HashMap;

use crate::casted_index::CastedIndexArray;
use crate::casting::tensor_casting;
use tcast_embedding::IndexArray;

/// An LRU-less bounded memo table for casted index arrays.
///
/// ```
/// use tcast_core::CastingCache;
/// use tcast_embedding::IndexArray;
///
/// let mut cache = CastingCache::new(16);
/// let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
/// let first = cache.get_or_cast(&index).clone();
/// let again = cache.get_or_cast(&index).clone();
/// assert_eq!(first, again);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug)]
pub struct CastingCache {
    capacity: usize,
    entries: HashMap<u64, Vec<(IndexArray, CastedIndexArray)>>,
    len: usize,
    hits: u64,
    misses: u64,
}

impl CastingCache {
    /// Creates a cache holding at most `capacity` casted arrays.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            entries: HashMap::new(),
            len: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached arrays.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Returns the casted array for `index`, computing and caching it on
    /// first sight. When the cache is full, a miss evicts everything
    /// (epoch boundaries naturally refill it; simpler and O(1) amortized
    /// versus tracking recency).
    pub fn get_or_cast(&mut self, index: &IndexArray) -> &CastedIndexArray {
        let key = hash_index(index);
        // Split-borrow gymnastics: check for a hit first.
        let hit_pos = self
            .entries
            .get(&key)
            .and_then(|bucket| bucket.iter().position(|(idx, _)| idx == index));
        if let Some(pos) = hit_pos {
            self.hits += 1;
            return &self.entries.get(&key).expect("bucket exists")[pos].1;
        }
        self.misses += 1;
        if self.len >= self.capacity {
            self.entries.clear();
            self.len = 0;
        }
        let casted = tensor_casting(index);
        let bucket = self.entries.entry(key).or_default();
        bucket.push((index.clone(), casted));
        self.len += 1;
        &bucket.last().expect("just pushed").1
    }
}

fn hash_index(index: &IndexArray) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    let mut feed = |v: u32| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    feed(index.num_outputs() as u32);
    for &s in index.src() {
        feed(s);
    }
    for &d in index.dst() {
        feed(d);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(seed: u32) -> IndexArray {
        IndexArray::from_samples(&[vec![seed, seed + 1], vec![seed + 2]]).unwrap()
    }

    #[test]
    fn hit_returns_identical_result() {
        let mut cache = CastingCache::new(4);
        let index = idx(1);
        let direct = tensor_casting(&index);
        assert_eq!(cache.get_or_cast(&index), &direct);
        assert_eq!(cache.get_or_cast(&index), &direct);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_indices_do_not_collide() {
        let mut cache = CastingCache::new(8);
        for s in 0..5 {
            let index = idx(s * 10);
            assert_eq!(cache.get_or_cast(&index), &tensor_casting(&index));
        }
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.len(), 5);
        // Revisit all: pure hits.
        for s in 0..5 {
            let index = idx(s * 10);
            cache.get_or_cast(&index);
        }
        assert_eq!(cache.hits(), 5);
    }

    #[test]
    fn capacity_bound_holds() {
        let mut cache = CastingCache::new(3);
        for s in 0..10 {
            cache.get_or_cast(&idx(s));
        }
        assert!(cache.len() <= 3);
        assert_eq!(cache.misses(), 10);
    }

    #[test]
    fn equal_content_different_allocation_hits() {
        let mut cache = CastingCache::new(4);
        let a = IndexArray::from_pairs(vec![5, 6], vec![0, 1], 2).unwrap();
        let b = IndexArray::from_pairs(vec![5, 6], vec![0, 1], 2).unwrap();
        cache.get_or_cast(&a);
        cache.get_or_cast(&b);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn same_pairs_different_outputs_miss() {
        // num_outputs participates in identity: a trailing empty slot
        // changes the gradient-table height.
        let mut cache = CastingCache::new(4);
        let a = IndexArray::from_pairs(vec![1], vec![0], 1).unwrap();
        let b = IndexArray::from_pairs(vec![1], vec![0], 2).unwrap();
        cache.get_or_cast(&a);
        cache.get_or_cast(&b);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CastingCache::new(0);
    }
}

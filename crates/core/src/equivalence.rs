//! Functional-equivalence checking between the baseline and casted
//! backward paths (the validation step of Section V).

use crate::gather_reduce::casted_backward;
use tcast_embedding::{gradient_expand_coalesce, EmbeddingError, IndexArray};
use tcast_tensor::Matrix;

/// Runs *both* backward paths — baseline expand-coalesce (Algorithm 1) and
/// casted gather-reduce (Algorithms 2+3) — on the same inputs and returns
/// the maximum absolute difference between the coalesced gradients.
///
/// A correct implementation returns exactly `0.0`: both paths accumulate
/// the same values in the same order.
///
/// # Errors
///
/// Returns an error if the two paths disagree on the *set* of touched
/// rows (a hard fault, not a tolerance issue) or on any shape.
///
/// ```
/// use tcast_core::verify_equivalence;
/// use tcast_embedding::IndexArray;
/// use tcast_tensor::Matrix;
///
/// # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
/// let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]])?;
/// let grads = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
/// assert_eq!(verify_equivalence(&grads, &index)?, 0.0);
/// # Ok(())
/// # }
/// ```
pub fn verify_equivalence(grads: &Matrix, index: &IndexArray) -> Result<f32, EmbeddingError> {
    let baseline = gradient_expand_coalesce(grads, index)?;
    let casted = casted_backward(grads, index)?;
    baseline.max_abs_diff(&casted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_difference_on_paper_example() {
        let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        let grads = Matrix::from_rows(&[&[0.5, 1.5], &[2.5, -0.5]]).unwrap();
        assert_eq!(verify_equivalence(&grads, &index).unwrap(), 0.0);
    }

    proptest! {
        /// THE paper invariant, property-tested: for any index array and
        /// any gradient values, baseline expand-coalesce and casted
        /// gather-reduce produce identical coalesced gradients.
        #[test]
        fn casted_equals_baseline(
            samples in proptest::collection::vec(
                proptest::collection::vec(0u32..64, 1..8),
                1..32,
            ),
            dim in 1usize..12,
            scale in 0.01f32..10.0,
        ) {
            let index = IndexArray::from_samples(&samples).unwrap();
            let batch = samples.len();
            let mut grads = Matrix::zeros(batch, dim);
            for (i, v) in grads.as_mut_slice().iter_mut().enumerate() {
                // Deterministic but varied values, including negatives.
                *v = scale * (((i * 2654435761) % 1000) as f32 / 500.0 - 1.0);
            }
            let diff = verify_equivalence(&grads, &index).unwrap();
            prop_assert_eq!(diff, 0.0);
        }

        /// Coalescing is a linear operator: equivalence must also hold
        /// after scaling the gradients (checks no path normalizes).
        #[test]
        fn equivalence_is_scale_invariant(
            samples in proptest::collection::vec(
                proptest::collection::vec(0u32..32, 1..5),
                1..16,
            ),
        ) {
            let index = IndexArray::from_samples(&samples).unwrap();
            let grads = Matrix::filled(samples.len(), 4, 1.0);
            let scaled = grads.scaled(-3.5);
            prop_assert_eq!(verify_equivalence(&grads, &index).unwrap(), 0.0);
            prop_assert_eq!(verify_equivalence(&scaled, &index).unwrap(), 0.0);
        }
    }
}

//! The casted *forward* gather-reduce: pooling embeddings through a
//! casted index array.
//!
//! Algorithm 2's output is usually consumed by the backward pass, but the
//! casted array equally describes the forward pooling `out[dst] +=
//! T[src]` — read it in the other direction: for lookup `i` (in
//! ascending-`src` order), add embedding row
//! `unique_rows[reduce_dst[i]]` into output `gather_src[i]`. Because
//! `reduce_dst` groups equal `src` lookups into contiguous runs, each
//! *unique* embedding row is fetched **once per batch** and accumulated
//! into every output that looks it up — a deduplicated gather. Under a
//! Zipf-skewed lookup distribution (every real recommendation workload,
//! Fig. 5) this reads `U << n` table rows where the plain
//! [`gather_reduce`] reads `n`.
//!
//! This is the serving subsystem's hot path: inference queries repeat
//! (the same popular query's candidate set arrives thousands of times),
//! so the casting transform itself is memoized in a
//! [`crate::CastingCache`] and the per-query forward cost drops to the
//! deduplicated accumulate.
//!
//! Numerically, each output row accumulates its lookups in
//! ascending-`src` (tie: original pair) order — a *fixed, deterministic*
//! order that is independent of how queries are batched together, which
//! is what makes fused-batch serving bit-identical to per-query serving
//! (see `tcast-serve`). It differs from [`gather_reduce`]'s pair-order
//! accumulation only by float reassociation.
//!
//! [`gather_reduce`]: tcast_embedding::gather_reduce

use crate::casted_index::CastedIndexArray;
use tcast_embedding::{EmbeddingError, EmbeddingTable};
use tcast_tensor::Matrix;

/// Pools embeddings through a casted index array: output row
/// `row_offset + gather_src[i]` accumulates table row
/// `unique_rows[reduce_dst[i]]`, with each unique table row fetched once.
///
/// `out` must already have at least `row_offset +
/// casted.num_gradient_rows()` rows of width `table.dim()`; the touched
/// rows are *accumulated into*, not zeroed (callers zero the batch region
/// once, then demux many queries into disjoint row windows — the serve
/// engine's fused batch).
///
/// # Errors
///
/// Returns [`EmbeddingError::SrcOutOfBounds`] if a unique row exceeds the
/// table, [`EmbeddingError::DimMismatch`] if `out` is narrower than the
/// table, or [`EmbeddingError::LengthMismatch`] if `out` has fewer rows
/// than `row_offset` plus the casted array's output count.
pub fn casted_embedding_forward_into(
    table: &EmbeddingTable,
    casted: &CastedIndexArray,
    out: &mut Matrix,
    row_offset: usize,
) -> Result<(), EmbeddingError> {
    if out.cols() != table.dim() {
        return Err(EmbeddingError::DimMismatch {
            expected: table.dim(),
            found: out.cols(),
        });
    }
    let needed = row_offset + casted.num_gradient_rows();
    if out.rows() < needed {
        return Err(EmbeddingError::LengthMismatch {
            expected: needed,
            found: out.rows(),
        });
    }
    if let Some(&bad) = casted
        .unique_rows()
        .iter()
        .find(|&&r| r as usize >= table.rows())
    {
        return Err(EmbeddingError::SrcOutOfBounds {
            src: bad,
            rows: table.rows(),
        });
    }

    let gather_src = casted.gather_src();
    let reduce_dst = casted.reduce_dst();
    let n = gather_src.len();
    let kernel = tcast_tensor::simd::dispatch();
    let unique_rows = casted.unique_rows();
    let mut i = 0usize;
    for (u, &row) in unique_rows.iter().enumerate() {
        if let Some(&next) = unique_rows.get(u + 1) {
            tcast_tensor::simd::prefetch(table.row(next as usize));
        }
        let trow = table.row(row as usize);
        // reduce_dst is non-decreasing: the outputs looking up `row` are
        // the contiguous run with reduce_dst == u.
        while i < n && reduce_dst[i] as usize == u {
            let acc = out.row_mut(row_offset + gather_src[i] as usize);
            tcast_tensor::simd::add_assign(kernel, acc, trow);
            i += 1;
        }
    }
    Ok(())
}

/// Allocating form of [`casted_embedding_forward_into`]: returns the
/// `B x dim` pooled matrix for one casted index array.
///
/// # Errors
///
/// Returns an error if a unique row exceeds the table.
pub fn casted_embedding_forward(
    table: &EmbeddingTable,
    casted: &CastedIndexArray,
) -> Result<Matrix, EmbeddingError> {
    let mut out = Matrix::zeros(casted.num_gradient_rows(), table.dim());
    casted_embedding_forward_into(table, casted, &mut out, 0)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casting::tensor_casting;
    use tcast_embedding::{gather_reduce, IndexArray};
    use tcast_tensor::SplitMix64;

    /// A table whose entries are small integers: f32 sums of these are
    /// exact in any order, so reassociation cannot hide a wrong result.
    fn integer_table(rows: usize, dim: usize, seed: u64) -> EmbeddingTable {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * dim)
            .map(|_| rng.next_below(64) as f32 - 32.0)
            .collect();
        EmbeddingTable::from_vec(rows, dim, data).unwrap()
    }

    fn random_index(rng: &mut SplitMix64, batch: usize, pooling: usize, rows: u64) -> IndexArray {
        let samples: Vec<Vec<u32>> = (0..batch)
            .map(|_| (0..pooling).map(|_| rng.next_below(rows) as u32).collect())
            .collect();
        IndexArray::from_samples(&samples).unwrap()
    }

    #[test]
    fn matches_gather_reduce_exactly_on_integer_tables() {
        let mut rng = SplitMix64::new(7);
        for (batch, pooling, rows) in [(1, 1, 5), (4, 3, 10), (32, 8, 50), (17, 5, 9)] {
            let table = integer_table(rows as usize, 12, 3);
            let index = random_index(&mut rng, batch, pooling, rows);
            let plain = gather_reduce(&table, &index).unwrap();
            let casted = casted_embedding_forward(&table, &tensor_casting(&index)).unwrap();
            assert_eq!(
                plain.as_slice(),
                casted.as_slice(),
                "b={batch} p={pooling} r={rows}"
            );
        }
    }

    #[test]
    fn close_to_gather_reduce_on_float_tables() {
        let table = EmbeddingTable::seeded(100, 16, 5);
        let mut rng = SplitMix64::new(11);
        let index = random_index(&mut rng, 24, 10, 100);
        let plain = gather_reduce(&table, &index).unwrap();
        let casted = casted_embedding_forward(&table, &tensor_casting(&index)).unwrap();
        // Only reassociation separates the two paths.
        assert!(plain.max_abs_diff(&casted).unwrap() < 1e-4);
    }

    #[test]
    fn row_offset_writes_a_window_of_a_fused_batch() {
        let table = integer_table(20, 8, 9);
        let mut rng = SplitMix64::new(13);
        let a = random_index(&mut rng, 3, 4, 20);
        let b = random_index(&mut rng, 5, 4, 20);
        // Fused: query A at rows 0..3, query B at rows 3..8.
        let mut fused = Matrix::zeros(8, 8);
        casted_embedding_forward_into(&table, &tensor_casting(&a), &mut fused, 0).unwrap();
        casted_embedding_forward_into(&table, &tensor_casting(&b), &mut fused, 3).unwrap();
        let solo_a = casted_embedding_forward(&table, &tensor_casting(&a)).unwrap();
        let solo_b = casted_embedding_forward(&table, &tensor_casting(&b)).unwrap();
        for r in 0..3 {
            assert_eq!(fused.row(r), solo_a.row(r));
        }
        for r in 0..5 {
            assert_eq!(fused.row(3 + r), solo_b.row(r));
        }
    }

    #[test]
    fn accumulation_order_is_batch_composition_independent() {
        // The serving invariant at kernel level: an output row's value is
        // bit-identical whether its query is casted alone or fused with
        // other queries into one index array (same ascending-src order
        // per output either way).
        let table = EmbeddingTable::seeded(50, 8, 21);
        let mut rng = SplitMix64::new(17);
        let a = random_index(&mut rng, 4, 6, 50);
        let b = random_index(&mut rng, 3, 6, 50);
        // Fuse a and b into one index array with b's outputs offset by 4.
        let src: Vec<u32> = a.src().iter().chain(b.src().iter()).copied().collect();
        let dst: Vec<u32> = a
            .dst()
            .iter()
            .copied()
            .chain(b.dst().iter().map(|&d| d + 4))
            .collect();
        let fused_index = IndexArray::from_pairs(src, dst, 7).unwrap();
        let fused = casted_embedding_forward(&table, &tensor_casting(&fused_index)).unwrap();
        let solo_a = casted_embedding_forward(&table, &tensor_casting(&a)).unwrap();
        let solo_b = casted_embedding_forward(&table, &tensor_casting(&b)).unwrap();
        for r in 0..4 {
            assert_eq!(fused.row(r), solo_a.row(r), "query A row {r}");
        }
        for r in 0..3 {
            assert_eq!(fused.row(4 + r), solo_b.row(r), "query B row {r}");
        }
    }

    #[test]
    fn empty_index_is_a_noop() {
        let table = integer_table(5, 4, 1);
        let index = IndexArray::from_pairs(vec![], vec![], 3).unwrap();
        let out = casted_embedding_forward(&table, &tensor_casting(&index)).unwrap();
        assert_eq!(out.shape(), (3, 4));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_narrow_output() {
        let table = integer_table(5, 4, 1);
        let index = IndexArray::from_pairs(vec![1], vec![0], 1).unwrap();
        let mut out = Matrix::zeros(1, 3);
        assert!(matches!(
            casted_embedding_forward_into(&table, &tensor_casting(&index), &mut out, 0),
            Err(EmbeddingError::DimMismatch { .. })
        ));
    }

    #[test]
    fn rejects_short_output() {
        let table = integer_table(5, 4, 1);
        let index = IndexArray::from_pairs(vec![1, 2], vec![0, 1], 2).unwrap();
        let mut out = Matrix::zeros(2, 4);
        assert!(matches!(
            casted_embedding_forward_into(&table, &tensor_casting(&index), &mut out, 1),
            Err(EmbeddingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_rows() {
        let table = integer_table(2, 4, 1);
        let index = IndexArray::from_pairs(vec![4], vec![0], 1).unwrap();
        let mut out = Matrix::zeros(1, 4);
        assert!(matches!(
            casted_embedding_forward_into(&table, &tensor_casting(&index), &mut out, 0),
            Err(EmbeddingError::SrcOutOfBounds { .. })
        ));
    }
}

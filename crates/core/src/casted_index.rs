//! The casted index array — the output of Algorithm 2.

use tcast_embedding::EmbeddingError;

/// The "T.Casted" `(src, dst)` index array of Fig. 7, plus the metadata the
/// scatter step needs.
///
/// For each of the `n` original lookups (in ascending-`src`, stable order):
///
/// * `gather_src[i]` — which row of the `B x D` *gradient table* to gather
///   (the `dst` of the sorted original pair);
/// * `reduce_dst[i]` — which *coalesced output row* to reduce it into
///   (the cumulative-sum array of Fig. 8);
/// * `unique_rows[j]` — which *embedding-table row* coalesced output `j`
///   belongs to (ascending), consumed by the subsequent scatter.
///
/// Invariants (enforced at construction): `gather_src.len() ==
/// reduce_dst.len()`; `reduce_dst` is non-decreasing starting at 0 with
/// unit steps; `unique_rows` is strictly increasing with length
/// `max(reduce_dst)+1`; every `gather_src < num_gradient_rows`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastedIndexArray {
    gather_src: Vec<u32>,
    reduce_dst: Vec<u32>,
    unique_rows: Vec<u32>,
    num_gradient_rows: usize,
}

impl CastedIndexArray {
    /// Creates a casted index array from parts, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidIndex`] if any invariant fails.
    pub fn new(
        gather_src: Vec<u32>,
        reduce_dst: Vec<u32>,
        unique_rows: Vec<u32>,
        num_gradient_rows: usize,
    ) -> Result<Self, EmbeddingError> {
        if gather_src.len() != reduce_dst.len() {
            return Err(EmbeddingError::InvalidIndex(format!(
                "gather_src ({}) and reduce_dst ({}) length mismatch",
                gather_src.len(),
                reduce_dst.len()
            )));
        }
        if let Some(&bad) = gather_src
            .iter()
            .find(|&&s| s as usize >= num_gradient_rows)
        {
            return Err(EmbeddingError::InvalidIndex(format!(
                "gather_src {bad} exceeds gradient table rows {num_gradient_rows}"
            )));
        }
        if !reduce_dst.is_empty() {
            if reduce_dst[0] != 0 {
                return Err(EmbeddingError::InvalidIndex(
                    "reduce_dst must start at 0".to_string(),
                ));
            }
            if reduce_dst
                .windows(2)
                .any(|w| w[1] != w[0] && w[1] != w[0] + 1)
            {
                return Err(EmbeddingError::InvalidIndex(
                    "reduce_dst must be non-decreasing with unit steps".to_string(),
                ));
            }
            let expected_unique = *reduce_dst.last().expect("non-empty") as usize + 1;
            if unique_rows.len() != expected_unique {
                return Err(EmbeddingError::InvalidIndex(format!(
                    "unique_rows has {} entries, reduce_dst implies {expected_unique}",
                    unique_rows.len()
                )));
            }
        } else if !unique_rows.is_empty() {
            return Err(EmbeddingError::InvalidIndex(
                "unique_rows must be empty when there are no lookups".to_string(),
            ));
        }
        if unique_rows.windows(2).any(|w| w[0] >= w[1]) {
            return Err(EmbeddingError::InvalidIndex(
                "unique_rows must be strictly increasing".to_string(),
            ));
        }
        Ok(Self {
            gather_src,
            reduce_dst,
            unique_rows,
            num_gradient_rows,
        })
    }

    /// Per-lookup gradient-table row to gather (the casted `src`).
    pub fn gather_src(&self) -> &[u32] {
        &self.gather_src
    }

    /// Per-lookup coalesced output slot (the casted `dst`).
    pub fn reduce_dst(&self) -> &[u32] {
        &self.reduce_dst
    }

    /// Embedding-table row ids of the coalesced outputs, ascending.
    pub fn unique_rows(&self) -> &[u32] {
        &self.unique_rows
    }

    /// Rows in the gradient table this casted array gathers from (the
    /// mini-batch size `B`).
    pub fn num_gradient_rows(&self) -> usize {
        self.num_gradient_rows
    }

    /// Number of lookups `n`.
    pub fn len(&self) -> usize {
        self.gather_src.len()
    }

    /// Whether there are no lookups.
    pub fn is_empty(&self) -> bool {
        self.gather_src.is_empty()
    }

    /// Number of coalesced output rows `U`.
    pub fn num_unique(&self) -> usize {
        self.unique_rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_fig8_arrays_accepted() {
        let c = CastedIndexArray::new(
            vec![1, 0, 0, 1, 0],
            vec![0, 1, 2, 2, 3],
            vec![0, 1, 2, 4],
            2,
        )
        .unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.num_unique(), 4);
        assert_eq!(c.num_gradient_rows(), 2);
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(CastedIndexArray::new(vec![0], vec![0, 0], vec![0], 1).is_err());
    }

    #[test]
    fn rejects_out_of_range_gather_src() {
        assert!(CastedIndexArray::new(vec![2], vec![0], vec![5], 2).is_err());
    }

    #[test]
    fn rejects_nonzero_start() {
        assert!(CastedIndexArray::new(vec![0], vec![1], vec![5], 1).is_err());
    }

    #[test]
    fn rejects_jumps_in_reduce_dst() {
        assert!(CastedIndexArray::new(vec![0, 0], vec![0, 2], vec![1, 2, 3], 1).is_err());
    }

    #[test]
    fn rejects_decreasing_reduce_dst() {
        assert!(CastedIndexArray::new(vec![0, 0], vec![0, 0], vec![1, 2], 1).is_err());
    }

    #[test]
    fn rejects_unsorted_unique_rows() {
        assert!(CastedIndexArray::new(vec![0, 0], vec![0, 1], vec![4, 2], 1).is_err());
    }

    #[test]
    fn empty_is_valid() {
        let c = CastedIndexArray::new(vec![], vec![], vec![], 0).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.num_unique(), 0);
    }

    #[test]
    fn empty_with_unique_rows_rejected() {
        assert!(CastedIndexArray::new(vec![], vec![], vec![1], 0).is_err());
    }
}

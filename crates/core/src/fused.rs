//! Fully-fused backward: casted gather-reduce and the optimizer scatter
//! in a single pass.
//!
//! The paper keeps the casted gather-reduce and the scatter as two
//! operators (Fig. 9b shows them back-to-back) because framework
//! optimizer APIs consume an explicit coalesced-gradient tensor. But once
//! both run on the same engine, nothing forces the coalesced gradients to
//! be materialized at all: each coalesced row can be accumulated in
//! registers and applied to its table row immediately, saving one `U x D`
//! write plus one `U x D` read. This module implements that
//! further-fused variant as a natural *extension* of the paper's design
//! (ablated in `benches/` and `tcast_system::ablation`).

use crate::casted_index::CastedIndexArray;
use tcast_embedding::{optim::SparseOptimizer, EmbeddingError, EmbeddingTable};
use tcast_tensor::Matrix;

/// Runs the whole embedding backward in one fused pass: for every
/// coalesced output row, gather-and-reduce its gradient rows from the
/// `B x D` gradient table into an accumulator, then immediately apply the
/// optimizer update to the embedding table row.
///
/// Produces exactly the same final table state as
/// [`crate::casted_gather_reduce`] followed by
/// `tcast_embedding::scatter_apply` (asserted in tests), while touching
/// the coalesced gradients only in on-chip/register state.
///
/// # Errors
///
/// Returns an error when `grads` does not match the casted array's
/// gradient-table shape, when a unique row exceeds the table, or on a
/// dimension mismatch.
pub fn fused_casted_backward(
    table: &mut EmbeddingTable,
    grads: &Matrix,
    casted: &CastedIndexArray,
    optimizer: &mut dyn SparseOptimizer,
) -> Result<(), EmbeddingError> {
    if grads.rows() != casted.num_gradient_rows() {
        return Err(EmbeddingError::LengthMismatch {
            expected: casted.num_gradient_rows(),
            found: grads.rows(),
        });
    }
    if grads.cols() != table.dim() {
        return Err(EmbeddingError::DimMismatch {
            expected: table.dim(),
            found: grads.cols(),
        });
    }
    if let Some(&bad) = casted
        .unique_rows()
        .iter()
        .find(|&&r| r as usize >= table.rows())
    {
        return Err(EmbeddingError::SrcOutOfBounds {
            src: bad,
            rows: table.rows(),
        });
    }

    let dim = table.dim();
    let gather_src = casted.gather_src();
    let reduce_dst = casted.reduce_dst();
    let kernel = tcast_tensor::simd::dispatch();
    let mut acc = vec![0.0f32; dim];
    let mut i = 0usize;
    let n = gather_src.len();
    for (u, &row) in casted.unique_rows().iter().enumerate() {
        acc.fill(0.0);
        // reduce_dst is non-decreasing: the lookups of coalesced row `u`
        // are the contiguous run with reduce_dst == u.
        while i < n && reduce_dst[i] as usize == u {
            if let Some(&next) = gather_src.get(i + 1) {
                tcast_tensor::simd::prefetch(grads.row(next as usize));
            }
            let g = grads.row(gather_src[i] as usize);
            tcast_tensor::simd::add_assign(kernel, &mut acc, g);
            i += 1;
        }
        optimizer.update_row(row, table.row_mut(row as usize), &acc);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casting::tensor_casting;
    use crate::gather_reduce::casted_gather_reduce;
    use tcast_embedding::{
        optim::{Adagrad, Sgd},
        scatter_apply, IndexArray,
    };
    use tcast_tensor::SplitMix64;

    fn workload(seed: u64) -> (EmbeddingTable, IndexArray, Matrix) {
        let mut rng = SplitMix64::new(seed);
        let table = EmbeddingTable::seeded(300, 8, seed);
        let samples: Vec<Vec<u32>> = (0..48)
            .map(|_| (0..5).map(|_| rng.next_below(300) as u32).collect())
            .collect();
        let index = IndexArray::from_samples(&samples).unwrap();
        let mut grads = Matrix::zeros(48, 8);
        for v in grads.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }
        (table, index, grads)
    }

    #[test]
    fn fused_equals_two_step_with_sgd() {
        let (table, index, grads) = workload(1);
        let casted = tensor_casting(&index);

        let mut fused_table = table.clone();
        fused_casted_backward(&mut fused_table, &grads, &casted, &mut Sgd::new(0.1)).unwrap();

        let mut two_step_table = table.clone();
        let coalesced = casted_gather_reduce(&grads, &casted).unwrap();
        scatter_apply(&mut two_step_table, &coalesced, &mut Sgd::new(0.1)).unwrap();

        assert_eq!(fused_table.max_abs_diff(&two_step_table).unwrap(), 0.0);
    }

    #[test]
    fn fused_equals_two_step_with_adagrad() {
        let (table, index, grads) = workload(2);
        let casted = tensor_casting(&index);

        let mut fused_table = table.clone();
        fused_casted_backward(
            &mut fused_table,
            &grads,
            &casted,
            &mut Adagrad::new(0.1, 1e-8),
        )
        .unwrap();

        let mut two_step_table = table.clone();
        let coalesced = casted_gather_reduce(&grads, &casted).unwrap();
        scatter_apply(
            &mut two_step_table,
            &coalesced,
            &mut Adagrad::new(0.1, 1e-8),
        )
        .unwrap();

        assert_eq!(fused_table.max_abs_diff(&two_step_table).unwrap(), 0.0);
    }

    #[test]
    fn fused_validates_shapes() {
        let (mut table, index, grads) = workload(3);
        let casted = tensor_casting(&index);
        let wrong_rows = Matrix::zeros(grads.rows() + 1, 8);
        assert!(
            fused_casted_backward(&mut table, &wrong_rows, &casted, &mut Sgd::new(0.1)).is_err()
        );
        let wrong_dim = Matrix::zeros(grads.rows(), 4);
        assert!(
            fused_casted_backward(&mut table, &wrong_dim, &casted, &mut Sgd::new(0.1)).is_err()
        );
    }

    #[test]
    fn fused_rejects_rows_beyond_table() {
        let index = IndexArray::from_samples(&[vec![5]]).unwrap();
        let casted = tensor_casting(&index);
        let mut small_table = EmbeddingTable::zeros(5, 4);
        let grads = Matrix::zeros(1, 4);
        assert!(matches!(
            fused_casted_backward(&mut small_table, &grads, &casted, &mut Sgd::new(0.1)),
            Err(EmbeddingError::SrcOutOfBounds { src: 5, rows: 5 })
        ));
    }

    #[test]
    fn fused_on_empty_workload_is_noop() {
        let index = IndexArray::from_pairs(vec![], vec![], 0).unwrap();
        let casted = tensor_casting(&index);
        let mut table = EmbeddingTable::seeded(10, 4, 9);
        let before = table.clone();
        let grads = Matrix::zeros(0, 4);
        fused_casted_backward(&mut table, &grads, &casted, &mut Sgd::new(0.5)).unwrap();
        assert_eq!(table.max_abs_diff(&before).unwrap(), 0.0);
    }
}

//! Multi-threaded variants of the hot primitives.
//!
//! The paper's methodology (Section V) *heavily tunes* the baseline: their
//! optimized gradient-coalesce is 5-12x faster than stock PyTorch "by
//! better parallelizing and tuning its execution", and all reported
//! results use the tuned version. These parallel kernels are this
//! repository's equivalent, so that wall-clock comparisons between the
//! baseline and the casted path are conservative in the same way.
//!
//! All entry points dispatch onto the persistent [`tcast_pool`] workers
//! (the `_in` variants take an explicit pool, the legacy signatures use
//! [`tcast_pool::global`]): no OS threads are spawned per call.

use crate::coalesce::CoalescedGradients;
use crate::error::EmbeddingError;
use crate::index::IndexArray;
use crate::table::EmbeddingTable;
use tcast_pool::Pool;
use tcast_tensor::Matrix;

/// Parallel fused gather-reduce over `threads` pool tasks on the shared
/// [`tcast_pool::global`] pool.
///
/// Output slots are partitioned into contiguous ranges; every task scans
/// the index array and accumulates only the pairs whose `dst` falls in its
/// range, so no two tasks ever write the same output row — and each output
/// row accumulates in index order, exactly like the serial kernel.
///
/// # Errors
///
/// Returns [`EmbeddingError::SrcOutOfBounds`] if any `src` exceeds the
/// table.
pub fn gather_reduce_parallel(
    table: &EmbeddingTable,
    index: &IndexArray,
    threads: usize,
) -> Result<Matrix, EmbeddingError> {
    gather_reduce_parallel_in(tcast_pool::global(), table, index, threads)
}

/// [`gather_reduce_parallel`] on an explicit pool.
///
/// # Errors
///
/// Returns [`EmbeddingError::SrcOutOfBounds`] if any `src` exceeds the
/// table.
pub fn gather_reduce_parallel_in(
    pool: &Pool,
    table: &EmbeddingTable,
    index: &IndexArray,
    threads: usize,
) -> Result<Matrix, EmbeddingError> {
    index.validate_against_rows(table.rows())?;
    let outputs = index.num_outputs();
    let mut out = Matrix::zeros(outputs, table.dim());
    if outputs == 0 {
        return Ok(out);
    }
    gather_reduce_pooled_unchecked(pool, table, index, &mut out, threads);
    Ok(out)
}

/// Pooled gather-reduce into a pre-shaped, zeroed `outputs x dim` matrix
/// (bounds already validated by the caller).
pub(crate) fn gather_reduce_pooled_unchecked(
    pool: &Pool,
    table: &EmbeddingTable,
    index: &IndexArray,
    out: &mut Matrix,
    threads: usize,
) {
    let outputs = index.num_outputs();
    let dim = table.dim();
    let threads = threads.max(1).min(outputs.max(1));
    // Contiguous output ranges per task; the matrix buffer splits into
    // disjoint row bands.
    let per = outputs.div_ceil(threads);
    let buf = out.as_mut_slice();
    let kernel = tcast_tensor::simd::dispatch();
    pool.scope(|scope| {
        let mut rest = buf;
        for t in 0..threads {
            let lo = t * per;
            let hi = ((t + 1) * per).min(outputs);
            if lo >= hi {
                break;
            }
            let (band, tail) = rest.split_at_mut((hi - lo) * dim);
            rest = tail;
            scope.spawn(move || {
                for (src, dst) in index.iter() {
                    let d = dst as usize;
                    if d < lo || d >= hi {
                        continue;
                    }
                    let row = table.row(src as usize);
                    let acc = &mut band[(d - lo) * dim..(d - lo + 1) * dim];
                    tcast_tensor::simd::add_assign(kernel, acc, row);
                }
            });
        }
    });
}

/// Parallel gradient coalescing (Algorithm 1 with a parallel Step B).
///
/// The sort (Step A) runs once on the calling thread; the accumulation
/// (Step B) is then partitioned over *unique-run* ranges, so each thread
/// owns a contiguous band of output rows.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `expanded.rows()` differs
/// from `index.len()`.
pub fn gradient_coalesce_parallel(
    expanded: &Matrix,
    index: &IndexArray,
    threads: usize,
) -> Result<CoalescedGradients, EmbeddingError> {
    gradient_coalesce_parallel_in(tcast_pool::global(), expanded, index, threads)
}

/// [`gradient_coalesce_parallel`] on an explicit pool.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `expanded.rows()` differs
/// from `index.len()`.
pub fn gradient_coalesce_parallel_in(
    pool: &Pool,
    expanded: &Matrix,
    index: &IndexArray,
    threads: usize,
) -> Result<CoalescedGradients, EmbeddingError> {
    if expanded.rows() != index.len() {
        return Err(EmbeddingError::LengthMismatch {
            expected: index.len(),
            found: expanded.rows(),
        });
    }
    let dim = expanded.cols();
    let src = index.src();
    let n = src.len();

    // Step A: stable argsort by src (packed key keeps ties in pair order).
    let mut keys: Vec<u64> = src
        .iter()
        .enumerate()
        .map(|(pos, &s)| ((s as u64) << 32) | pos as u64)
        .collect();
    keys.sort_unstable();

    // Locate the start of every unique run in the sorted order.
    let mut run_starts: Vec<usize> = Vec::new();
    let mut rows: Vec<u32> = Vec::new();
    let mut prev: Option<u32> = None;
    for (i, &key) in keys.iter().enumerate() {
        let s = (key >> 32) as u32;
        if prev != Some(s) {
            run_starts.push(i);
            rows.push(s);
        }
        prev = Some(s);
    }
    run_starts.push(n);
    let unique = rows.len();

    let mut grads = Matrix::zeros(unique, dim);
    if unique == 0 {
        return CoalescedGradients::new(rows, grads);
    }
    let threads = threads.max(1).min(unique);
    let per = unique.div_ceil(threads);

    let buf = grads.as_mut_slice();
    let keys = &keys;
    let run_starts = &run_starts;
    let kernel = tcast_tensor::simd::dispatch();
    pool.scope(|scope| {
        let mut rest = buf;
        for t in 0..threads {
            let ulo = t * per;
            let uhi = ((t + 1) * per).min(unique);
            if ulo >= uhi {
                break;
            }
            let (band, tail) = rest.split_at_mut((uhi - ulo) * dim);
            rest = tail;
            scope.spawn(move || {
                for u in ulo..uhi {
                    let acc = &mut band[(u - ulo) * dim..(u - ulo + 1) * dim];
                    let run = &keys[run_starts[u]..run_starts[u + 1]];
                    for (j, &key) in run.iter().enumerate() {
                        if let Some(&next) = run.get(j + 1) {
                            let pos = (next & 0xFFFF_FFFF) as usize;
                            tcast_tensor::simd::prefetch(expanded.row(pos));
                        }
                        let pos = (key & 0xFFFF_FFFF) as usize;
                        tcast_tensor::simd::add_assign(kernel, acc, expanded.row(pos));
                    }
                }
            });
        }
    });
    CoalescedGradients::new(rows, grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::gradient_coalesce;
    use crate::expand::gradient_expand;
    use crate::gather::gather_reduce;
    use tcast_tensor::SplitMix64;

    fn random_workload(
        rows: usize,
        dim: usize,
        batch: usize,
        pooling: usize,
        seed: u64,
    ) -> (EmbeddingTable, IndexArray, Matrix) {
        let table = EmbeddingTable::seeded(rows, dim, seed);
        let mut rng = SplitMix64::new(seed ^ 0xABCD);
        let samples: Vec<Vec<u32>> = (0..batch)
            .map(|_| {
                (0..pooling)
                    .map(|_| rng.next_below(rows as u64) as u32)
                    .collect()
            })
            .collect();
        let index = IndexArray::from_samples(&samples).unwrap();
        let mut grads = Matrix::zeros(batch, dim);
        for v in grads.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }
        (table, index, grads)
    }

    #[test]
    fn parallel_gather_matches_serial() {
        let (table, index, _) = random_workload(500, 16, 64, 5, 1);
        let serial = gather_reduce(&table, &index).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = gather_reduce_parallel(&table, &index, threads).unwrap();
            assert!(
                serial.max_abs_diff(&par).unwrap() < 1e-5,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_gather_with_more_threads_than_outputs() {
        let (table, index, _) = random_workload(100, 8, 3, 2, 2);
        let par = gather_reduce_parallel(&table, &index, 64).unwrap();
        let serial = gather_reduce(&table, &index).unwrap();
        assert!(serial.max_abs_diff(&par).unwrap() < 1e-6);
    }

    #[test]
    fn parallel_coalesce_matches_serial() {
        let (_, index, grads) = random_workload(200, 8, 128, 4, 3);
        let expanded = gradient_expand(&grads, &index).unwrap();
        let serial = gradient_coalesce(&expanded, &index).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = gradient_coalesce_parallel(&expanded, &index, threads).unwrap();
            assert_eq!(serial.rows(), par.rows());
            assert!(
                serial.max_abs_diff(&par).unwrap() < 1e-5,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_coalesce_heavy_duplication() {
        // Every lookup hits one of 3 rows: exercises long unique runs.
        let src: Vec<u32> = (0..300).map(|i| (i % 3) as u32).collect();
        let dst: Vec<u32> = (0..300).map(|i| (i % 10) as u32).collect();
        let index = IndexArray::from_pairs(src, dst, 10).unwrap();
        let grads = Matrix::filled(10, 4, 0.5);
        let expanded = gradient_expand(&grads, &index).unwrap();
        let serial = gradient_coalesce(&expanded, &index).unwrap();
        let par = gradient_coalesce_parallel(&expanded, &index, 4).unwrap();
        assert_eq!(serial.rows(), &[0, 1, 2]);
        assert!(serial.max_abs_diff(&par).unwrap() < 1e-4);
    }

    #[test]
    fn parallel_coalesce_validates_input() {
        let index = IndexArray::from_samples(&[vec![0, 1]]).unwrap();
        let wrong = Matrix::zeros(3, 2);
        assert!(gradient_coalesce_parallel(&wrong, &index, 2).is_err());
    }
}

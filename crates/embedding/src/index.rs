//! The `(src, dst)` index array that drives embedding gather-reduce
//! (Fig. 2a of the paper).
//!
//! Each pair says "gather table row `src` and reduce it into output slot
//! `dst`". For a mini-batch of `B` samples, `dst` ranges over `0..B` and the
//! number of pairs equals the total lookups in the batch (batch size ×
//! pooling factor for fixed-length pooling).

use crate::error::EmbeddingError;

/// A validated array of `(src, dst)` lookup pairs plus the number of output
/// (pooled) slots.
///
/// Invariants enforced at construction:
/// * `src` and `dst` have equal length;
/// * every `dst` is `< num_outputs`;
/// * every output slot in `0..num_outputs` receives at least one lookup
///   when built via [`IndexArray::from_samples`] (general constructors
///   allow empty slots, which reduce to zero vectors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexArray {
    src: Vec<u32>,
    dst: Vec<u32>,
    num_outputs: usize,
}

impl IndexArray {
    /// Builds an index array from per-sample lookup lists: sample `i`'s
    /// rows all get `dst = i`.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidIndex`] if any sample has no
    /// lookups (the paper's models always pool at least one row per
    /// sample).
    pub fn from_samples(samples: &[Vec<u32>]) -> Result<Self, EmbeddingError> {
        let total: usize = samples.iter().map(Vec::len).sum();
        let mut src = Vec::with_capacity(total);
        let mut dst = Vec::with_capacity(total);
        for (i, lookups) in samples.iter().enumerate() {
            if lookups.is_empty() {
                return Err(EmbeddingError::InvalidIndex(format!(
                    "sample {i} has no lookups"
                )));
            }
            for &row in lookups {
                src.push(row);
                dst.push(i as u32);
            }
        }
        Ok(Self {
            src,
            dst,
            num_outputs: samples.len(),
        })
    }

    /// Builds an index array from raw parallel `src`/`dst` vectors.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] if the vectors differ in
    /// length, or [`EmbeddingError::DstOutOfBounds`] if any `dst` is
    /// `>= num_outputs`.
    pub fn from_pairs(
        src: Vec<u32>,
        dst: Vec<u32>,
        num_outputs: usize,
    ) -> Result<Self, EmbeddingError> {
        if src.len() != dst.len() {
            return Err(EmbeddingError::LengthMismatch {
                expected: src.len(),
                found: dst.len(),
            });
        }
        if let Some(&bad) = dst.iter().find(|&&d| d as usize >= num_outputs) {
            return Err(EmbeddingError::DstOutOfBounds {
                dst: bad,
                outputs: num_outputs,
            });
        }
        Ok(Self {
            src,
            dst,
            num_outputs,
        })
    }

    /// Number of `(src, dst)` pairs (total lookups).
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the array holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Number of output (pooled) slots, i.e. the mini-batch size.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The `src` (table-row) ids.
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// The `dst` (output-slot) ids.
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Iterator over `(src, dst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }

    /// Largest `src` id, or `None` when empty. Useful for validating
    /// against a table's row count once, ahead of a kernel.
    pub fn max_src(&self) -> Option<u32> {
        self.src.iter().copied().max()
    }

    /// Number of *distinct* `src` ids.
    ///
    /// This is `U` in the paper's traffic model: the size of the coalesced
    /// gradient tensor (Fig. 5b) and the number of rows ultimately
    /// scattered.
    pub fn unique_src_count(&self) -> usize {
        if self.src.is_empty() {
            return 0;
        }
        let mut sorted = self.src.clone();
        sorted.sort_unstable();
        1 + sorted.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Validates every `src` against a table row count.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] on the first offending id.
    pub fn validate_against_rows(&self, rows: usize) -> Result<(), EmbeddingError> {
        if let Some(&bad) = self.src.iter().find(|&&s| s as usize >= rows) {
            return Err(EmbeddingError::SrcOutOfBounds { src: bad, rows });
        }
        Ok(())
    }

    /// Rewrites this array in place: clears the pair vectors (keeping
    /// their allocations), hands them to `fill` to push the new pairs,
    /// then re-validates the construction invariants. This is the buffer
    /// recycling primitive behind zero-allocation batch prefetch — a
    /// `BatchSource` free-list refills a returned batch's index arrays
    /// instead of allocating fresh ones.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] if `fill` leaves the
    /// vectors with different lengths, or
    /// [`EmbeddingError::DstOutOfBounds`] if any pushed `dst` is
    /// `>= num_outputs`. On error the array is left empty (never with
    /// invariant-violating contents).
    pub fn refill(
        &mut self,
        num_outputs: usize,
        fill: impl FnOnce(&mut Vec<u32>, &mut Vec<u32>),
    ) -> Result<(), EmbeddingError> {
        self.src.clear();
        self.dst.clear();
        self.num_outputs = num_outputs;
        fill(&mut self.src, &mut self.dst);
        let validity = if self.src.len() != self.dst.len() {
            Err(EmbeddingError::LengthMismatch {
                expected: self.src.len(),
                found: self.dst.len(),
            })
        } else if let Some(&bad) = self.dst.iter().find(|&&d| d as usize >= num_outputs) {
            Err(EmbeddingError::DstOutOfBounds {
                dst: bad,
                outputs: num_outputs,
            })
        } else {
            Ok(())
        };
        if validity.is_err() {
            self.src.clear();
            self.dst.clear();
            self.num_outputs = 0;
        }
        validity
    }

    /// Sorts the pairs by `src` (stable), returning sorted `(src, dst)`
    /// vectors. This is the `SortByKey` of Algorithm 2 and the
    /// argsort-by-`src` of Algorithm 1.
    ///
    /// A stable counting-style sort is used when the id range is dense
    /// enough; otherwise a comparison sort on packed keys. Either way ties
    /// preserve original pair order, which the coalescing accumulation
    /// relies on for determinism.
    pub fn sorted_by_src(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.src.len();
        // Pack (src, position) into u64 so an unstable sort is
        // nevertheless stable w.r.t. original order.
        let mut keys: Vec<u64> = self
            .src
            .iter()
            .enumerate()
            .map(|(pos, &s)| ((s as u64) << 32) | pos as u64)
            .collect();
        keys.sort_unstable();
        let mut sorted_src = Vec::with_capacity(n);
        let mut sorted_dst = Vec::with_capacity(n);
        for key in keys {
            let s = (key >> 32) as u32;
            let pos = (key & 0xFFFF_FFFF) as usize;
            sorted_src.push(s);
            sorted_dst.push(self.dst[pos]);
        }
        (sorted_src, sorted_dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_lays_out_paper_example() {
        // Fig. 2a: batch 0 gathers {1,2,4}, batch 1 gathers {0,2}.
        let idx = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        assert_eq!(idx.src(), &[1, 2, 4, 0, 2]);
        assert_eq!(idx.dst(), &[0, 0, 0, 1, 1]);
        assert_eq!(idx.num_outputs(), 2);
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn from_samples_rejects_empty_sample() {
        assert!(IndexArray::from_samples(&[vec![1], vec![]]).is_err());
    }

    #[test]
    fn from_pairs_validates() {
        assert!(IndexArray::from_pairs(vec![1, 2], vec![0], 1).is_err());
        assert!(IndexArray::from_pairs(vec![1, 2], vec![0, 5], 2).is_err());
        assert!(IndexArray::from_pairs(vec![1, 2], vec![0, 1], 2).is_ok());
    }

    #[test]
    fn unique_src_count_matches_paper_example() {
        let idx = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        // {0,1,2,4} -> 4 unique.
        assert_eq!(idx.unique_src_count(), 4);
    }

    #[test]
    fn unique_src_count_edge_cases() {
        let empty = IndexArray::from_pairs(vec![], vec![], 0).unwrap();
        assert_eq!(empty.unique_src_count(), 0);
        let all_same = IndexArray::from_pairs(vec![7; 5], vec![0; 5], 1).unwrap();
        assert_eq!(all_same.unique_src_count(), 1);
    }

    #[test]
    fn sorted_by_src_matches_paper_example() {
        // [1,2,4,0,2] -> [0,1,2,2,4]; dst follows: [1,0,0,1,0].
        let idx = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        let (s, d) = idx.sorted_by_src();
        assert_eq!(s, vec![0, 1, 2, 2, 4]);
        assert_eq!(d, vec![1, 0, 0, 1, 0]);
    }

    #[test]
    fn sorted_by_src_is_stable_on_ties() {
        // Three lookups of row 5 from dst 0, 1, 2 must stay in order.
        let idx = IndexArray::from_pairs(vec![5, 5, 5], vec![0, 1, 2], 3).unwrap();
        let (_, d) = idx.sorted_by_src();
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn validate_against_rows() {
        let idx = IndexArray::from_samples(&[vec![9]]).unwrap();
        assert!(idx.validate_against_rows(10).is_ok());
        assert!(matches!(
            idx.validate_against_rows(9),
            Err(EmbeddingError::SrcOutOfBounds { src: 9, rows: 9 })
        ));
    }

    #[test]
    fn max_src() {
        let idx = IndexArray::from_samples(&[vec![3, 1], vec![7]]).unwrap();
        assert_eq!(idx.max_src(), Some(7));
        let empty = IndexArray::from_pairs(vec![], vec![], 0).unwrap();
        assert_eq!(empty.max_src(), None);
    }

    #[test]
    fn refill_reuses_buffers_and_revalidates() {
        let mut idx = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        idx.refill(3, |src, dst| {
            src.extend_from_slice(&[9, 8, 7]);
            dst.extend_from_slice(&[0, 1, 2]);
        })
        .unwrap();
        assert_eq!(
            idx,
            IndexArray::from_pairs(vec![9, 8, 7], vec![0, 1, 2], 3).unwrap()
        );
        // Invariant violations are rejected and leave the array empty.
        assert!(matches!(
            idx.refill(2, |src, dst| {
                src.push(1);
                dst.push(5);
            }),
            Err(EmbeddingError::DstOutOfBounds { dst: 5, outputs: 2 })
        ));
        assert!(idx.is_empty());
        assert!(matches!(
            idx.refill(1, |src, _| src.push(0)),
            Err(EmbeddingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn iter_yields_pairs() {
        let idx = IndexArray::from_samples(&[vec![4], vec![2]]).unwrap();
        let pairs: Vec<(u32, u32)> = idx.iter().collect();
        assert_eq!(pairs, vec![(4, 0), (2, 1)]);
    }
}

//! Forward-propagation primitives: tensor gather and the fused tensor
//! gather-reduce (Fig. 2a of the paper).

use crate::error::EmbeddingError;
use crate::index::IndexArray;
use crate::table::EmbeddingTable;
use tcast_pool::Exec;
use tcast_tensor::Matrix;

/// Fused tensor gather-reduce: for every `(src, dst)` pair, accumulate
/// table row `src` into output row `dst`.
///
/// This is the paper's key forward primitive. As the Fig. 2 caption notes,
/// gather and reduce are implemented "as a fused kernel to save memory
/// bandwidth": each embedding row is read once and reduced in place into
/// the output, with no `n x dim` intermediate.
///
/// Returns a `num_outputs x dim` matrix of pooled embeddings.
///
/// # Errors
///
/// Returns [`EmbeddingError::SrcOutOfBounds`] if any `src` exceeds the
/// table.
///
/// ```
/// use tcast_embedding::{EmbeddingTable, IndexArray, gather_reduce};
///
/// # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
/// let table = EmbeddingTable::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 4.0, 4.0])?;
/// let index = IndexArray::from_samples(&[vec![0, 2], vec![1]])?;
/// let pooled = gather_reduce(&table, &index)?;
/// assert_eq!(pooled.row(0), &[5.0, 5.0]); // rows 0 + 2
/// assert_eq!(pooled.row(1), &[2.0, 2.0]); // row 1
/// # Ok(())
/// # }
/// ```
pub fn gather_reduce(table: &EmbeddingTable, index: &IndexArray) -> Result<Matrix, EmbeddingError> {
    let mut out = Matrix::default();
    gather_reduce_into(table, index, &mut out, Exec::Serial)?;
    Ok(out)
}

/// [`gather_reduce`] writing into `out` (reshaped in place, reusing its
/// allocation), serially or band-partitioned on a pool ([`Exec`]).
/// Bit-identical to the serial kernel either way: each output row
/// accumulates its lookups in index order.
///
/// # Errors
///
/// Returns [`EmbeddingError::SrcOutOfBounds`] if any `src` exceeds the
/// table.
pub fn gather_reduce_into(
    table: &EmbeddingTable,
    index: &IndexArray,
    out: &mut Matrix,
    exec: Exec<'_>,
) -> Result<(), EmbeddingError> {
    index.validate_against_rows(table.rows())?;
    let outputs = index.num_outputs();
    let dim = table.dim();
    out.zero_into(outputs, dim);
    if outputs == 0 {
        return Ok(());
    }
    match exec.pool() {
        Some(pool) if exec.threads() > 1 && outputs > 1 => {
            crate::parallel::gather_reduce_pooled_unchecked(
                pool,
                table,
                index,
                out,
                exec.threads(),
            );
        }
        _ => {
            let kernel = tcast_tensor::simd::dispatch();
            let srcs = index.src();
            let dsts = index.dst();
            for (i, (&src, &dst)) in srcs.iter().zip(dsts.iter()).enumerate() {
                if let Some(&next) = srcs.get(i + 1) {
                    tcast_tensor::simd::prefetch(table.row(next as usize));
                }
                let row = table.row(src as usize);
                let acc = out.row_mut(dst as usize);
                tcast_tensor::simd::add_assign(kernel, acc, row);
            }
        }
    }
    Ok(())
}

/// Unfused gather: materializes every looked-up row as an `n x dim`
/// matrix (one row per `(src, dst)` pair, in pair order).
///
/// Kept for the fusion ablation: `reduce_by_dst(gather(...))` computes the
/// same result as [`gather_reduce`] while moving ~2x the data, which is
/// exactly why the paper fuses them.
///
/// # Errors
///
/// Returns [`EmbeddingError::SrcOutOfBounds`] if any `src` exceeds the
/// table.
pub fn gather(table: &EmbeddingTable, index: &IndexArray) -> Result<Matrix, EmbeddingError> {
    index.validate_against_rows(table.rows())?;
    let dim = table.dim();
    let mut out = Matrix::zeros(index.len(), dim);
    for (i, (src, _)) in index.iter().enumerate() {
        out.row_mut(i).copy_from_slice(table.row(src as usize));
    }
    Ok(out)
}

/// Reduces an `n x dim` gathered matrix into `num_outputs x dim` according
/// to the index's `dst` slots. Second half of the unfused path.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `gathered.rows()` does not
/// equal `index.len()`.
pub fn reduce_by_dst(gathered: &Matrix, index: &IndexArray) -> Result<Matrix, EmbeddingError> {
    if gathered.rows() != index.len() {
        return Err(EmbeddingError::LengthMismatch {
            expected: index.len(),
            found: gathered.rows(),
        });
    }
    let dim = gathered.cols();
    let mut out = Matrix::zeros(index.num_outputs(), dim);
    for (i, (_, dst)) in index.iter().enumerate() {
        let acc = out.row_mut(dst as usize);
        for (a, &v) in acc.iter_mut().zip(gathered.row(i).iter()) {
            *a += v;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_table() -> EmbeddingTable {
        // 6 rows, dim 2; row i = [i, 10i].
        let mut data = Vec::new();
        for i in 0..6 {
            data.push(i as f32);
            data.push(10.0 * i as f32);
        }
        EmbeddingTable::from_vec(6, 2, data).unwrap()
    }

    fn fig2_index() -> IndexArray {
        IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap()
    }

    #[test]
    fn gather_reduce_matches_fig2a() {
        // Output 0 = E[1]+E[2]+E[4]; output 1 = E[0]+E[2].
        let pooled = gather_reduce(&fig2_table(), &fig2_index()).unwrap();
        assert_eq!(pooled.row(0), &[7.0, 70.0]);
        assert_eq!(pooled.row(1), &[2.0, 20.0]);
    }

    #[test]
    fn gather_reduce_rejects_out_of_bounds() {
        let idx = IndexArray::from_samples(&[vec![6]]).unwrap();
        assert!(matches!(
            gather_reduce(&fig2_table(), &idx),
            Err(EmbeddingError::SrcOutOfBounds { src: 6, rows: 6 })
        ));
    }

    #[test]
    fn unfused_path_equals_fused() {
        let table = fig2_table();
        let idx = fig2_index();
        let fused = gather_reduce(&table, &idx).unwrap();
        let unfused = reduce_by_dst(&gather(&table, &idx).unwrap(), &idx).unwrap();
        assert!(fused.max_abs_diff(&unfused).unwrap() < 1e-6);
    }

    #[test]
    fn gather_preserves_pair_order() {
        let g = gather(&fig2_table(), &fig2_index()).unwrap();
        assert_eq!(g.rows(), 5);
        assert_eq!(g.row(0), &[1.0, 10.0]); // src 1
        assert_eq!(g.row(2), &[4.0, 40.0]); // src 4
        assert_eq!(g.row(3), &[0.0, 0.0]); // src 0
    }

    #[test]
    fn reduce_by_dst_validates_length() {
        let idx = fig2_index();
        let wrong = Matrix::zeros(3, 2);
        assert!(reduce_by_dst(&wrong, &idx).is_err());
    }

    #[test]
    fn duplicate_src_within_one_sample_counts_twice() {
        let table = fig2_table();
        let idx = IndexArray::from_samples(&[vec![3, 3]]).unwrap();
        let pooled = gather_reduce(&table, &idx).unwrap();
        assert_eq!(pooled.row(0), &[6.0, 60.0]);
    }

    #[test]
    fn empty_output_slot_reduces_to_zero() {
        let table = fig2_table();
        // Built via from_pairs to allow a slot with no lookups.
        let idx = IndexArray::from_pairs(vec![1], vec![0], 2).unwrap();
        let pooled = gather_reduce(&table, &idx).unwrap();
        assert_eq!(pooled.row(1), &[0.0, 0.0]);
    }
}

//! Gradient scatter (Fig. 2b step 3): writing the coalesced gradients back
//! into the embedding table through an optimizer.
//!
//! Scatter is the dual of gather — the paper stresses (Section IV-C) that
//! both run over "the same datapath, just in the opposite directions",
//! which is what lets one NMP core design serve the whole training loop.

use crate::coalesce::CoalescedGradients;
use crate::error::EmbeddingError;
use crate::optim::SparseOptimizer;
use crate::table::EmbeddingTable;
use tcast_tensor::Matrix;

/// Applies coalesced gradients to the table: for every `(row, grad)` pair,
/// `table[row] <- optimizer(table[row], grad)`.
///
/// # Errors
///
/// Returns [`EmbeddingError::SrcOutOfBounds`] if a row id exceeds the
/// table, or [`EmbeddingError::DimMismatch`] if gradient width differs
/// from the table dimension.
pub fn scatter_apply(
    table: &mut EmbeddingTable,
    coalesced: &CoalescedGradients,
    optimizer: &mut dyn SparseOptimizer,
) -> Result<(), EmbeddingError> {
    if coalesced.grads().cols() != table.dim() {
        return Err(EmbeddingError::DimMismatch {
            expected: table.dim(),
            found: coalesced.grads().cols(),
        });
    }
    if let Some(&bad) = coalesced
        .rows()
        .iter()
        .find(|&&r| r as usize >= table.rows())
    {
        return Err(EmbeddingError::SrcOutOfBounds {
            src: bad,
            rows: table.rows(),
        });
    }
    for (i, &row) in coalesced.rows().iter().enumerate() {
        optimizer.update_row(row, table.row_mut(row as usize), coalesced.grads().row(i));
    }
    Ok(())
}

/// Scatter for an arbitrary (row-id, gradient-matrix) pairing that need
/// *not* be coalesced or sorted — used to demonstrate, in tests, why
/// uncoalesced scatters break stateful optimizers (the paper's Section
/// II-B argument).
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `rows.len()` differs from
/// `grads.rows()`, [`EmbeddingError::DimMismatch`] on width mismatch, or
/// [`EmbeddingError::SrcOutOfBounds`] if a row id exceeds the table.
pub fn scatter_apply_dense(
    table: &mut EmbeddingTable,
    rows: &[u32],
    grads: &Matrix,
    optimizer: &mut dyn SparseOptimizer,
) -> Result<(), EmbeddingError> {
    if rows.len() != grads.rows() {
        return Err(EmbeddingError::LengthMismatch {
            expected: rows.len(),
            found: grads.rows(),
        });
    }
    if grads.cols() != table.dim() {
        return Err(EmbeddingError::DimMismatch {
            expected: table.dim(),
            found: grads.cols(),
        });
    }
    if let Some(&bad) = rows.iter().find(|&&r| r as usize >= table.rows()) {
        return Err(EmbeddingError::SrcOutOfBounds {
            src: bad,
            rows: table.rows(),
        });
    }
    for (i, &row) in rows.iter().enumerate() {
        optimizer.update_row(row, table.row_mut(row as usize), grads.row(i));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::gradient_expand_coalesce;
    use crate::index::IndexArray;
    use crate::optim::{Adagrad, Sgd};

    #[test]
    fn scatter_updates_only_touched_rows() {
        let mut table = EmbeddingTable::zeros(6, 2);
        let c = CoalescedGradients::new(
            vec![1, 4],
            Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]).unwrap(),
        )
        .unwrap();
        scatter_apply(&mut table, &c, &mut Sgd::new(1.0)).unwrap();
        assert_eq!(table.row(1), &[-1.0, -1.0]);
        assert_eq!(table.row(4), &[-2.0, -2.0]);
        for r in [0usize, 2, 3, 5] {
            assert_eq!(table.row(r), &[0.0, 0.0]);
        }
    }

    #[test]
    fn scatter_validates_bounds_and_dims() {
        let mut table = EmbeddingTable::zeros(3, 2);
        let too_wide = CoalescedGradients::new(vec![0], Matrix::zeros(1, 3)).unwrap();
        assert!(scatter_apply(&mut table, &too_wide, &mut Sgd::new(1.0)).is_err());
        let oob = CoalescedGradients::new(vec![3], Matrix::zeros(1, 2)).unwrap();
        assert!(scatter_apply(&mut table, &oob, &mut Sgd::new(1.0)).is_err());
    }

    #[test]
    fn full_backward_matches_manual_sgd() {
        // End-to-end Fig. 2b: expand + coalesce + scatter with SGD equals
        // subtracting lr * (sum of upstream grads whose lookups hit the row).
        let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        let upstream = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let mut table = EmbeddingTable::zeros(6, 1);
        let c = gradient_expand_coalesce(&upstream, &index).unwrap();
        scatter_apply(&mut table, &c, &mut Sgd::new(0.5)).unwrap();
        assert_eq!(table.row(0), &[-1.0]); // G[1]*0.5
        assert_eq!(table.row(1), &[-0.5]); // G[0]*0.5
        assert_eq!(table.row(2), &[-1.5]); // (G[0]+G[1])*0.5
        assert_eq!(table.row(3), &[0.0]);
        assert_eq!(table.row(4), &[-0.5]);
    }

    #[test]
    fn uncoalesced_scatter_diverges_for_stateful_optimizers() {
        // The Section II-B argument: applying duplicate gradients
        // sequentially through Adagrad is NOT the same as coalescing first,
        // because the accumulator update is nonlinear in G.
        let rows_dup = vec![2u32, 2u32];
        let grads_dup = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();

        let mut table_seq = EmbeddingTable::zeros(3, 1);
        scatter_apply_dense(
            &mut table_seq,
            &rows_dup,
            &grads_dup,
            &mut Adagrad::new(0.1, 0.0),
        )
        .unwrap();

        let mut table_coal = EmbeddingTable::zeros(3, 1);
        let c = CoalescedGradients::new(vec![2], Matrix::from_rows(&[&[2.0]]).unwrap()).unwrap();
        scatter_apply(&mut table_coal, &c, &mut Adagrad::new(0.1, 0.0)).unwrap();

        let diff = table_seq.max_abs_diff(&table_coal).unwrap();
        assert!(
            diff > 1e-3,
            "sequential duplicate updates should differ from coalesced (diff={diff})"
        );
    }

    #[test]
    fn uncoalesced_scatter_is_fine_for_plain_sgd() {
        // For linear SGD the two are identical — which is why the paper
        // notes frameworks coalesce anyway, to support *all* optimizers.
        let rows_dup = vec![2u32, 2u32];
        let grads_dup = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let mut a = EmbeddingTable::zeros(3, 1);
        scatter_apply_dense(&mut a, &rows_dup, &grads_dup, &mut Sgd::new(0.1)).unwrap();
        let mut b = EmbeddingTable::zeros(3, 1);
        let c = CoalescedGradients::new(vec![2], Matrix::from_rows(&[&[2.0]]).unwrap()).unwrap();
        scatter_apply(&mut b, &c, &mut Sgd::new(0.1)).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn scatter_dense_validates_lengths() {
        let mut table = EmbeddingTable::zeros(3, 1);
        let grads = Matrix::zeros(2, 1);
        assert!(scatter_apply_dense(&mut table, &[0], &grads, &mut Sgd::new(0.1)).is_err());
    }
}

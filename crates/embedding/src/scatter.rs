//! Gradient scatter (Fig. 2b step 3): writing the coalesced gradients back
//! into the embedding table through an optimizer.
//!
//! Scatter is the dual of gather — the paper stresses (Section IV-C) that
//! both run over "the same datapath, just in the opposite directions",
//! which is what lets one NMP core design serve the whole training loop.

use crate::coalesce::CoalescedGradients;
use crate::error::EmbeddingError;
use crate::optim::{ShardedOptimizer, SparseOptimizer, SplittableOptimizer};
use crate::table::EmbeddingTable;
use tcast_pool::Exec;
use tcast_tensor::Matrix;

/// Applies coalesced gradients to the table: for every `(row, grad)` pair,
/// `table[row] <- optimizer(table[row], grad)`.
///
/// # Errors
///
/// Returns [`EmbeddingError::SrcOutOfBounds`] if a row id exceeds the
/// table, or [`EmbeddingError::DimMismatch`] if gradient width differs
/// from the table dimension.
pub fn scatter_apply(
    table: &mut EmbeddingTable,
    coalesced: &CoalescedGradients,
    optimizer: &mut dyn SparseOptimizer,
) -> Result<(), EmbeddingError> {
    if coalesced.grads().cols() != table.dim() {
        return Err(EmbeddingError::DimMismatch {
            expected: table.dim(),
            found: coalesced.grads().cols(),
        });
    }
    if let Some(&bad) = coalesced
        .rows()
        .iter()
        .find(|&&r| r as usize >= table.rows())
    {
        return Err(EmbeddingError::SrcOutOfBounds {
            src: bad,
            rows: table.rows(),
        });
    }
    for (i, &row) in coalesced.rows().iter().enumerate() {
        optimizer.update_row(row, table.row_mut(row as usize), coalesced.grads().row(i));
    }
    Ok(())
}

/// Scatter for a raw `(row-ids, gradient-matrix)` pairing — the
/// **production casted scatter path**: `Trainer::step` feeds it the
/// `CoalescedScratch` arrays the fused casted gather-reduce fills, so no
/// `CoalescedGradients` wrapper is materialized on the hot path.
///
/// # Caller contract
///
/// For stateful optimizers the rows **must already be coalesced** —
/// unique, with each row's gradients pre-accumulated (sorted order is not
/// required here, but both producers emit ascending rows). Passing
/// duplicate rows applies the optimizer's nonlinear state update once per
/// duplicate instead of once per coalesced sum, which diverges (the
/// paper's Section II-B argument; demonstrated in
/// `uncoalesced_scatter_diverges_for_stateful_optimizers`). This function
/// cannot check uniqueness cheaply and does not try; the parallel form
/// [`scatter_apply_parallel`] does enforce the ordering contract.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `rows.len()` differs from
/// `grads.rows()`, [`EmbeddingError::DimMismatch`] on width mismatch, or
/// [`EmbeddingError::SrcOutOfBounds`] if a row id exceeds the table.
pub fn scatter_apply_dense(
    table: &mut EmbeddingTable,
    rows: &[u32],
    grads: &Matrix,
    optimizer: &mut dyn SparseOptimizer,
) -> Result<(), EmbeddingError> {
    if rows.len() != grads.rows() {
        return Err(EmbeddingError::LengthMismatch {
            expected: rows.len(),
            found: grads.rows(),
        });
    }
    if grads.cols() != table.dim() {
        return Err(EmbeddingError::DimMismatch {
            expected: table.dim(),
            found: grads.cols(),
        });
    }
    if let Some(&bad) = rows.iter().find(|&&r| r as usize >= table.rows()) {
        return Err(EmbeddingError::SrcOutOfBounds {
            src: bad,
            rows: table.rows(),
        });
    }
    for (i, &row) in rows.iter().enumerate() {
        optimizer.update_row(row, table.row_mut(row as usize), grads.row(i));
    }
    Ok(())
}

/// Band-parallel optimizer scatter, **bit-identical** to the serial
/// scatter.
///
/// Coalescing guarantees each table row appears exactly once in `rows`
/// (strictly ascending — enforced here), so partitioning the
/// `(rows, grads)` arrays into contiguous equal-count bands yields bands
/// that touch **disjoint table rows and disjoint optimizer state**: each
/// band updates its `split_at_mut` table slice plus its
/// [`SplittableOptimizer`] state shard on a `tcast-pool` scope with no
/// synchronization. This is the scatter-side dual of the banded casted
/// gather-reduce — the same row-disjointness RecNMP/MP-Rec exploit to
/// spread sparse updates across parallel units — and it closes the
/// paper's Section IV-C "same datapath, opposite direction" loop: with it,
/// every phase of embedding backward runs on the pool.
///
/// Per row, the shard applies exactly the serial optimizer update (same
/// operations, same order), so tables *and* optimizer state match the
/// serial scatter bit-for-bit regardless of band count.
///
/// With [`Exec::Serial`] (or a single effective band) this degrades to
/// the serial loop of [`scatter_apply_dense`].
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `rows.len()` differs
/// from `grads.rows()`, [`EmbeddingError::DimMismatch`] on width
/// mismatch, [`EmbeddingError::SrcOutOfBounds`] if a row id exceeds the
/// table, or [`EmbeddingError::InvalidIndex`] if `rows` is not strictly
/// ascending (i.e. not coalesced).
pub fn scatter_apply_parallel(
    table: &mut EmbeddingTable,
    rows: &[u32],
    grads: &Matrix,
    optimizer: &mut dyn SplittableOptimizer,
    exec: Exec<'_>,
) -> Result<(), EmbeddingError> {
    if rows.len() != grads.rows() {
        return Err(EmbeddingError::LengthMismatch {
            expected: rows.len(),
            found: grads.rows(),
        });
    }
    if grads.cols() != table.dim() {
        return Err(EmbeddingError::DimMismatch {
            expected: table.dim(),
            found: grads.cols(),
        });
    }
    if !rows.windows(2).all(|w| w[0] < w[1]) {
        return Err(EmbeddingError::InvalidIndex(
            "scatter_apply_parallel requires coalesced rows (strictly ascending, unique)".into(),
        ));
    }
    // Ascending order just verified: the last row is the maximum, so it
    // alone bounds-checks the whole array (no second O(n) pass).
    if let Some(&last) = rows.last() {
        if last as usize >= table.rows() {
            return Err(EmbeddingError::SrcOutOfBounds {
                src: last,
                rows: table.rows(),
            });
        }
    }

    let n = rows.len();
    let bands = exec.threads().min(n);
    let (pool, bands) = match exec.pool() {
        Some(pool) if bands > 1 => (pool, bands),
        _ => {
            for (i, &row) in rows.iter().enumerate() {
                optimizer.update_row(row, table.row_mut(row as usize), grads.row(i));
            }
            return Ok(());
        }
    };

    // Equal-count bands over the coalesced lookups; the row-id fence is
    // each band's first row id, closed just past the last touched row so
    // dense optimizer state is only grown to the touched prefix (a
    // scatter touching low ids on a huge table must not allocate
    // table-sized state). Strictly ascending rows make the fence strictly
    // ascending too.
    let dim = table.dim();
    let per = n.div_ceil(bands);
    let bands = n.div_ceil(per);
    let mut fence = Vec::with_capacity(bands + 1);
    fence.push(0u32);
    for b in 1..bands {
        fence.push(rows[b * per]);
    }
    fence.push(rows[n - 1].saturating_add(1));

    let shards = optimizer.split_by_rows(&fence, dim);
    pool.scope(|scope| {
        let mut table_rest = table.as_mut_slice();
        for (b, mut shard) in shards.into_iter().enumerate() {
            let lo = b * per;
            let hi = ((b + 1) * per).min(n);
            let band_lo = fence[b] as usize;
            let band_hi = fence[b + 1] as usize;
            let (band, tail) = table_rest.split_at_mut((band_hi - band_lo) * dim);
            table_rest = tail;
            let band_rows = &rows[lo..hi];
            scope.spawn(move || {
                for (k, &row) in band_rows.iter().enumerate() {
                    let at = (row as usize - band_lo) * dim;
                    shard.update_row(row, &mut band[at..at + dim], grads.row(lo + k));
                }
            });
        }
    });
    Ok(())
}

/// Shard-concurrent scatter of **global-keyed** coalesced gradients into a
/// single table slab whose optimizer state lives in per-shard
/// [`ShardedOptimizer`] slabs — the production **baseline**-mode scatter
/// when the model is sharded.
///
/// With one shard this delegates to the band-parallel
/// [`scatter_apply_parallel`] (today's unsharded path, unchanged). With
/// more, the ascending `rows` are split at the shard fences
/// (`partition_point`, zero-copy) and each shard updates its
/// `split_at_mut` slice of the table through its own optimizer shard, one
/// pool task per shard. Per-row updates touch disjoint rows and disjoint
/// state, and each row sees exactly the serial update — so the result is
/// **bit-identical** to the unsharded serial scatter for any shard count,
/// serial or pooled.
///
/// # Errors
///
/// The validations of [`scatter_apply_parallel`], plus
/// [`EmbeddingError::InvalidIndex`] if the optimizer's
/// [`crate::sharding::ShardMap`] does not cover exactly `table.rows()`.
pub fn scatter_apply_sharded(
    table: &mut EmbeddingTable,
    rows: &[u32],
    grads: &Matrix,
    optimizer: &mut ShardedOptimizer,
    exec: Exec<'_>,
) -> Result<(), EmbeddingError> {
    if optimizer.map().rows() != table.rows() {
        return Err(EmbeddingError::InvalidIndex(format!(
            "shard map covers {} rows but the table has {}",
            optimizer.map().rows(),
            table.rows()
        )));
    }
    if optimizer.num_shards() == 1 {
        return scatter_apply_parallel(table, rows, grads, optimizer.shard_mut(0), exec);
    }
    if rows.len() != grads.rows() {
        return Err(EmbeddingError::LengthMismatch {
            expected: rows.len(),
            found: grads.rows(),
        });
    }
    if grads.cols() != table.dim() {
        return Err(EmbeddingError::DimMismatch {
            expected: table.dim(),
            found: grads.cols(),
        });
    }
    if !rows.windows(2).all(|w| w[0] < w[1]) {
        return Err(EmbeddingError::InvalidIndex(
            "scatter_apply_sharded requires coalesced rows (strictly ascending, unique)".into(),
        ));
    }
    if let Some(&last) = rows.last() {
        if last as usize >= table.rows() {
            return Err(EmbeddingError::SrcOutOfBounds {
                src: last,
                rows: table.rows(),
            });
        }
    }

    let pool = match exec.pool() {
        Some(pool) if exec.threads() > 1 => pool,
        _ => {
            // Serial: route each global row through its owning shard's
            // local state (an O(1) divide per row, no allocation).
            for (i, &row) in rows.iter().enumerate() {
                optimizer.update_row(row, table.row_mut(row as usize), grads.row(i));
            }
            return Ok(());
        }
    };

    let dim = table.dim();
    let (map, opts) = optimizer.parts_mut();
    pool.scope(|scope| {
        let mut table_rest = table.as_mut_slice();
        let mut row_lo = 0usize;
        for (s, opt) in opts.iter_mut().enumerate() {
            let base = map.shard_base(s);
            let end = map.shard_end(s);
            let (slab, tail) = table_rest.split_at_mut((end - base) * dim);
            table_rest = tail;
            let row_hi = row_lo + rows[row_lo..].partition_point(|&r| (r as usize) < end);
            let shard_rows = &rows[row_lo..row_hi];
            let grad_lo = row_lo;
            row_lo = row_hi;
            if shard_rows.is_empty() {
                continue;
            }
            scope.spawn(move || {
                for (k, &row) in shard_rows.iter().enumerate() {
                    let local = row as usize - base;
                    opt.update_row(
                        local as u32,
                        &mut slab[local * dim..(local + 1) * dim],
                        grads.row(grad_lo + k),
                    );
                }
            });
        }
    });
    Ok(())
}

/// Shard-concurrent scatter of **shard-local** coalesced gradients — the
/// production **casted**-mode scatter when the model is sharded: the
/// casting pipeline already routed each job's indices per shard, so the
/// per-shard casted gather-reduce emits per-shard `(local rows, grads)`
/// pairs and no global merge is ever materialized.
///
/// `parts(s)` returns shard `s`'s coalesced gradients keyed by
/// **shard-local** ascending row ids (it may be called more than once per
/// shard). With one shard this delegates to [`scatter_apply_parallel`];
/// with more, one pool task per shard updates its table slice through its
/// own optimizer shard. Bit-identical to the unsharded scatter for the
/// same reasons as [`scatter_apply_sharded`], and allocation-free.
///
/// # Errors
///
/// [`EmbeddingError::InvalidIndex`] if the shard map does not cover the
/// table or a shard's rows are not strictly ascending;
/// [`EmbeddingError::LengthMismatch`] / [`EmbeddingError::DimMismatch`]
/// if a shard's rows and gradient matrix disagree (width is only checked
/// for non-empty shards); [`EmbeddingError::SrcOutOfBounds`] (with the
/// **global** row id) if a local row falls outside its shard.
pub fn scatter_apply_per_shard<'a>(
    table: &mut EmbeddingTable,
    optimizer: &mut ShardedOptimizer,
    parts: impl Fn(usize) -> (&'a [u32], &'a Matrix),
    exec: Exec<'_>,
) -> Result<(), EmbeddingError> {
    if optimizer.map().rows() != table.rows() {
        return Err(EmbeddingError::InvalidIndex(format!(
            "shard map covers {} rows but the table has {}",
            optimizer.map().rows(),
            table.rows()
        )));
    }
    if optimizer.num_shards() == 1 {
        let (rows, grads) = parts(0);
        return scatter_apply_parallel(table, rows, grads, optimizer.shard_mut(0), exec);
    }
    let dim = table.dim();
    for s in 0..optimizer.num_shards() {
        let (rows_s, grads_s) = parts(s);
        if rows_s.len() != grads_s.rows() {
            return Err(EmbeddingError::LengthMismatch {
                expected: rows_s.len(),
                found: grads_s.rows(),
            });
        }
        if rows_s.is_empty() {
            continue;
        }
        if grads_s.cols() != dim {
            return Err(EmbeddingError::DimMismatch {
                expected: dim,
                found: grads_s.cols(),
            });
        }
        if !rows_s.windows(2).all(|w| w[0] < w[1]) {
            return Err(EmbeddingError::InvalidIndex(
                "scatter_apply_per_shard requires coalesced local rows (strictly ascending)".into(),
            ));
        }
        let base = optimizer.map().shard_base(s);
        let span = optimizer.map().shard_rows(s);
        let last = *rows_s.last().expect("non-empty");
        if last as usize >= span {
            return Err(EmbeddingError::SrcOutOfBounds {
                src: base as u32 + last,
                rows: table.rows(),
            });
        }
    }

    let (map, opts) = optimizer.parts_mut();
    let pool = match exec.pool() {
        Some(pool) if exec.threads() > 1 => pool,
        _ => {
            for (s, opt) in opts.iter_mut().enumerate() {
                let base = map.shard_base(s);
                let (rows_s, grads_s) = parts(s);
                for (k, &local) in rows_s.iter().enumerate() {
                    opt.update_row(local, table.row_mut(base + local as usize), grads_s.row(k));
                }
            }
            return Ok(());
        }
    };

    pool.scope(|scope| {
        let mut table_rest = table.as_mut_slice();
        for (s, opt) in opts.iter_mut().enumerate() {
            let base = map.shard_base(s);
            let end = map.shard_end(s);
            let (slab, tail) = table_rest.split_at_mut((end - base) * dim);
            table_rest = tail;
            let (rows_s, grads_s) = parts(s);
            if rows_s.is_empty() {
                continue;
            }
            scope.spawn(move || {
                for (k, &local) in rows_s.iter().enumerate() {
                    let local = local as usize;
                    opt.update_row(
                        local as u32,
                        &mut slab[local * dim..(local + 1) * dim],
                        grads_s.row(k),
                    );
                }
            });
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::gradient_expand_coalesce;
    use crate::index::IndexArray;
    use crate::optim::{Adagrad, Sgd};

    #[test]
    fn scatter_updates_only_touched_rows() {
        let mut table = EmbeddingTable::zeros(6, 2);
        let c = CoalescedGradients::new(
            vec![1, 4],
            Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]).unwrap(),
        )
        .unwrap();
        scatter_apply(&mut table, &c, &mut Sgd::new(1.0)).unwrap();
        assert_eq!(table.row(1), &[-1.0, -1.0]);
        assert_eq!(table.row(4), &[-2.0, -2.0]);
        for r in [0usize, 2, 3, 5] {
            assert_eq!(table.row(r), &[0.0, 0.0]);
        }
    }

    #[test]
    fn scatter_validates_bounds_and_dims() {
        let mut table = EmbeddingTable::zeros(3, 2);
        let too_wide = CoalescedGradients::new(vec![0], Matrix::zeros(1, 3)).unwrap();
        assert!(scatter_apply(&mut table, &too_wide, &mut Sgd::new(1.0)).is_err());
        let oob = CoalescedGradients::new(vec![3], Matrix::zeros(1, 2)).unwrap();
        assert!(scatter_apply(&mut table, &oob, &mut Sgd::new(1.0)).is_err());
    }

    #[test]
    fn full_backward_matches_manual_sgd() {
        // End-to-end Fig. 2b: expand + coalesce + scatter with SGD equals
        // subtracting lr * (sum of upstream grads whose lookups hit the row).
        let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        let upstream = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let mut table = EmbeddingTable::zeros(6, 1);
        let c = gradient_expand_coalesce(&upstream, &index).unwrap();
        scatter_apply(&mut table, &c, &mut Sgd::new(0.5)).unwrap();
        assert_eq!(table.row(0), &[-1.0]); // G[1]*0.5
        assert_eq!(table.row(1), &[-0.5]); // G[0]*0.5
        assert_eq!(table.row(2), &[-1.5]); // (G[0]+G[1])*0.5
        assert_eq!(table.row(3), &[0.0]);
        assert_eq!(table.row(4), &[-0.5]);
    }

    #[test]
    fn uncoalesced_scatter_diverges_for_stateful_optimizers() {
        // The Section II-B argument: applying duplicate gradients
        // sequentially through Adagrad is NOT the same as coalescing first,
        // because the accumulator update is nonlinear in G.
        let rows_dup = vec![2u32, 2u32];
        let grads_dup = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();

        let mut table_seq = EmbeddingTable::zeros(3, 1);
        scatter_apply_dense(
            &mut table_seq,
            &rows_dup,
            &grads_dup,
            &mut Adagrad::new(0.1, 0.0),
        )
        .unwrap();

        let mut table_coal = EmbeddingTable::zeros(3, 1);
        let c = CoalescedGradients::new(vec![2], Matrix::from_rows(&[&[2.0]]).unwrap()).unwrap();
        scatter_apply(&mut table_coal, &c, &mut Adagrad::new(0.1, 0.0)).unwrap();

        let diff = table_seq.max_abs_diff(&table_coal).unwrap();
        assert!(
            diff > 1e-3,
            "sequential duplicate updates should differ from coalesced (diff={diff})"
        );
    }

    #[test]
    fn uncoalesced_scatter_is_fine_for_plain_sgd() {
        // For linear SGD the two are identical — which is why the paper
        // notes frameworks coalesce anyway, to support *all* optimizers.
        let rows_dup = vec![2u32, 2u32];
        let grads_dup = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let mut a = EmbeddingTable::zeros(3, 1);
        scatter_apply_dense(&mut a, &rows_dup, &grads_dup, &mut Sgd::new(0.1)).unwrap();
        let mut b = EmbeddingTable::zeros(3, 1);
        let c = CoalescedGradients::new(vec![2], Matrix::from_rows(&[&[2.0]]).unwrap()).unwrap();
        scatter_apply(&mut b, &c, &mut Sgd::new(0.1)).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn scatter_dense_validates_lengths() {
        let mut table = EmbeddingTable::zeros(3, 1);
        let grads = Matrix::zeros(2, 1);
        assert!(scatter_apply_dense(&mut table, &[0], &grads, &mut Sgd::new(0.1)).is_err());
    }

    mod parallel {
        use super::*;
        use crate::optim::{Adam, Momentum, RmsProp, SplittableOptimizer};
        use tcast_pool::Pool;
        use tcast_tensor::SplitMix64;

        type OptimizerMaker = Box<dyn Fn() -> Box<dyn SplittableOptimizer>>;

        fn makers() -> Vec<(&'static str, OptimizerMaker)> {
            vec![
                ("sgd", Box::new(|| Box::new(Sgd::new(0.1)) as _)),
                (
                    "momentum",
                    Box::new(|| Box::new(Momentum::new(0.1, 0.9)) as _),
                ),
                (
                    "adagrad",
                    Box::new(|| Box::new(Adagrad::new(0.1, 1e-8)) as _),
                ),
                (
                    "rmsprop",
                    Box::new(|| Box::new(RmsProp::new(0.1, 0.9, 1e-8)) as _),
                ),
                (
                    "adam",
                    Box::new(|| Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8)) as _),
                ),
            ]
        }

        /// Random coalesced workload: unique ascending rows + gradients.
        fn workload(seed: u64, table_rows: u32, count: usize, dim: usize) -> (Vec<u32>, Matrix) {
            let mut rng = SplitMix64::new(seed);
            let mut rows: Vec<u32> = (0..count.min(table_rows as usize))
                .map(|_| rng.next_below(table_rows as u64) as u32)
                .collect();
            rows.sort_unstable();
            rows.dedup();
            let mut grads = Matrix::zeros(rows.len(), dim);
            for v in grads.as_mut_slice() {
                *v = rng.next_range(-1.0, 1.0);
            }
            (rows, grads)
        }

        #[test]
        fn parallel_is_bit_identical_for_every_optimizer_and_band_count() {
            let pool = Pool::new(4);
            for (name, mk) in &makers() {
                for threads in [2usize, 3, 8, 64] {
                    let mut serial_table = EmbeddingTable::seeded(97, 4, 5);
                    let mut pooled_table = serial_table.clone();
                    let mut serial_opt = mk();
                    let mut pooled_opt = mk();
                    // Several scatters so stateful optimizers accumulate:
                    // a state divergence would surface in later steps.
                    for step in 0..4 {
                        let (rows, grads) = workload(100 * step + threads as u64, 97, 60, 4);
                        scatter_apply_dense(&mut serial_table, &rows, &grads, serial_opt.as_mut())
                            .unwrap();
                        scatter_apply_parallel(
                            &mut pooled_table,
                            &rows,
                            &grads,
                            pooled_opt.as_mut(),
                            Exec::Pooled {
                                pool: &pool,
                                threads,
                            },
                        )
                        .unwrap();
                    }
                    assert_eq!(
                        serial_table.as_slice(),
                        pooled_table.as_slice(),
                        "{name} with {threads} bands diverged"
                    );
                }
            }
        }

        #[test]
        fn serial_exec_degrades_to_dense_scatter() {
            let (rows, grads) = workload(9, 50, 30, 3);
            let mut a = EmbeddingTable::seeded(50, 3, 1);
            let mut b = a.clone();
            scatter_apply_dense(&mut a, &rows, &grads, &mut Adagrad::new(0.1, 1e-8)).unwrap();
            scatter_apply_parallel(
                &mut b,
                &rows,
                &grads,
                &mut Adagrad::new(0.1, 1e-8),
                Exec::Serial,
            )
            .unwrap();
            assert_eq!(a.as_slice(), b.as_slice());
        }

        #[test]
        fn empty_and_single_row_scatters() {
            let pool = Pool::new(2);
            let exec = Exec::pooled(&pool);
            let mut table = EmbeddingTable::seeded(10, 2, 3);
            let before = table.clone();
            scatter_apply_parallel(
                &mut table,
                &[],
                &Matrix::zeros(0, 2),
                &mut Sgd::new(0.1),
                exec,
            )
            .unwrap();
            assert_eq!(table.as_slice(), before.as_slice());
            let grads = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
            scatter_apply_parallel(&mut table, &[7], &grads, &mut Sgd::new(1.0), exec).unwrap();
            assert_eq!(table.row(7)[0], before.row(7)[0] - 1.0);
        }

        #[test]
        fn rejects_uncoalesced_rows() {
            let pool = Pool::new(2);
            let mut table = EmbeddingTable::zeros(10, 1);
            let grads = Matrix::zeros(2, 1);
            for rows in [[3u32, 3], [5, 2]] {
                let err = scatter_apply_parallel(
                    &mut table,
                    &rows,
                    &grads,
                    &mut Sgd::new(0.1),
                    Exec::pooled(&pool),
                )
                .unwrap_err();
                assert!(matches!(err, EmbeddingError::InvalidIndex(_)), "{err:?}");
            }
        }

        #[test]
        fn validates_bounds_and_shapes() {
            let pool = Pool::new(2);
            let exec = Exec::pooled(&pool);
            let mut table = EmbeddingTable::zeros(4, 2);
            let mut sgd = Sgd::new(0.1);
            // Row id beyond the table.
            let err =
                scatter_apply_parallel(&mut table, &[4], &Matrix::zeros(1, 2), &mut sgd, exec)
                    .unwrap_err();
            assert!(matches!(err, EmbeddingError::SrcOutOfBounds { .. }));
            // Gradient width mismatch.
            let err =
                scatter_apply_parallel(&mut table, &[0], &Matrix::zeros(1, 3), &mut sgd, exec)
                    .unwrap_err();
            assert!(matches!(err, EmbeddingError::DimMismatch { .. }));
            // Row count mismatch.
            let err =
                scatter_apply_parallel(&mut table, &[0], &Matrix::zeros(2, 2), &mut sgd, exec)
                    .unwrap_err();
            assert!(matches!(err, EmbeddingError::LengthMismatch { .. }));
        }

        mod sharded {
            use super::*;
            use crate::optim::ShardedOptimizer;
            use crate::sharding::ShardMap;

            /// Splits a global ascending coalesced workload into per-shard
            /// local `(rows, grads)` pairs, the shape the casted sharded
            /// path produces.
            fn split_local(
                map: &ShardMap,
                rows: &[u32],
                grads: &Matrix,
            ) -> Vec<(Vec<u32>, Matrix)> {
                let mut out = Vec::new();
                let mut lo = 0usize;
                for s in 0..map.num_shards() {
                    let base = map.shard_base(s) as u32;
                    let end = map.shard_end(s);
                    let hi = lo + rows[lo..].partition_point(|&r| (r as usize) < end);
                    let local: Vec<u32> = rows[lo..hi].iter().map(|&r| r - base).collect();
                    let mut g = Matrix::zeros(hi - lo, grads.cols());
                    for (k, i) in (lo..hi).enumerate() {
                        g.row_mut(k).copy_from_slice(grads.row(i));
                    }
                    out.push((local, g));
                    lo = hi;
                }
                out
            }

            #[test]
            fn sharded_slab_scatter_is_bit_identical() {
                let pool = Pool::new(4);
                for (name, mk) in &makers() {
                    for shards in [1usize, 2, 3, 7] {
                        for pooled in [false, true] {
                            let mut reference = EmbeddingTable::seeded(97, 4, 5);
                            let mut sharded = reference.clone();
                            let mut ref_opt = mk();
                            let mut sh_opt =
                                ShardedOptimizer::new(ShardMap::new(97, shards), || mk());
                            for step in 0..4u64 {
                                let (rows, grads) = workload(31 * step + shards as u64, 97, 60, 4);
                                scatter_apply_dense(
                                    &mut reference,
                                    &rows,
                                    &grads,
                                    ref_opt.as_mut(),
                                )
                                .unwrap();
                                let exec = if pooled {
                                    Exec::pooled(&pool)
                                } else {
                                    Exec::Serial
                                };
                                scatter_apply_sharded(
                                    &mut sharded,
                                    &rows,
                                    &grads,
                                    &mut sh_opt,
                                    exec,
                                )
                                .unwrap();
                            }
                            assert_eq!(
                                reference.as_slice(),
                                sharded.as_slice(),
                                "{name} diverged at {shards} shards (pooled={pooled})"
                            );
                        }
                    }
                }
            }

            #[test]
            fn per_shard_local_scatter_is_bit_identical() {
                let pool = Pool::new(4);
                for (name, mk) in &makers() {
                    for shards in [1usize, 2, 3, 7] {
                        for pooled in [false, true] {
                            let map = ShardMap::new(83, shards);
                            let mut reference = EmbeddingTable::seeded(83, 3, 11);
                            let mut sharded = reference.clone();
                            let mut ref_opt = mk();
                            let mut sh_opt = ShardedOptimizer::new(map.clone(), || mk());
                            for step in 0..4u64 {
                                let (rows, grads) = workload(77 * step + shards as u64, 83, 50, 3);
                                scatter_apply_dense(
                                    &mut reference,
                                    &rows,
                                    &grads,
                                    ref_opt.as_mut(),
                                )
                                .unwrap();
                                let local = split_local(&map, &rows, &grads);
                                let exec = if pooled {
                                    Exec::pooled(&pool)
                                } else {
                                    Exec::Serial
                                };
                                scatter_apply_per_shard(
                                    &mut sharded,
                                    &mut sh_opt,
                                    |s| (local[s].0.as_slice(), &local[s].1),
                                    exec,
                                )
                                .unwrap();
                            }
                            assert_eq!(
                                reference.as_slice(),
                                sharded.as_slice(),
                                "{name} diverged at {shards} shards (pooled={pooled})"
                            );
                        }
                    }
                }
            }

            #[test]
            fn sharded_scatter_validates_map_and_rows() {
                let mut table = EmbeddingTable::zeros(10, 2);
                // Map that does not cover the table.
                let mut wrong =
                    ShardedOptimizer::new(ShardMap::new(8, 2), || Box::new(Sgd::new(0.1)) as _);
                let err = scatter_apply_sharded(
                    &mut table,
                    &[0],
                    &Matrix::zeros(1, 2),
                    &mut wrong,
                    Exec::Serial,
                )
                .unwrap_err();
                assert!(matches!(err, EmbeddingError::InvalidIndex(_)), "{err:?}");

                let mut opt =
                    ShardedOptimizer::new(ShardMap::new(10, 2), || Box::new(Sgd::new(0.1)) as _);
                // Unsorted global rows.
                let err = scatter_apply_sharded(
                    &mut table,
                    &[4, 2],
                    &Matrix::zeros(2, 2),
                    &mut opt,
                    Exec::Serial,
                )
                .unwrap_err();
                assert!(matches!(err, EmbeddingError::InvalidIndex(_)), "{err:?}");
                // Local row beyond its shard (shard 0 spans 5 rows).
                let rows = [vec![5u32], vec![]];
                let grads = [Matrix::zeros(1, 2), Matrix::zeros(0, 2)];
                let err = scatter_apply_per_shard(
                    &mut table,
                    &mut opt,
                    |s| (rows[s].as_slice(), &grads[s]),
                    Exec::Serial,
                )
                .unwrap_err();
                assert!(
                    matches!(err, EmbeddingError::SrcOutOfBounds { .. }),
                    "{err:?}"
                );
            }
        }
    }
}

//! A collection of embedding tables managed as one unit — the
//! `EmbeddingBagCollection`-style API recommendation frameworks expose,
//! and what a DLRM model's sparse half actually is (Table II:
//! 10-40 tables trained together).

use crate::coalesce::{gradient_expand_coalesce, CoalescedGradients};
use crate::error::EmbeddingError;
use crate::gather::gather_reduce;
use crate::index::IndexArray;
use crate::optim::SparseOptimizer;
use crate::scatter::scatter_apply;
use crate::table::EmbeddingTable;
use tcast_tensor::Matrix;

/// A set of embedding tables with a shared dimension, batched forward /
/// backward, and per-table optimizer state.
///
/// ```
/// use tcast_embedding::{EmbeddingBagCollection, IndexArray, optim::Sgd};
/// use tcast_tensor::Matrix;
///
/// # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
/// let mut bags = EmbeddingBagCollection::seeded(&[100, 50], 8, 42)?;
/// let indices = vec![
///     IndexArray::from_samples(&[vec![3, 7], vec![1]])?,
///     IndexArray::from_samples(&[vec![0], vec![49]])?,
/// ];
/// let pooled = bags.forward(&indices)?;          // one matrix per table
/// assert_eq!(pooled.len(), 2);
/// let grads = vec![Matrix::filled(2, 8, 0.1), Matrix::filled(2, 8, 0.2)];
/// bags.backward_apply(&indices, &grads, &mut Sgd::new(0.01))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingBagCollection {
    tables: Vec<EmbeddingTable>,
    dim: usize,
}

impl EmbeddingBagCollection {
    /// Creates a collection with seeded tables of the given row counts,
    /// all `dim` wide.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidIndex`] when `rows` is empty.
    pub fn seeded(rows: &[usize], dim: usize, seed: u64) -> Result<Self, EmbeddingError> {
        if rows.is_empty() {
            return Err(EmbeddingError::InvalidIndex(
                "a collection needs at least one table".to_string(),
            ));
        }
        let tables = rows
            .iter()
            .enumerate()
            .map(|(i, &r)| EmbeddingTable::seeded(r, dim, seed.wrapping_add(i as u64 * 31)))
            .collect();
        Ok(Self { tables, dim })
    }

    /// Builds a collection from existing tables.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::DimMismatch`] unless every table shares
    /// one dimension, or [`EmbeddingError::InvalidIndex`] when empty.
    pub fn from_tables(tables: Vec<EmbeddingTable>) -> Result<Self, EmbeddingError> {
        let Some(first) = tables.first() else {
            return Err(EmbeddingError::InvalidIndex(
                "a collection needs at least one table".to_string(),
            ));
        };
        let dim = first.dim();
        if let Some(bad) = tables.iter().find(|t| t.dim() != dim) {
            return Err(EmbeddingError::DimMismatch {
                expected: dim,
                found: bad.dim(),
            });
        }
        Ok(Self { tables, dim })
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the collection is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Shared embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable access to table `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn table(&self, i: usize) -> &EmbeddingTable {
        &self.tables[i]
    }

    /// Mutable access to table `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn table_mut(&mut self, i: usize) -> &mut EmbeddingTable {
        &mut self.tables[i]
    }

    /// Iterator over the tables.
    pub fn iter(&self) -> impl Iterator<Item = &EmbeddingTable> {
        self.tables.iter()
    }

    /// Total memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tables.iter().map(EmbeddingTable::size_bytes).sum()
    }

    /// Batched forward: fused gather-reduce on every table.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] when the index count
    /// differs from the table count, and propagates per-table errors.
    pub fn forward(&self, indices: &[IndexArray]) -> Result<Vec<Matrix>, EmbeddingError> {
        self.check_indices(indices)?;
        self.tables
            .iter()
            .zip(indices)
            .map(|(t, idx)| gather_reduce(t, idx))
            .collect()
    }

    /// Batched baseline backward: expand-coalesce each table's gradients
    /// (Algorithm 1), returning the coalesced sets without applying them.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] on count mismatches and
    /// propagates per-table errors.
    pub fn backward(
        &self,
        indices: &[IndexArray],
        grads: &[Matrix],
    ) -> Result<Vec<CoalescedGradients>, EmbeddingError> {
        self.check_indices(indices)?;
        if grads.len() != self.tables.len() {
            return Err(EmbeddingError::LengthMismatch {
                expected: self.tables.len(),
                found: grads.len(),
            });
        }
        indices
            .iter()
            .zip(grads)
            .map(|(idx, g)| gradient_expand_coalesce(g, idx))
            .collect()
    }

    /// Batched backward + scatter: coalesces and immediately applies
    /// every table's update through the shared optimizer.
    ///
    /// # Errors
    ///
    /// As [`EmbeddingBagCollection::backward`], plus scatter errors.
    pub fn backward_apply(
        &mut self,
        indices: &[IndexArray],
        grads: &[Matrix],
        optimizer: &mut dyn SparseOptimizer,
    ) -> Result<(), EmbeddingError> {
        let coalesced = self.backward(indices, grads)?;
        for (table, c) in self.tables.iter_mut().zip(coalesced.iter()) {
            scatter_apply(table, c, optimizer)?;
        }
        Ok(())
    }

    fn check_indices(&self, indices: &[IndexArray]) -> Result<(), EmbeddingError> {
        if indices.len() != self.tables.len() {
            return Err(EmbeddingError::LengthMismatch {
                expected: self.tables.len(),
                found: indices.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    fn indices() -> Vec<IndexArray> {
        vec![
            IndexArray::from_samples(&[vec![1, 2], vec![0]]).unwrap(),
            IndexArray::from_samples(&[vec![3], vec![3, 4]]).unwrap(),
        ]
    }

    #[test]
    fn seeded_construction() {
        let bags = EmbeddingBagCollection::seeded(&[10, 20, 30], 4, 1).unwrap();
        assert_eq!(bags.len(), 3);
        assert_eq!(bags.dim(), 4);
        assert_eq!(bags.table(2).rows(), 30);
        assert_eq!(bags.size_bytes(), (10 + 20 + 30) * 4 * 4);
        assert!(!bags.is_empty());
    }

    #[test]
    fn empty_collections_rejected() {
        assert!(EmbeddingBagCollection::seeded(&[], 4, 1).is_err());
        assert!(EmbeddingBagCollection::from_tables(vec![]).is_err());
    }

    #[test]
    fn from_tables_requires_shared_dim() {
        let t1 = EmbeddingTable::zeros(4, 8);
        let t2 = EmbeddingTable::zeros(4, 16);
        assert!(EmbeddingBagCollection::from_tables(vec![t1, t2]).is_err());
    }

    #[test]
    fn forward_matches_per_table_kernels() {
        let bags = EmbeddingBagCollection::seeded(&[10, 10], 4, 3).unwrap();
        let idx = indices();
        let pooled = bags.forward(&idx).unwrap();
        for (i, p) in pooled.iter().enumerate() {
            let reference = gather_reduce(bags.table(i), &idx[i]).unwrap();
            assert_eq!(p.max_abs_diff(&reference).unwrap(), 0.0);
        }
    }

    #[test]
    fn forward_validates_index_count() {
        let bags = EmbeddingBagCollection::seeded(&[10, 10], 4, 3).unwrap();
        assert!(bags.forward(&indices()[..1]).is_err());
    }

    #[test]
    fn backward_apply_updates_every_table() {
        let mut bags = EmbeddingBagCollection::seeded(&[10, 10], 4, 5).unwrap();
        let before: Vec<EmbeddingTable> = bags.iter().cloned().collect();
        let idx = indices();
        let grads = vec![Matrix::filled(2, 4, 1.0), Matrix::filled(2, 4, 1.0)];
        bags.backward_apply(&idx, &grads, &mut Sgd::new(0.5))
            .unwrap();
        for (i, b) in before.iter().enumerate() {
            assert!(
                bags.table(i).max_abs_diff(b).unwrap() > 0.0,
                "table {i} unchanged"
            );
        }
    }

    #[test]
    fn backward_validates_gradient_count() {
        let bags = EmbeddingBagCollection::seeded(&[10, 10], 4, 5).unwrap();
        let grads = vec![Matrix::zeros(2, 4)];
        assert!(bags.backward(&indices(), &grads).is_err());
    }
}

//! Sparse optimizers for embedding rows.
//!
//! Section II-B of the paper explains *why* gradient coalescing exists at
//! all: optimizers like RMSprop (Eq. 1) and Adagrad (Eq. 2) need the
//! (potentially multiple) gradients of a parameter accumulated into a
//! single value `G_i` before the update, because their state update is a
//! nonlinear function of `G_i`. These implementations keep per-row state
//! lazily, touching only rows that actually receive gradients — the sparse
//! update pattern of embedding training.

use std::collections::HashMap;

/// A sparse, row-granular optimizer.
///
/// `update_row` applies one training-step update for a single embedding
/// row given its *coalesced* gradient. Implementations may keep per-row
/// state (momentum/second-moment accumulators) keyed by row id.
pub trait SparseOptimizer {
    /// Applies the update `param <- f(param, grad)` for table row `row`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `param.len() != grad.len()`.
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]);

    /// Human-readable optimizer name (for logs and experiment output).
    fn name(&self) -> &'static str;

    /// Bytes of optimizer state read+written per updated element, used by
    /// the analytic traffic model (0 for plain SGD, 8 for one f32
    /// accumulator read+write, ...).
    fn state_bytes_per_element(&self) -> usize {
        0
    }
}

/// Plain stochastic gradient descent: `W <- W - lr * G`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }
}

impl SparseOptimizer for Sgd {
    fn update_row(&mut self, _row: u32, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
        for (p, &g) in param.iter_mut().zip(grad.iter()) {
            *p -= self.lr * g;
        }
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// SGD with (heavy-ball) momentum: `V <- mu*V + G; W <- W - lr*V`.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f32,
    mu: f32,
    velocity: HashMap<u32, Vec<f32>>,
}

impl Momentum {
    /// Creates momentum SGD with learning rate `lr` and momentum `mu`.
    pub fn new(lr: f32, mu: f32) -> Self {
        Self {
            lr,
            mu,
            velocity: HashMap::new(),
        }
    }

    /// Number of rows with live momentum state.
    pub fn tracked_rows(&self) -> usize {
        self.velocity.len()
    }
}

impl SparseOptimizer for Momentum {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
        let v = self
            .velocity
            .entry(row)
            .or_insert_with(|| vec![0.0; param.len()]);
        for ((p, &g), vi) in param.iter_mut().zip(grad.iter()).zip(v.iter_mut()) {
            *vi = self.mu * *vi + g;
            *p -= self.lr * *vi;
        }
    }

    fn name(&self) -> &'static str {
        "momentum"
    }

    fn state_bytes_per_element(&self) -> usize {
        8 // one f32 velocity read + write
    }
}

/// Adagrad (the paper's Eq. 2): `A <- A + G^2; W <- W - lr * G / sqrt(eps + A)`.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: HashMap<u32, Vec<f32>>,
}

impl Adagrad {
    /// Creates Adagrad with learning rate `lr` and stabilizer `eps`.
    pub fn new(lr: f32, eps: f32) -> Self {
        Self {
            lr,
            eps,
            accum: HashMap::new(),
        }
    }

    /// Number of rows with live accumulator state.
    pub fn tracked_rows(&self) -> usize {
        self.accum.len()
    }
}

impl SparseOptimizer for Adagrad {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
        let a = self
            .accum
            .entry(row)
            .or_insert_with(|| vec![0.0; param.len()]);
        for ((p, &g), ai) in param.iter_mut().zip(grad.iter()).zip(a.iter_mut()) {
            *ai += g * g;
            *p -= self.lr * g / (self.eps + *ai).sqrt();
        }
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }

    fn state_bytes_per_element(&self) -> usize {
        8
    }
}

/// RMSprop (the paper's Eq. 1):
/// `A <- gamma*A + (1-gamma)*G^2; W <- W - lr * G / sqrt(eps + A)`.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    gamma: f32,
    eps: f32,
    accum: HashMap<u32, Vec<f32>>,
}

impl RmsProp {
    /// Creates RMSprop with learning rate `lr`, decay `gamma` and
    /// stabilizer `eps`.
    pub fn new(lr: f32, gamma: f32, eps: f32) -> Self {
        Self {
            lr,
            gamma,
            eps,
            accum: HashMap::new(),
        }
    }

    /// Number of rows with live accumulator state.
    pub fn tracked_rows(&self) -> usize {
        self.accum.len()
    }
}

impl SparseOptimizer for RmsProp {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
        let a = self
            .accum
            .entry(row)
            .or_insert_with(|| vec![0.0; param.len()]);
        for ((p, &g), ai) in param.iter_mut().zip(grad.iter()).zip(a.iter_mut()) {
            *ai = self.gamma * *ai + (1.0 - self.gamma) * g * g;
            *p -= self.lr * g / (self.eps + *ai).sqrt();
        }
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }

    fn state_bytes_per_element(&self) -> usize {
        8
    }
}

/// Adam with sparse (lazy) per-row moments: `M <- b1*M + (1-b1)*G;
/// V <- b2*V + (1-b2)*G^2; W <- W - lr * Mhat / (sqrt(Vhat) + eps)` with
/// per-row bias-correction step counts (rows update at different rates
/// in sparse training, so a global step count would over-correct cold
/// rows).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    state: HashMap<u32, (Vec<f32>, Vec<f32>, u32)>,
}

impl Adam {
    /// Creates Adam with the given hyperparameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            state: HashMap::new(),
        }
    }

    /// Number of rows with live moment state.
    pub fn tracked_rows(&self) -> usize {
        self.state.len()
    }
}

impl SparseOptimizer for Adam {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
        let (m, v, t) = self
            .state
            .entry(row)
            .or_insert_with(|| (vec![0.0; param.len()], vec![0.0; param.len()], 0));
        *t += 1;
        let bc1 = 1.0 - self.beta1.powi(*t as i32);
        let bc2 = 1.0 - self.beta2.powi(*t as i32);
        for (((p, &g), mi), vi) in param
            .iter_mut()
            .zip(grad.iter())
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn state_bytes_per_element(&self) -> usize {
        16 // two f32 moments, read + write each
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0, -1.0];
        opt.update_row(0, &mut p, &[1.0, -1.0]);
        assert_eq!(p, vec![0.9, -0.9]);
        assert_eq!(opt.name(), "sgd");
        assert_eq!(opt.state_bytes_per_element(), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn sgd_rejects_width_mismatch() {
        Sgd::new(0.1).update_row(0, &mut [0.0], &[1.0, 2.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(1.0, 0.5);
        let mut p = vec![0.0];
        opt.update_row(0, &mut p, &[1.0]); // v=1, p=-1
        opt.update_row(0, &mut p, &[1.0]); // v=1.5, p=-2.5
        assert!((p[0] + 2.5).abs() < 1e-6);
        assert_eq!(opt.tracked_rows(), 1);
    }

    #[test]
    fn momentum_state_is_per_row() {
        let mut opt = Momentum::new(1.0, 0.9);
        let mut p0 = vec![0.0];
        let mut p1 = vec![0.0];
        opt.update_row(0, &mut p0, &[1.0]);
        opt.update_row(1, &mut p1, &[1.0]);
        assert_eq!(opt.tracked_rows(), 2);
        assert_eq!(p0, p1); // fresh state each: same result
    }

    #[test]
    fn adagrad_matches_eq2_by_hand() {
        // A1 = 0 + G^2 = 4; W1 = 1 - lr*G/sqrt(eps+A1) = 1 - 0.1*2/2.
        let mut opt = Adagrad::new(0.1, 0.0);
        let mut p = vec![1.0];
        opt.update_row(3, &mut p, &[2.0]);
        assert!((p[0] - 0.9).abs() < 1e-6);
        // Second step: A2 = 4 + 1 = 5; W2 = 0.9 - 0.1*1/sqrt(5).
        opt.update_row(3, &mut p, &[1.0]);
        assert!((p[0] - (0.9 - 0.1 / 5.0f32.sqrt())).abs() < 1e-6);
    }

    #[test]
    fn adagrad_shrinks_effective_lr_over_time() {
        let mut opt = Adagrad::new(0.1, 1e-8);
        let mut p = vec![0.0];
        let mut deltas = Vec::new();
        for _ in 0..5 {
            let before = p[0];
            opt.update_row(0, &mut p, &[1.0]);
            deltas.push((before - p[0]).abs());
        }
        for w in deltas.windows(2) {
            assert!(w[1] < w[0], "step sizes must be decreasing: {deltas:?}");
        }
    }

    #[test]
    fn rmsprop_matches_eq1_by_hand() {
        // gamma=0.5: A1 = 0.5*0 + 0.5*G^2 = 2; W1 = -lr*G/sqrt(A1).
        let mut opt = RmsProp::new(0.1, 0.5, 0.0);
        let mut p = vec![0.0];
        opt.update_row(0, &mut p, &[2.0]);
        assert!((p[0] + 0.1 * 2.0 / 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn stateful_optimizers_report_state_traffic() {
        assert_eq!(Momentum::new(0.1, 0.9).state_bytes_per_element(), 8);
        assert_eq!(Adagrad::new(0.1, 1e-8).state_bytes_per_element(), 8);
        assert_eq!(RmsProp::new(0.1, 0.9, 1e-8).state_bytes_per_element(), 8);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first step is ~lr regardless of the
        // gradient magnitude (for eps -> 0).
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-12);
        for g in [0.1f32, 10.0] {
            let mut p = vec![0.0];
            opt.state.clear();
            opt.update_row(0, &mut p, &[g]);
            assert!((p[0] + 0.01).abs() < 1e-4, "g={g}: step {}", p[0]);
        }
    }

    #[test]
    fn adam_bias_correction_is_per_row() {
        // A cold row's first update must not be shrunk by other rows'
        // step counts.
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-12);
        let mut hot = vec![0.0];
        for _ in 0..10 {
            opt.update_row(0, &mut hot, &[1.0]);
        }
        let mut cold = vec![0.0];
        opt.update_row(1, &mut cold, &[1.0]);
        assert!((cold[0] + 0.01).abs() < 1e-4, "cold first step {}", cold[0]);
        assert_eq!(opt.tracked_rows(), 2);
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut opts: Vec<Box<dyn SparseOptimizer>> = vec![
            Box::new(Sgd::new(0.1)),
            Box::new(Momentum::new(0.1, 0.9)),
            Box::new(Adagrad::new(0.1, 1e-8)),
            Box::new(RmsProp::new(0.1, 0.9, 1e-8)),
            Box::new(Adam::new(0.1, 0.9, 0.999, 1e-8)),
        ];
        let mut p = vec![1.0, 1.0];
        for opt in opts.iter_mut() {
            opt.update_row(0, &mut p, &[0.5, 0.5]);
        }
        assert!(p[0] < 1.0);
    }
}

//! Sparse optimizers for embedding rows.
//!
//! Section II-B of the paper explains *why* gradient coalescing exists at
//! all: optimizers like RMSprop (Eq. 1) and Adagrad (Eq. 2) need the
//! (potentially multiple) gradients of a parameter accumulated into a
//! single value `G_i` before the update, because their state update is a
//! nonlinear function of `G_i`. These implementations keep per-row state
//! touching only rows that actually receive gradients — the sparse
//! update pattern of embedding training.
//!
//! # Splittable state
//!
//! Coalescing has a second payoff the paper's Section IV-C datapath
//! argument relies on: after coalescing, every table row appears **at most
//! once** per scatter, so the optimizer update of disjoint row ranges is
//! embarrassingly parallel — *if* the state store can hand out disjoint
//! mutable views. A `HashMap<u32, Vec<f32>>` cannot (concurrent inserts
//! rehash), so state lives in a dense, lazily-grown [`RowState`] band
//! store instead: one contiguous `width`-strided slab, splittable at
//! arbitrary row boundaries with `split_at_mut`. [`SplittableOptimizer`]
//! exposes that split, and `scatter_apply_parallel` consumes it.
//!
//! [`ShardedOptimizer`] goes one step further — from bands *within* one
//! slab to state you can *place*: one optimizer instance (and thus one
//! [`RowState`] slab) per row-range shard of a [`ShardMap`], with a
//! canonical global-keyed checkpoint blob so shard counts can change
//! between save and restore.

use crate::sharding::ShardMap;

/// A sparse, row-granular optimizer.
///
/// `update_row` applies one training-step update for a single embedding
/// row given its *coalesced* gradient. Implementations may keep per-row
/// state (momentum/second-moment accumulators) keyed by row id.
pub trait SparseOptimizer {
    /// Applies the update `param <- f(param, grad)` for table row `row`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `param.len() != grad.len()`.
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]);

    /// Human-readable optimizer name (for logs and experiment output).
    fn name(&self) -> &'static str;

    /// Bytes of optimizer state read+written per updated element, used by
    /// the analytic traffic model (0 for plain SGD, 8 for one f32
    /// accumulator read+write, ...).
    fn state_bytes_per_element(&self) -> usize {
        0
    }
}

/// A row-disjoint mutable shard of a splittable optimizer's state — one
/// band of the parallel scatter.
///
/// A shard updates rows exactly as the owning optimizer's
/// [`SparseOptimizer::update_row`] would (same operations, same order per
/// row), which is what makes the band-parallel scatter bit-identical to
/// the serial one. Callers must only pass rows inside the band the shard
/// was split for.
pub trait StateShard: Send {
    /// Applies the update for `row`; `row` must lie in this shard's band.
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]);
}

/// A [`SparseOptimizer`] whose per-row state splits at row-range
/// boundaries into independently-updatable shards.
///
/// Gradient coalescing guarantees each table row appears at most once per
/// scatter, so shards over disjoint row ranges never alias state — each
/// band of `scatter_apply_parallel` updates its table slice and its state
/// shard with no synchronization.
pub trait SplittableOptimizer: SparseOptimizer + Send {
    /// Splits the optimizer state at the row `fence` (ascending,
    /// `fence.len() >= 2`): shard `i` owns rows `[fence[i], fence[i+1])`.
    ///
    /// `dim` is the embedding width of the rows about to be updated;
    /// state is pre-grown to cover `fence.last()` rows here, on the
    /// calling thread, so shard updates never grow (and never allocate).
    ///
    /// # Panics
    ///
    /// Panics if the fence is not ascending, has fewer than two entries,
    /// or `dim` conflicts with the width of already-live state.
    fn split_by_rows<'s>(&'s mut self, fence: &[u32], dim: usize) -> Vec<Box<dyn StateShard + 's>>;

    /// Appends the optimizer's *mutable* per-row state (slabs, step
    /// counts — not hyperparameters) to `out`, for checkpointing. The
    /// full slab is captured, including allocated-but-untouched rows, so
    /// a restore reproduces the exact allocation state and subsequent
    /// growth behaves identically to the uninterrupted run.
    fn save_state(&self, out: &mut Vec<u8>);

    /// Restores state written by [`SplittableOptimizer::save_state`] into
    /// this optimizer (which must have been built with the same
    /// hyperparameters).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency if `bytes` is
    /// truncated, malformed, or has trailing garbage; the optimizer's
    /// state is unspecified after an error.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String>;

    /// The optimizer's dense per-row state planes, in the exact order
    /// [`SplittableOptimizer::save_state`] serializes them, plus the
    /// per-row step counts (Adam) if any. This is what makes state
    /// *placeable*: [`ShardedOptimizer`] merges the planes of row-range
    /// shards into one global-keyed blob (and re-splits on load), so a
    /// checkpoint written at N shards restores at M. Stateless
    /// optimizers return the default empty planes.
    fn state_planes(&self) -> (Vec<&RowState>, Option<&[u32]>) {
        (Vec::new(), None)
    }

    /// Mutable form of [`SplittableOptimizer::state_planes`], used when
    /// re-splitting a global state blob into per-shard slabs.
    fn state_planes_mut(&mut self) -> (Vec<&mut RowState>, Option<&mut Vec<u32>>) {
        (Vec::new(), None)
    }
}

/// Little-endian cursor over checkpoint bytes; every read is
/// bounds-checked so truncated state surfaces as an `Err`, never a panic.
struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                format!(
                    "optimizer state truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.bytes.len() - self.pos
                )
            })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!(
                "optimizer state has {} trailing bytes",
                self.bytes.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl RowState {
    /// Appends `width`, row count, the full slab and the touched bitmap.
    fn save_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.width as u64);
        put_u64(out, self.rows() as u64);
        for &v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend(self.touched.iter().map(|&t| t as u8));
    }

    /// Reads back what [`RowState::save_into`] wrote.
    fn load_from(&mut self, r: &mut StateReader<'_>) -> Result<(), String> {
        let width = r.u64()? as usize;
        let rows = r.u64()? as usize;
        let elems = rows
            .checked_mul(width)
            .and_then(|e| e.checked_mul(4).map(|_| e))
            .ok_or_else(|| "optimizer state slab size overflows".to_string())?;
        let raw = r.take(elems * 4)?;
        let mut data = Vec::with_capacity(elems);
        for c in raw.chunks_exact(4) {
            data.push(f32::from_le_bytes(c.try_into().expect("4 bytes")));
        }
        let flags = r.take(rows)?;
        if let Some(&bad) = flags.iter().find(|&&b| b > 1) {
            return Err(format!("optimizer touched flag has invalid value {bad}"));
        }
        self.width = width;
        self.data = data;
        self.touched = flags.iter().map(|&b| b == 1).collect();
        Ok(())
    }
}

/// Asserts the [`SplittableOptimizer::split_by_rows`] fence contract:
/// at least two entries, ascending.
fn validate_fence(fence: &[u32]) {
    assert!(fence.len() >= 2, "state fence needs >= 2 entries");
    assert!(
        fence.windows(2).all(|w| w[0] <= w[1]),
        "state fence must be ascending"
    );
}

/// Dense, lazily-grown per-row optimizer state: `width` `f32` slots per
/// row in one contiguous slab, plus a touched bitmap for reporting.
///
/// Growth is geometric, so serial lazy growth (a new hottest row) is
/// amortized O(1) and stops entirely once the live row set is covered —
/// preserving the workspace's zero-allocation steady state. Unlike the
/// `HashMap` store it replaces, the slab splits into disjoint row bands
/// (`split_at_mut`) for the parallel scatter.
#[derive(Debug, Clone, Default)]
pub struct RowState {
    width: usize,
    data: Vec<f32>,
    touched: Vec<bool>,
}

/// One row band of a [`RowState`], produced by [`RowState::split`].
#[derive(Debug)]
struct RowStateBand<'a> {
    base: u32,
    width: usize,
    data: &'a mut [f32],
    touched: &'a mut [bool],
}

impl RowState {
    fn set_width(&mut self, width: usize) {
        if self.width == 0 {
            self.width = width;
        }
        assert_eq!(self.width, width, "optimizer state width changed");
    }

    /// Rows currently backed by the slab.
    fn rows(&self) -> usize {
        self.touched.len()
    }

    /// Grows (geometrically) so `row` is addressable without allocation
    /// on subsequent touches.
    fn grow_for(&mut self, row: u32) {
        let needed = row as usize + 1;
        if needed > self.rows() {
            let target = needed.max(self.rows() * 2);
            self.data.resize(target * self.width, 0.0);
            self.touched.resize(target, false);
        }
    }

    /// Grows to exactly cover `rows` rows (no geometric overshoot — used
    /// by the parallel split, where the table size is known).
    fn grow_exact(&mut self, rows: usize) {
        if rows > self.rows() {
            self.data.resize(rows * self.width, 0.0);
            self.touched.resize(rows, false);
        }
    }

    /// Mutable state of `row` (zeros on first touch), marking it live.
    fn row_mut(&mut self, row: u32) -> &mut [f32] {
        self.grow_for(row);
        self.touched[row as usize] = true;
        let w = self.width;
        &mut self.data[row as usize * w..(row as usize + 1) * w]
    }

    /// Number of rows that ever received an update.
    fn tracked_rows(&self) -> usize {
        self.touched.iter().filter(|&&t| t).count()
    }

    /// Splits the slab at `fence` into one band per window; band `i`
    /// covers rows `[fence[i], fence[i+1])`. State below `fence[0]` and
    /// above `fence.last()` is not handed out.
    fn split<'s>(&'s mut self, fence: &[u32], width: usize) -> Vec<RowStateBand<'s>> {
        validate_fence(fence);
        self.set_width(width);
        self.grow_exact(*fence.last().expect("non-empty fence") as usize);
        let w = self.width;
        let skip = fence[0] as usize;
        let mut data = &mut self.data[skip * w..];
        let mut touched = &mut self.touched[skip..];
        let mut bands = Vec::with_capacity(fence.len() - 1);
        for pair in fence.windows(2) {
            let rows = (pair[1] - pair[0]) as usize;
            let (band_data, rest_data) = data.split_at_mut(rows * w);
            let (band_touched, rest_touched) = touched.split_at_mut(rows);
            data = rest_data;
            touched = rest_touched;
            bands.push(RowStateBand {
                base: pair[0],
                width: w,
                data: band_data,
                touched: band_touched,
            });
        }
        bands
    }
}

impl RowStateBand<'_> {
    /// Mutable state of `row` (which must lie in this band), marking it
    /// live.
    fn row_mut(&mut self, row: u32) -> &mut [f32] {
        let local = (row - self.base) as usize;
        self.touched[local] = true;
        &mut self.data[local * self.width..(local + 1) * self.width]
    }
}

/// Plain stochastic gradient descent: `W <- W - lr * G`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }
}

fn sgd_step(lr: f32, param: &mut [f32], grad: &[f32]) {
    assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
    crate::simd::sgd_row(crate::simd::dispatch(), lr, param, grad);
}

impl SparseOptimizer for Sgd {
    fn update_row(&mut self, _row: u32, param: &mut [f32], grad: &[f32]) {
        sgd_step(self.lr, param, grad);
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

struct SgdShard {
    lr: f32,
}

impl StateShard for SgdShard {
    fn update_row(&mut self, _row: u32, param: &mut [f32], grad: &[f32]) {
        sgd_step(self.lr, param, grad);
    }
}

impl SplittableOptimizer for Sgd {
    fn split_by_rows<'s>(
        &'s mut self,
        fence: &[u32],
        _dim: usize,
    ) -> Vec<Box<dyn StateShard + 's>> {
        // Stateless, but the fence contract is validated like every other
        // optimizer so callers get consistent panics.
        validate_fence(fence);
        let lr = self.lr;
        (0..fence.len() - 1)
            .map(|_| Box::new(SgdShard { lr }) as Box<dyn StateShard>)
            .collect()
    }

    fn save_state(&self, _out: &mut Vec<u8>) {
        // SGD is stateless; an empty payload round-trips.
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        StateReader::new(bytes).finish()
    }
}

/// SGD with (heavy-ball) momentum: `V <- mu*V + G; W <- W - lr*V`.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f32,
    mu: f32,
    velocity: RowState,
}

impl Momentum {
    /// Creates momentum SGD with learning rate `lr` and momentum `mu`.
    pub fn new(lr: f32, mu: f32) -> Self {
        Self {
            lr,
            mu,
            velocity: RowState::default(),
        }
    }

    /// Number of rows with live momentum state.
    pub fn tracked_rows(&self) -> usize {
        self.velocity.tracked_rows()
    }
}

fn momentum_step(lr: f32, mu: f32, v: &mut [f32], param: &mut [f32], grad: &[f32]) {
    assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
    crate::simd::momentum_row(crate::simd::dispatch(), lr, mu, v, param, grad);
}

impl SparseOptimizer for Momentum {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        self.velocity.set_width(param.len());
        momentum_step(self.lr, self.mu, self.velocity.row_mut(row), param, grad);
    }

    fn name(&self) -> &'static str {
        "momentum"
    }

    fn state_bytes_per_element(&self) -> usize {
        8 // one f32 velocity read + write
    }
}

struct MomentumShard<'a> {
    lr: f32,
    mu: f32,
    velocity: RowStateBand<'a>,
}

impl StateShard for MomentumShard<'_> {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        momentum_step(self.lr, self.mu, self.velocity.row_mut(row), param, grad);
    }
}

impl SplittableOptimizer for Momentum {
    fn split_by_rows<'s>(&'s mut self, fence: &[u32], dim: usize) -> Vec<Box<dyn StateShard + 's>> {
        let (lr, mu) = (self.lr, self.mu);
        self.velocity
            .split(fence, dim)
            .into_iter()
            .map(|velocity| Box::new(MomentumShard { lr, mu, velocity }) as Box<dyn StateShard>)
            .collect()
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.velocity.save_into(out);
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        self.velocity.load_from(&mut r)?;
        r.finish()
    }

    fn state_planes(&self) -> (Vec<&RowState>, Option<&[u32]>) {
        (vec![&self.velocity], None)
    }

    fn state_planes_mut(&mut self) -> (Vec<&mut RowState>, Option<&mut Vec<u32>>) {
        (vec![&mut self.velocity], None)
    }
}

/// Adagrad (the paper's Eq. 2): `A <- A + G^2; W <- W - lr * G / sqrt(eps + A)`.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: RowState,
}

impl Adagrad {
    /// Creates Adagrad with learning rate `lr` and stabilizer `eps`.
    pub fn new(lr: f32, eps: f32) -> Self {
        Self {
            lr,
            eps,
            accum: RowState::default(),
        }
    }

    /// Number of rows with live accumulator state.
    pub fn tracked_rows(&self) -> usize {
        self.accum.tracked_rows()
    }
}

fn adagrad_step(lr: f32, eps: f32, a: &mut [f32], param: &mut [f32], grad: &[f32]) {
    assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
    crate::simd::adagrad_row(crate::simd::dispatch(), lr, eps, a, param, grad);
}

impl SparseOptimizer for Adagrad {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        self.accum.set_width(param.len());
        adagrad_step(self.lr, self.eps, self.accum.row_mut(row), param, grad);
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }

    fn state_bytes_per_element(&self) -> usize {
        8
    }
}

struct AdagradShard<'a> {
    lr: f32,
    eps: f32,
    accum: RowStateBand<'a>,
}

impl StateShard for AdagradShard<'_> {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        adagrad_step(self.lr, self.eps, self.accum.row_mut(row), param, grad);
    }
}

impl SplittableOptimizer for Adagrad {
    fn split_by_rows<'s>(&'s mut self, fence: &[u32], dim: usize) -> Vec<Box<dyn StateShard + 's>> {
        let (lr, eps) = (self.lr, self.eps);
        self.accum
            .split(fence, dim)
            .into_iter()
            .map(|accum| Box::new(AdagradShard { lr, eps, accum }) as Box<dyn StateShard>)
            .collect()
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.accum.save_into(out);
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        self.accum.load_from(&mut r)?;
        r.finish()
    }

    fn state_planes(&self) -> (Vec<&RowState>, Option<&[u32]>) {
        (vec![&self.accum], None)
    }

    fn state_planes_mut(&mut self) -> (Vec<&mut RowState>, Option<&mut Vec<u32>>) {
        (vec![&mut self.accum], None)
    }
}

/// RMSprop (the paper's Eq. 1):
/// `A <- gamma*A + (1-gamma)*G^2; W <- W - lr * G / sqrt(eps + A)`.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    gamma: f32,
    eps: f32,
    accum: RowState,
}

impl RmsProp {
    /// Creates RMSprop with learning rate `lr`, decay `gamma` and
    /// stabilizer `eps`.
    pub fn new(lr: f32, gamma: f32, eps: f32) -> Self {
        Self {
            lr,
            gamma,
            eps,
            accum: RowState::default(),
        }
    }

    /// Number of rows with live accumulator state.
    pub fn tracked_rows(&self) -> usize {
        self.accum.tracked_rows()
    }
}

fn rmsprop_step(lr: f32, gamma: f32, eps: f32, a: &mut [f32], param: &mut [f32], grad: &[f32]) {
    assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
    crate::simd::rmsprop_row(crate::simd::dispatch(), lr, gamma, eps, a, param, grad);
}

impl SparseOptimizer for RmsProp {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        self.accum.set_width(param.len());
        rmsprop_step(
            self.lr,
            self.gamma,
            self.eps,
            self.accum.row_mut(row),
            param,
            grad,
        );
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }

    fn state_bytes_per_element(&self) -> usize {
        8
    }
}

struct RmsPropShard<'a> {
    lr: f32,
    gamma: f32,
    eps: f32,
    accum: RowStateBand<'a>,
}

impl StateShard for RmsPropShard<'_> {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        rmsprop_step(
            self.lr,
            self.gamma,
            self.eps,
            self.accum.row_mut(row),
            param,
            grad,
        );
    }
}

impl SplittableOptimizer for RmsProp {
    fn split_by_rows<'s>(&'s mut self, fence: &[u32], dim: usize) -> Vec<Box<dyn StateShard + 's>> {
        let (lr, gamma, eps) = (self.lr, self.gamma, self.eps);
        self.accum
            .split(fence, dim)
            .into_iter()
            .map(|accum| {
                Box::new(RmsPropShard {
                    lr,
                    gamma,
                    eps,
                    accum,
                }) as Box<dyn StateShard>
            })
            .collect()
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.accum.save_into(out);
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        self.accum.load_from(&mut r)?;
        r.finish()
    }

    fn state_planes(&self) -> (Vec<&RowState>, Option<&[u32]>) {
        (vec![&self.accum], None)
    }

    fn state_planes_mut(&mut self) -> (Vec<&mut RowState>, Option<&mut Vec<u32>>) {
        (vec![&mut self.accum], None)
    }
}

/// Adam with sparse (lazy) per-row moments: `M <- b1*M + (1-b1)*G;
/// V <- b2*V + (1-b2)*G^2; W <- W - lr * Mhat / (sqrt(Vhat) + eps)` with
/// per-row bias-correction step counts (rows update at different rates
/// in sparse training, so a global step count would over-correct cold
/// rows).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: RowState,
    v: RowState,
    t: Vec<u32>,
}

impl Adam {
    /// Creates Adam with the given hyperparameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            m: RowState::default(),
            v: RowState::default(),
            t: Vec::new(),
        }
    }

    /// Number of rows with live moment state.
    pub fn tracked_rows(&self) -> usize {
        self.t.iter().filter(|&&t| t > 0).count()
    }
}

#[derive(Debug, Clone, Copy)]
struct AdamHyper {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

fn adam_step(
    h: AdamHyper,
    m: &mut [f32],
    v: &mut [f32],
    t: &mut u32,
    param: &mut [f32],
    grad: &[f32],
) {
    assert_eq!(param.len(), grad.len(), "row/grad width mismatch");
    *t += 1;
    let row = crate::simd::AdamRow {
        lr: h.lr,
        beta1: h.beta1,
        beta2: h.beta2,
        eps: h.eps,
        bc1: 1.0 - h.beta1.powi(*t as i32),
        bc2: 1.0 - h.beta2.powi(*t as i32),
    };
    crate::simd::adam_row(crate::simd::dispatch(), row, m, v, param, grad);
}

impl Adam {
    fn hyper(&self) -> AdamHyper {
        AdamHyper {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
        }
    }
}

impl SparseOptimizer for Adam {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        self.m.set_width(param.len());
        self.v.set_width(param.len());
        if row as usize >= self.t.len() {
            let target = (row as usize + 1).max(self.t.len() * 2);
            self.t.resize(target, 0);
        }
        let h = self.hyper();
        adam_step(
            h,
            self.m.row_mut(row),
            self.v.row_mut(row),
            &mut self.t[row as usize],
            param,
            grad,
        );
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn state_bytes_per_element(&self) -> usize {
        16 // two f32 moments, read + write each
    }
}

struct AdamShard<'a> {
    h: AdamHyper,
    m: RowStateBand<'a>,
    v: RowStateBand<'a>,
    base: u32,
    t: &'a mut [u32],
}

impl StateShard for AdamShard<'_> {
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        let local = (row - self.base) as usize;
        adam_step(
            self.h,
            self.m.row_mut(row),
            self.v.row_mut(row),
            &mut self.t[local],
            param,
            grad,
        );
    }
}

impl SplittableOptimizer for Adam {
    fn split_by_rows<'s>(&'s mut self, fence: &[u32], dim: usize) -> Vec<Box<dyn StateShard + 's>> {
        let h = self.hyper();
        let last = *fence.last().expect("non-empty fence") as usize;
        if last > self.t.len() {
            self.t.resize(last, 0);
        }
        let m_bands = self.m.split(fence, dim);
        let v_bands = self.v.split(fence, dim);
        let mut t_rest = &mut self.t[fence[0] as usize..];
        let mut shards: Vec<Box<dyn StateShard>> = Vec::with_capacity(fence.len() - 1);
        for ((pair, m), v) in fence.windows(2).zip(m_bands).zip(v_bands) {
            let (t_band, tail) = t_rest.split_at_mut((pair[1] - pair[0]) as usize);
            t_rest = tail;
            shards.push(Box::new(AdamShard {
                h,
                m,
                v,
                base: pair[0],
                t: t_band,
            }));
        }
        shards
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.m.save_into(out);
        self.v.save_into(out);
        put_u64(out, self.t.len() as u64);
        for &t in &self.t {
            out.extend_from_slice(&t.to_le_bytes());
        }
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        self.m.load_from(&mut r)?;
        self.v.load_from(&mut r)?;
        let len = r.u64()? as usize;
        let raw = r.take(
            len.checked_mul(4)
                .ok_or_else(|| "optimizer step-count length overflows".to_string())?,
        )?;
        self.t = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        r.finish()
    }

    fn state_planes(&self) -> (Vec<&RowState>, Option<&[u32]>) {
        (vec![&self.m, &self.v], Some(&self.t))
    }

    fn state_planes_mut(&mut self) -> (Vec<&mut RowState>, Option<&mut Vec<u32>>) {
        (vec![&mut self.m, &mut self.v], Some(&mut self.t))
    }
}

/// One optimizer per row-range shard of a table: state you can *place*.
///
/// Where [`SplittableOptimizer::split_by_rows`] hands out temporary bands
/// within one slab (for a single parallel scatter), `ShardedOptimizer`
/// keeps the state permanently split: shard `s` owns a shard-local slab
/// keyed by local row ids, so each shard's scatter touches only its own
/// state — the placement a pooled-memory deployment needs.
///
/// # Checkpoint portability
///
/// [`ShardedOptimizer::save_state`] always emits the **canonical
/// global-keyed blob** — byte-compatible with what a single unsharded
/// optimizer saves (a 1-shard save is a literal passthrough). With more
/// shards, the per-shard [`RowState`] planes are merged row-by-row into
/// global keying on save and re-split by the current [`ShardMap`] on
/// load. A checkpoint written at N shards therefore restores at M shards
/// (any N, M ≥ 1) with bit-identical subsequent training.
pub struct ShardedOptimizer {
    map: ShardMap,
    shards: Vec<Box<dyn SplittableOptimizer>>,
}

impl ShardedOptimizer {
    /// Builds one optimizer instance per shard of `map` via `build`
    /// (every instance must be the same optimizer with the same
    /// hyperparameters).
    pub fn new(map: ShardMap, mut build: impl FnMut() -> Box<dyn SplittableOptimizer>) -> Self {
        let shards: Vec<Box<dyn SplittableOptimizer>> =
            (0..map.num_shards()).map(|_| build()).collect();
        let name = shards[0].name();
        assert!(
            shards.iter().all(|s| s.name() == name),
            "all shards must run the same optimizer"
        );
        Self { map, shards }
    }

    /// Number of state shards (== the map's shard count).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shared optimizer name (e.g. `"adam"`), without needing the
    /// [`SparseOptimizer`] trait in scope.
    pub fn name(&self) -> &'static str {
        self.shards[0].name()
    }

    /// The placement plan this state is split by.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Immutable access to one shard's optimizer.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn shard(&self, s: usize) -> &dyn SplittableOptimizer {
        self.shards[s].as_ref()
    }

    /// Mutable access to one shard's optimizer (rows are shard-local).
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn shard_mut(&mut self, s: usize) -> &mut dyn SplittableOptimizer {
        self.shards[s].as_mut()
    }

    /// All shard optimizers, for concurrent per-shard scatters.
    pub fn shards_mut(&mut self) -> &mut [Box<dyn SplittableOptimizer>] {
        &mut self.shards
    }

    /// The map and the shard optimizers together (split borrow), for
    /// scatter kernels that walk both.
    pub fn parts_mut(&mut self) -> (&ShardMap, &mut [Box<dyn SplittableOptimizer>]) {
        (&self.map, &mut self.shards)
    }

    /// Appends the canonical global-keyed state blob (see the type-level
    /// docs): a 1-shard save passes the inner optimizer's bytes through
    /// unchanged; an N-shard save merges the per-shard planes into global
    /// row keying, zero-filling rows no shard has touched.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        if self.shards.len() == 1 {
            self.shards[0].save_state(out);
            return;
        }
        let per_shard: Vec<(Vec<&RowState>, Option<&[u32]>)> =
            self.shards.iter().map(|s| s.state_planes()).collect();
        // Rows a shard's plane actually backs, clamped to the shard's
        // span (geometric growth may overshoot it; the overshoot is
        // all-zero by construction and not part of the canonical blob).
        let clamped = |s: usize, rows: usize| rows.min(self.map.shard_rows(s));
        let planes = per_shard[0].0.len();
        for p in 0..planes {
            let width = per_shard
                .iter()
                .map(|(pl, _)| pl[p].width)
                .find(|&w| w != 0)
                .unwrap_or(0);
            let extent = per_shard
                .iter()
                .enumerate()
                .filter(|(_, (pl, _))| pl[p].rows() > 0)
                .map(|(s, (pl, _))| self.map.shard_base(s) + clamped(s, pl[p].rows()))
                .max()
                .unwrap_or(0);
            put_u64(out, width as u64);
            put_u64(out, extent as u64);
            for r in 0..extent {
                let (s, local) = self.map.locate(r as u32).expect("extent within the map");
                let plane = &per_shard[s].0[p];
                let local = local as usize;
                if width > 0 && plane.width == width && local < plane.rows() {
                    for &v in &plane.data[local * width..(local + 1) * width] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                } else {
                    let at = out.len();
                    out.resize(at + width * 4, 0u8);
                }
            }
            for r in 0..extent {
                let (s, local) = self.map.locate(r as u32).expect("extent within the map");
                let plane = &per_shard[s].0[p];
                let touched = (local as usize) < plane.rows() && plane.touched[local as usize];
                out.push(touched as u8);
            }
        }
        if per_shard[0].1.is_some() {
            let extent = per_shard
                .iter()
                .enumerate()
                .filter_map(|(s, (_, t))| t.as_ref().map(|t| (s, t.len())))
                .filter(|&(_, len)| len > 0)
                .map(|(s, len)| self.map.shard_base(s) + clamped(s, len))
                .max()
                .unwrap_or(0);
            put_u64(out, extent as u64);
            for r in 0..extent {
                let (s, local) = self.map.locate(r as u32).expect("extent within the map");
                let t = per_shard[s].1.expect("all shards share the optimizer type");
                let v = t.get(local as usize).copied().unwrap_or(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// Restores a canonical blob written by [`ShardedOptimizer::save_state`]
    /// under **any** shard count: the global-keyed planes are re-split by
    /// this optimizer's own map.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency if `bytes` is
    /// truncated, malformed, or has trailing garbage; the state is
    /// unspecified after an error.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if self.shards.len() == 1 {
            return self.shards[0].load_state(bytes);
        }
        let mut r = StateReader::new(bytes);
        let planes = self.shards[0].state_planes().0.len();
        let has_counts = self.shards[0].state_planes().1.is_some();
        for p in 0..planes {
            let width = r.u64()? as usize;
            let extent = r.u64()? as usize;
            let bytes_len = extent
                .checked_mul(width)
                .and_then(|e| e.checked_mul(4))
                .ok_or_else(|| "optimizer state slab size overflows".to_string())?;
            let raw = r.take(bytes_len)?;
            let flags = r.take(extent)?;
            if let Some(&bad) = flags.iter().find(|&&b| b > 1) {
                return Err(format!("optimizer touched flag has invalid value {bad}"));
            }
            for s in 0..self.shards.len() {
                let base = self.map.shard_base(s);
                let end = self.map.shard_end(s).min(extent);
                let lo = base.min(end);
                let (mut planes_mut, _) = self.shards[s].state_planes_mut();
                let plane = planes_mut
                    .drain(..)
                    .nth(p)
                    .expect("all shards share the optimizer type");
                if width == 0 || end <= lo {
                    *plane = RowState::default();
                    continue;
                }
                plane.width = width;
                plane.data.clear();
                plane.data.extend(
                    raw[lo * width * 4..end * width * 4]
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))),
                );
                plane.touched.clear();
                plane.touched.extend(flags[lo..end].iter().map(|&b| b == 1));
            }
        }
        if has_counts {
            let extent = r.u64()? as usize;
            let raw = r.take(
                extent
                    .checked_mul(4)
                    .ok_or_else(|| "optimizer step-count length overflows".to_string())?,
            )?;
            for s in 0..self.shards.len() {
                let base = self.map.shard_base(s);
                let end = self.map.shard_end(s).min(extent);
                let lo = base.min(end);
                let (_, counts) = self.shards[s].state_planes_mut();
                let t = counts.expect("all shards share the optimizer type");
                t.clear();
                t.extend(
                    raw[lo * 4..end * 4]
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))),
                );
            }
        }
        r.finish()
    }
}

impl SparseOptimizer for ShardedOptimizer {
    /// Applies the update for **global** row `row` through the owning
    /// shard's local state — bit-identical to a single global optimizer,
    /// since per-row state is independent either way.
    ///
    /// # Panics
    ///
    /// Panics if `row` lies outside the shard map.
    fn update_row(&mut self, row: u32, param: &mut [f32], grad: &[f32]) {
        let (s, local) = self.map.locate(row).expect("row inside the shard map");
        self.shards[s].update_row(local, param, grad);
    }

    fn name(&self) -> &'static str {
        self.shards[0].name()
    }

    fn state_bytes_per_element(&self) -> usize {
        self.shards[0].state_bytes_per_element()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0, -1.0];
        opt.update_row(0, &mut p, &[1.0, -1.0]);
        assert_eq!(p, vec![0.9, -0.9]);
        assert_eq!(opt.name(), "sgd");
        assert_eq!(opt.state_bytes_per_element(), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn sgd_rejects_width_mismatch() {
        Sgd::new(0.1).update_row(0, &mut [0.0], &[1.0, 2.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(1.0, 0.5);
        let mut p = vec![0.0];
        opt.update_row(0, &mut p, &[1.0]); // v=1, p=-1
        opt.update_row(0, &mut p, &[1.0]); // v=1.5, p=-2.5
        assert!((p[0] + 2.5).abs() < 1e-6);
        assert_eq!(opt.tracked_rows(), 1);
    }

    #[test]
    fn momentum_state_is_per_row() {
        let mut opt = Momentum::new(1.0, 0.9);
        let mut p0 = vec![0.0];
        let mut p1 = vec![0.0];
        opt.update_row(0, &mut p0, &[1.0]);
        opt.update_row(1, &mut p1, &[1.0]);
        assert_eq!(opt.tracked_rows(), 2);
        assert_eq!(p0, p1); // fresh state each: same result
    }

    #[test]
    fn adagrad_matches_eq2_by_hand() {
        // A1 = 0 + G^2 = 4; W1 = 1 - lr*G/sqrt(eps+A1) = 1 - 0.1*2/2.
        let mut opt = Adagrad::new(0.1, 0.0);
        let mut p = vec![1.0];
        opt.update_row(3, &mut p, &[2.0]);
        assert!((p[0] - 0.9).abs() < 1e-6);
        // Second step: A2 = 4 + 1 = 5; W2 = 0.9 - 0.1*1/sqrt(5).
        opt.update_row(3, &mut p, &[1.0]);
        assert!((p[0] - (0.9 - 0.1 / 5.0f32.sqrt())).abs() < 1e-6);
    }

    #[test]
    fn adagrad_shrinks_effective_lr_over_time() {
        let mut opt = Adagrad::new(0.1, 1e-8);
        let mut p = vec![0.0];
        let mut deltas = Vec::new();
        for _ in 0..5 {
            let before = p[0];
            opt.update_row(0, &mut p, &[1.0]);
            deltas.push((before - p[0]).abs());
        }
        for w in deltas.windows(2) {
            assert!(w[1] < w[0], "step sizes must be decreasing: {deltas:?}");
        }
    }

    #[test]
    fn rmsprop_matches_eq1_by_hand() {
        // gamma=0.5: A1 = 0.5*0 + 0.5*G^2 = 2; W1 = -lr*G/sqrt(A1).
        let mut opt = RmsProp::new(0.1, 0.5, 0.0);
        let mut p = vec![0.0];
        opt.update_row(0, &mut p, &[2.0]);
        assert!((p[0] + 0.1 * 2.0 / 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn stateful_optimizers_report_state_traffic() {
        assert_eq!(Momentum::new(0.1, 0.9).state_bytes_per_element(), 8);
        assert_eq!(Adagrad::new(0.1, 1e-8).state_bytes_per_element(), 8);
        assert_eq!(RmsProp::new(0.1, 0.9, 1e-8).state_bytes_per_element(), 8);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first step is ~lr regardless of the
        // gradient magnitude (for eps -> 0).
        for g in [0.1f32, 10.0] {
            let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-12);
            let mut p = vec![0.0];
            opt.update_row(0, &mut p, &[g]);
            assert!((p[0] + 0.01).abs() < 1e-4, "g={g}: step {}", p[0]);
        }
    }

    #[test]
    fn adam_bias_correction_is_per_row() {
        // A cold row's first update must not be shrunk by other rows'
        // step counts.
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-12);
        let mut hot = vec![0.0];
        for _ in 0..10 {
            opt.update_row(0, &mut hot, &[1.0]);
        }
        let mut cold = vec![0.0];
        opt.update_row(1, &mut cold, &[1.0]);
        assert!((cold[0] + 0.01).abs() < 1e-4, "cold first step {}", cold[0]);
        assert_eq!(opt.tracked_rows(), 2);
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut opts: Vec<Box<dyn SparseOptimizer>> = vec![
            Box::new(Sgd::new(0.1)),
            Box::new(Momentum::new(0.1, 0.9)),
            Box::new(Adagrad::new(0.1, 1e-8)),
            Box::new(RmsProp::new(0.1, 0.9, 1e-8)),
            Box::new(Adam::new(0.1, 0.9, 0.999, 1e-8)),
        ];
        let mut p = vec![1.0, 1.0];
        for opt in opts.iter_mut() {
            opt.update_row(0, &mut p, &[0.5, 0.5]);
        }
        assert!(p[0] < 1.0);
    }

    #[test]
    fn splittable_trait_objects_upcast_to_sparse() {
        // The trainer stores Box<dyn SplittableOptimizer> and hands the
        // serial paths a &mut dyn SparseOptimizer via upcasting.
        let mut boxed: Box<dyn SplittableOptimizer> = Box::new(Adagrad::new(0.1, 1e-8));
        let opt: &mut dyn SparseOptimizer = boxed.as_mut();
        let mut p = vec![1.0];
        opt.update_row(0, &mut p, &[2.0]);
        assert!(p[0] < 1.0);
    }

    /// Shard updates must be bit-identical to whole-optimizer updates.
    #[test]
    fn shards_match_serial_updates_exactly() {
        let make: Vec<Box<dyn Fn() -> Box<dyn SplittableOptimizer>>> = vec![
            Box::new(|| Box::new(Sgd::new(0.1))),
            Box::new(|| Box::new(Momentum::new(0.1, 0.9))),
            Box::new(|| Box::new(Adagrad::new(0.1, 1e-8))),
            Box::new(|| Box::new(RmsProp::new(0.1, 0.9, 1e-8))),
            Box::new(|| Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8))),
        ];
        let rows: Vec<u32> = vec![0, 3, 4, 9, 17];
        let dim = 3;
        for mk in &make {
            let mut serial = mk();
            let mut split = mk();
            let mut params_a: Vec<Vec<f32>> = rows.iter().map(|&r| vec![r as f32; dim]).collect();
            let mut params_b = params_a.clone();
            // Two passes so stateful optimizers exercise non-zero state.
            for pass in 0..2 {
                let grads: Vec<Vec<f32>> = rows
                    .iter()
                    .map(|&r| {
                        (0..dim)
                            .map(|c| (r as f32 + c as f32) * 0.1 + pass as f32)
                            .collect()
                    })
                    .collect();
                for (i, &r) in rows.iter().enumerate() {
                    serial.update_row(r, &mut params_a[i], &grads[i]);
                }
                // Split at fences that cut the row set unevenly.
                let fence = [0u32, 4, 10, 32];
                let mut shards = split.split_by_rows(&fence, dim);
                for (i, &r) in rows.iter().enumerate() {
                    let band = fence[1..].iter().position(|&f| r < f).unwrap();
                    shards[band].update_row(r, &mut params_b[i], &grads[i]);
                }
                drop(shards);
            }
            assert_eq!(params_a, params_b, "{} diverged", mk().name());
        }
    }

    #[test]
    fn every_optimizer_rejects_a_descending_fence() {
        let mut opts: Vec<Box<dyn SplittableOptimizer>> = vec![
            Box::new(Sgd::new(0.1)),
            Box::new(Momentum::new(0.1, 0.9)),
            Box::new(Adagrad::new(0.1, 1e-8)),
            Box::new(RmsProp::new(0.1, 0.9, 1e-8)),
            Box::new(Adam::new(0.1, 0.9, 0.999, 1e-8)),
        ];
        for opt in opts.iter_mut() {
            let name = opt.name();
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                opt.split_by_rows(&[4, 0], 2);
            }))
            .is_err();
            assert!(panicked, "{name} accepted a descending fence");
        }
    }

    #[test]
    fn saved_state_resumes_bit_identically() {
        // Save mid-trajectory, load into a fresh optimizer, continue both:
        // the continued updates must match bit-for-bit (the checkpoint
        // resume invariant at the optimizer layer).
        let make: Vec<Box<dyn Fn() -> Box<dyn SplittableOptimizer>>> = vec![
            Box::new(|| Box::new(Sgd::new(0.1))),
            Box::new(|| Box::new(Momentum::new(0.1, 0.9))),
            Box::new(|| Box::new(Adagrad::new(0.1, 1e-8))),
            Box::new(|| Box::new(RmsProp::new(0.1, 0.9, 1e-8))),
            Box::new(|| Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8))),
        ];
        let rows: Vec<u32> = vec![0, 3, 9, 17];
        let dim = 3;
        for mk in &make {
            let mut original = mk();
            let mut params_a: Vec<Vec<f32>> = rows.iter().map(|&r| vec![r as f32; dim]).collect();
            for (i, &r) in rows.iter().enumerate() {
                let grad: Vec<f32> = (0..dim).map(|c| (r + c as u32) as f32 * 0.1).collect();
                original.update_row(r, &mut params_a[i], &grad);
            }
            let mut saved = Vec::new();
            original.save_state(&mut saved);
            let mut restored = mk();
            restored.load_state(&saved).expect("valid state loads");
            let mut params_b = params_a.clone();
            for (i, &r) in rows.iter().enumerate() {
                let grad: Vec<f32> = (0..dim).map(|c| (r + c as u32) as f32 * 0.2).collect();
                original.update_row(r, &mut params_a[i], &grad);
                restored.update_row(r, &mut params_b[i], &grad);
            }
            let bits = |ps: &[Vec<f32>]| -> Vec<Vec<u32>> {
                ps.iter()
                    .map(|p| p.iter().map(|v| v.to_bits()).collect())
                    .collect()
            };
            assert_eq!(
                bits(&params_a),
                bits(&params_b),
                "{} diverged after restore",
                mk().name()
            );
        }
    }

    #[test]
    fn load_state_rejects_truncation_and_trailing_garbage() {
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8);
        let mut p = vec![0.0, 0.0];
        opt.update_row(5, &mut p, &[1.0, 2.0]);
        let mut saved = Vec::new();
        opt.save_state(&mut saved);
        // Every truncation point is a clean error, never a panic.
        for cut in 0..saved.len() {
            let mut fresh = Adam::new(0.01, 0.9, 0.999, 1e-8);
            assert!(
                fresh.load_state(&saved[..cut]).is_err(),
                "truncation at byte {cut} accepted"
            );
        }
        let mut trailing = saved.clone();
        trailing.push(0);
        let mut fresh = Adam::new(0.01, 0.9, 0.999, 1e-8);
        let err = fresh.load_state(&trailing).unwrap_err();
        assert!(err.contains("trailing"), "unexpected error: {err}");
    }

    #[test]
    fn row_state_growth_is_geometric_and_preserving() {
        let mut s = RowState::default();
        s.set_width(2);
        s.row_mut(0).copy_from_slice(&[1.0, 2.0]);
        s.row_mut(100).copy_from_slice(&[3.0, 4.0]);
        assert!(s.rows() >= 101);
        assert_eq!(s.row_mut(0), &[1.0, 2.0]);
        assert_eq!(s.row_mut(100), &[3.0, 4.0]);
        assert_eq!(s.tracked_rows(), 2);
    }

    fn all_optimizers() -> Vec<Box<dyn Fn() -> Box<dyn SplittableOptimizer>>> {
        vec![
            Box::new(|| Box::new(Sgd::new(0.1))),
            Box::new(|| Box::new(Momentum::new(0.1, 0.9))),
            Box::new(|| Box::new(Adagrad::new(0.1, 1e-8))),
            Box::new(|| Box::new(RmsProp::new(0.1, 0.9, 1e-8))),
            Box::new(|| Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8))),
        ]
    }

    /// Global-keyed updates through the sharded state must match a single
    /// unsharded optimizer bit-for-bit, for every optimizer and shard count.
    #[test]
    fn sharded_optimizer_matches_global_updates() {
        use crate::sharding::ShardMap;
        let rows_total = 34usize;
        let rows: Vec<u32> = vec![0, 3, 11, 12, 17, 22, 23, 33];
        let dim = 3;
        for mk in &all_optimizers() {
            for shards in [1usize, 2, 3, 7] {
                let mut global = mk();
                let mut sharded = ShardedOptimizer::new(ShardMap::new(rows_total, shards), || mk());
                assert_eq!(sharded.name(), global.name());
                let mut params_a: Vec<Vec<f32>> =
                    rows.iter().map(|&r| vec![r as f32; dim]).collect();
                let mut params_b = params_a.clone();
                for pass in 0..3 {
                    for (i, &r) in rows.iter().enumerate() {
                        let grad: Vec<f32> = (0..dim)
                            .map(|c| (r + c as u32) as f32 * 0.1 + pass as f32)
                            .collect();
                        global.update_row(r, &mut params_a[i], &grad);
                        sharded.update_row(r, &mut params_b[i], &grad);
                    }
                }
                let (a, b): (Vec<u32>, Vec<u32>) = (
                    params_a.iter().flatten().map(|v| v.to_bits()).collect(),
                    params_b.iter().flatten().map(|v| v.to_bits()).collect(),
                );
                assert_eq!(a, b, "{} diverged at {shards} shards", global.name());
            }
        }
    }

    /// Save at N shards, restore at M shards (including M == 1), continue:
    /// the continued trajectory must be bit-identical. The 1-shard blob is
    /// also byte-identical to the plain optimizer's save format.
    #[test]
    fn sharded_state_is_portable_across_shard_counts() {
        use crate::sharding::ShardMap;
        let rows_total = 23usize;
        let rows: Vec<u32> = vec![0, 6, 7, 11, 12, 21, 22];
        let dim = 2;
        for mk in &all_optimizers() {
            // Reference trajectory on a plain global optimizer.
            let mut global = mk();
            let mut params: Vec<Vec<f32>> = rows.iter().map(|&r| vec![r as f32; dim]).collect();
            let step = |opt: &mut dyn SparseOptimizer, params: &mut [Vec<f32>], pass: usize| {
                for (i, &r) in rows.iter().enumerate() {
                    let grad: Vec<f32> = (0..dim)
                        .map(|c| (r + c as u32) as f32 * 0.1 + pass as f32)
                        .collect();
                    opt.update_row(r, &mut params[i], &grad);
                }
            };
            step(global.as_mut(), &mut params, 0);
            step(global.as_mut(), &mut params, 1);
            let mut global_blob = Vec::new();
            global.save_state(&mut global_blob);

            for n in [1usize, 2, 3, 7] {
                // Replay the same two passes through N shards and save.
                let mut at_n = ShardedOptimizer::new(ShardMap::new(rows_total, n), || mk());
                let mut params_n: Vec<Vec<f32>> =
                    rows.iter().map(|&r| vec![r as f32; dim]).collect();
                step(&mut at_n, &mut params_n, 0);
                step(&mut at_n, &mut params_n, 1);
                let mut blob = Vec::new();
                at_n.save_state(&mut blob);
                if n == 1 {
                    assert_eq!(
                        blob,
                        global_blob,
                        "{}: 1-shard save is not a byte passthrough",
                        at_n.name()
                    );
                }
                for m in [1usize, 2, 3, 7] {
                    let mut at_m = ShardedOptimizer::new(ShardMap::new(rows_total, m), || mk());
                    at_m.load_state(&blob).expect("canonical blob loads");
                    // Continue both for one more pass and compare bits.
                    let mut cont_ref = params_n.clone();
                    let mut cont_new = params_n.clone();
                    let mut resaved = mk();
                    resaved.load_state(&blob).unwrap_or_else(|e| {
                        panic!("{}: global load of {n}-shard blob: {e}", at_m.name())
                    });
                    step(resaved.as_mut(), &mut cont_ref, 2);
                    step(&mut at_m, &mut cont_new, 2);
                    let (a, b): (Vec<u32>, Vec<u32>) = (
                        cont_ref.iter().flatten().map(|v| v.to_bits()).collect(),
                        cont_new.iter().flatten().map(|v| v.to_bits()).collect(),
                    );
                    assert_eq!(a, b, "{}: {n}->{m} shard restore diverged", at_m.name());
                }
            }
        }
    }

    #[test]
    fn sharded_load_rejects_truncation_and_trailing_garbage() {
        use crate::sharding::ShardMap;
        let mut at_n = ShardedOptimizer::new(ShardMap::new(20, 3), || {
            Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8))
        });
        let mut p = vec![0.0, 0.0];
        at_n.update_row(5, &mut p, &[1.0, 2.0]);
        at_n.update_row(13, &mut p, &[0.5, -1.0]);
        let mut saved = Vec::new();
        at_n.save_state(&mut saved);
        for cut in 0..saved.len() {
            let mut fresh = ShardedOptimizer::new(ShardMap::new(20, 2), || {
                Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8))
            });
            assert!(
                fresh.load_state(&saved[..cut]).is_err(),
                "truncation at byte {cut} accepted"
            );
        }
        let mut trailing = saved.clone();
        trailing.push(0);
        let mut fresh = ShardedOptimizer::new(ShardMap::new(20, 2), || {
            Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8))
        });
        let err = fresh.load_state(&trailing).unwrap_err();
        assert!(err.contains("trailing"), "unexpected error: {err}");
    }
}

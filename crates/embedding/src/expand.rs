//! Gradient expand (Fig. 2b, step 1): the dual of tensor reduce.
//!
//! During forward propagation, output slot `dst` was the sum of every
//! gathered row mapped to it; by the chain rule each of those lookups
//! receives the *same* upstream gradient. Expansion therefore replicates
//! gradient row `dst[i]` into expanded row `i`, producing one gradient row
//! per `(src, dst)` pair.

use crate::error::EmbeddingError;
use crate::index::IndexArray;
use tcast_tensor::Matrix;

/// Expands the backpropagated gradients (`num_outputs x dim`) into one row
/// per lookup (`index.len() x dim`), in pair order.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `grads.rows()` does not
/// equal `index.num_outputs()`.
///
/// ```
/// use tcast_embedding::{IndexArray, gradient_expand};
/// use tcast_tensor::Matrix;
///
/// # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
/// // Fig. 2b: G[0] expands to 3 copies, G[1] to 2 copies.
/// let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]])?;
/// let grads = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
/// let expanded = gradient_expand(&grads, &index)?;
/// assert_eq!(expanded.as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn gradient_expand(grads: &Matrix, index: &IndexArray) -> Result<Matrix, EmbeddingError> {
    let mut out = Matrix::default();
    gradient_expand_into(grads, index, &mut out)?;
    Ok(out)
}

/// [`gradient_expand`] into a caller-owned scratch matrix, reusing its
/// allocation whenever the capacity suffices — the baseline backward's
/// `n x D` intermediate still gets *materialized* every step (that cost
/// is the paper's subject), but a steady-state training step no longer
/// re-allocates it.
///
/// Every output row is overwritten, so stale scratch contents never leak.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `grads.rows()` does not
/// equal `index.num_outputs()`.
pub fn gradient_expand_into(
    grads: &Matrix,
    index: &IndexArray,
    out: &mut Matrix,
) -> Result<(), EmbeddingError> {
    if grads.rows() != index.num_outputs() {
        return Err(EmbeddingError::LengthMismatch {
            expected: index.num_outputs(),
            found: grads.rows(),
        });
    }
    let dim = grads.cols();
    out.zero_into(index.len(), dim);
    for (i, (_, dst)) in index.iter().enumerate() {
        out.row_mut(i).copy_from_slice(grads.row(dst as usize));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_replicates_per_lookup() {
        let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        let grads = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, -2.0]]).unwrap();
        let e = gradient_expand(&grads, &index).unwrap();
        assert_eq!(e.shape(), (5, 2));
        assert_eq!(e.row(0), &[1.0, -1.0]);
        assert_eq!(e.row(1), &[1.0, -1.0]);
        assert_eq!(e.row(2), &[1.0, -1.0]);
        assert_eq!(e.row(3), &[2.0, -2.0]);
        assert_eq!(e.row(4), &[2.0, -2.0]);
    }

    #[test]
    fn expand_size_is_pooling_factor_times_batch() {
        // The paper's Fig. 5b setup: 10 gathers/table means the expanded
        // tensor is exactly 10x the backpropagated one.
        let samples: Vec<Vec<u32>> = (0..8).map(|i| vec![i; 10]).collect();
        let index = IndexArray::from_samples(&samples).unwrap();
        let grads = Matrix::zeros(8, 4);
        let e = gradient_expand(&grads, &index).unwrap();
        assert_eq!(e.rows(), 80);
    }

    #[test]
    fn expand_into_reuses_scratch_and_matches() {
        let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        let grads = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, -2.0]]).unwrap();
        // Dirty, over-sized scratch: the refill must fully overwrite.
        let mut scratch = Matrix::filled(9, 3, f32::NAN);
        gradient_expand_into(&grads, &index, &mut scratch).unwrap();
        assert_eq!(scratch, gradient_expand(&grads, &index).unwrap());
    }

    #[test]
    fn expand_validates_gradient_rows() {
        let index = IndexArray::from_samples(&[vec![0], vec![1]]).unwrap();
        let wrong = Matrix::zeros(3, 4);
        assert!(matches!(
            gradient_expand(&wrong, &index),
            Err(EmbeddingError::LengthMismatch {
                expected: 2,
                found: 3
            })
        ));
    }

    #[test]
    fn expand_is_dual_of_reduce() {
        // <expand(g), x> == <g, reduce(x)> for all x: adjointness of the
        // linear maps, checked on a small instance.
        use crate::gather::reduce_by_dst;
        let index = IndexArray::from_samples(&[vec![0, 1], vec![2]]).unwrap();
        let g = Matrix::from_rows(&[&[0.5, 1.5], &[-2.0, 0.25]]).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let lhs = gradient_expand(&g, &index)
            .unwrap()
            .hadamard(&x)
            .unwrap()
            .sum();
        let rhs = g
            .hadamard(&reduce_by_dst(&x, &index).unwrap())
            .unwrap()
            .sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }
}

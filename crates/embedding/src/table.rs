//! The embedding table: a dense `rows x dim` array of trainable vectors,
//! stored contiguously exactly as described in Section II-A of the paper
//! ("stored contiguously within the memory address space as a single
//! dimensional array").

use crate::error::EmbeddingError;
use tcast_tensor::SplitMix64;

/// A trainable embedding table.
///
/// Rows are the embedding vectors of each categorical value; the whole
/// table is one contiguous `Vec<f32>` so gathers exhibit the same
/// sparse-row access pattern the paper analyzes.
///
/// ```
/// use tcast_embedding::EmbeddingTable;
///
/// let table = EmbeddingTable::seeded(1000, 64, 1);
/// assert_eq!(table.rows(), 1000);
/// assert_eq!(table.dim(), 64);
/// assert_eq!(table.row(5).len(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates a zero-initialized table.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            rows,
            dim,
            data: vec![0.0; rows * dim],
        }
    }

    /// Creates a table with small uniform random entries in
    /// `[-1/sqrt(dim), 1/sqrt(dim)]` (DLRM's embedding init), seeded for
    /// reproducibility.
    pub fn seeded(rows: usize, dim: usize, seed: u64) -> Self {
        let bound = 1.0 / (dim.max(1) as f32).sqrt();
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * dim)
            .map(|_| rng.next_range(-bound, bound))
            .collect();
        Self { rows, dim, data }
    }

    /// Builds a table from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] if
    /// `data.len() != rows * dim`.
    pub fn from_vec(rows: usize, dim: usize, data: Vec<f32>) -> Result<Self, EmbeddingError> {
        if data.len() != rows * dim {
            return Err(EmbeddingError::LengthMismatch {
                expected: rows * dim,
                found: data.len(),
            });
        }
        Ok(Self { rows, dim, data })
    }

    /// Number of embedding vectors (categorical cardinality).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding vector width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Table footprint in bytes (`rows * dim * 4`).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Immutable view of the whole backing storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the whole backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Maximum absolute elementwise difference against another table.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::DimMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &EmbeddingTable) -> Result<f32, EmbeddingError> {
        if self.rows != other.rows || self.dim != other.dim {
            return Err(EmbeddingError::DimMismatch {
                expected: self.dim,
                found: other.dim,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_layout() {
        let t = EmbeddingTable::zeros(4, 3);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.size_bytes(), 48);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn seeded_is_deterministic_and_bounded() {
        let a = EmbeddingTable::seeded(10, 16, 9);
        let b = EmbeddingTable::seeded(10, 16, 9);
        assert_eq!(a, b);
        let bound = 1.0 / 4.0;
        assert!(a.as_slice().iter().all(|v| v.abs() <= bound));
        let c = EmbeddingTable::seeded(10, 16, 10);
        assert!(a.max_abs_diff(&c).unwrap() > 0.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(EmbeddingTable::from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(EmbeddingTable::from_vec(2, 2, vec![0.0; 5]).is_err());
    }

    #[test]
    fn row_views_are_contiguous() {
        let t = EmbeddingTable::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut t = EmbeddingTable::zeros(2, 2);
        t.row_mut(1)[0] = 9.0;
        assert_eq!(t.as_slice()[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        EmbeddingTable::zeros(1, 1).row(1);
    }

    #[test]
    fn max_abs_diff_shape_check() {
        let a = EmbeddingTable::zeros(2, 2);
        let b = EmbeddingTable::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_err());
    }
}

//! Row-range sharding of embedding tables across memory nodes.
//!
//! The paper's motivation (Sections I-II) is that embedding tables reach
//! tens of GB to TBs, forcing them off-accelerator into pooled/host
//! memory — Facebook's Zion and Baidu's AIBox shard them across a memory
//! pool. This module models that placement: [`ShardMap`] is the pure
//! placement plan (contiguous row ranges, O(1) row → shard routing),
//! [`ShardedTable`] materializes one table slab per shard, and
//! [`RouteScratch`] makes the per-batch routing allocation-free so the
//! plan can sit on the training hot path.
//!
//! # Bit-identity
//!
//! Every sharded kernel here is **bit-identical** to its single-table
//! counterpart, not merely close: the forward merge replays lookups in
//! original pair order (f32 accumulation order is the invariant, since
//! float addition is not associative), and the scatter applies the exact
//! per-row update sequence of the unsharded path. `sharded == unsharded`
//! is the workspace-wide invariant 8, property-tested in
//! `tests/sharded_equivalence.rs`.

use crate::coalesce::CoalescedGradients;
use crate::error::EmbeddingError;
use crate::index::IndexArray;
use crate::optim::{ShardedOptimizer, SparseOptimizer};
use crate::table::EmbeddingTable;
use tcast_pool::Exec;
use tcast_tensor::Matrix;

/// How many row-range shards a table (or a whole model) should be split
/// into. `ShardSpec::default()` is one shard — today's unsharded layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// A spec asking for `shards` row-range shards per table. Tables with
    /// fewer rows than shards get one shard per row (see [`ShardMap`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self { shards }
    }

    /// The requested shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self { shards: 1 }
    }
}

/// The placement plan for one table: `rows` split into near-equal
/// contiguous row ranges.
///
/// Every shard spans exactly `ceil(rows / requested)` rows except the
/// last (which takes the remainder), so `row → (shard, local)` is a
/// division, not a search — routing stays O(1) per lookup however many
/// shards exist. The actual shard count is `ceil(rows / span)`, which can
/// be lower than requested when the table has fewer rows than shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    rows: usize,
    /// Rows per shard (all shards but the last).
    span: usize,
    /// Exclusive upper row bound of each shard (ascending).
    bounds: Vec<usize>,
}

impl ShardMap {
    /// Plans `rows` over `num_shards` near-equal contiguous ranges. A
    /// zero-row table still gets one (empty) shard so downstream
    /// per-shard state is never zero-length.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    pub fn new(rows: usize, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let span = rows.div_ceil(num_shards).max(1);
        let mut bounds = Vec::with_capacity(rows.div_ceil(span).max(1));
        let mut lo = 0usize;
        while lo < rows {
            let hi = (lo + span).min(rows);
            bounds.push(hi);
            lo = hi;
        }
        if bounds.is_empty() {
            bounds.push(0);
        }
        Self { rows, span, bounds }
    }

    /// Number of shards actually planned (`<=` the requested count).
    pub fn num_shards(&self) -> usize {
        self.bounds.len()
    }

    /// Total rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// First global row of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn shard_base(&self, s: usize) -> usize {
        assert!(s < self.bounds.len(), "shard {s} out of range");
        s * self.span
    }

    /// One-past-the-last global row of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn shard_end(&self, s: usize) -> usize {
        self.bounds[s]
    }

    /// Rows owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn shard_rows(&self, s: usize) -> usize {
        self.shard_end(s) - self.shard_base(s)
    }

    /// Which shard holds an in-range global row (unchecked division).
    fn shard_of(&self, row: u32) -> usize {
        row as usize / self.span
    }

    /// Which shard holds global row `row`, plus the local row id.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] for rows past the end.
    pub fn locate(&self, row: u32) -> Result<(usize, u32), EmbeddingError> {
        let r = row as usize;
        if r >= self.rows {
            return Err(EmbeddingError::SrcOutOfBounds {
                src: row,
                rows: self.rows,
            });
        }
        Ok((r / self.span, (r % self.span) as u32))
    }

    /// Splits a global index array into per-shard local index arrays,
    /// reusing `scratch`'s buffers: on the warm path this allocates
    /// nothing. Each routed array keeps the pairs in their original
    /// relative order, maps `src` to the shard-local row id, and keeps
    /// the **original** `dst` and `num_outputs` so per-shard partial
    /// outputs stay batch-aligned. Read the result via
    /// [`RouteScratch::routed`].
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] on out-of-range rows;
    /// `scratch` is left empty (but keeps its allocations).
    pub fn route_into(
        &self,
        index: &IndexArray,
        scratch: &mut RouteScratch,
    ) -> Result<(), EmbeddingError> {
        let n = self.num_shards();
        scratch.ensure(n);
        scratch.active = 0;
        for s in 0..n {
            scratch.src[s].clear();
            scratch.dst[s].clear();
        }
        for (src, dst) in index.iter() {
            let (s, local) = self.locate(src)?;
            scratch.src[s].push(local);
            scratch.dst[s].push(dst);
        }
        // Swap the staged pairs into the recycled IndexArrays through
        // `refill`, which re-validates the invariants; the arrays' old
        // buffers land back in the staging slots for the next call.
        let RouteScratch {
            src, dst, routed, ..
        } = scratch;
        for s in 0..n {
            let (stage_src, stage_dst) = (&mut src[s], &mut dst[s]);
            routed[s].refill(index.num_outputs(), |a, b| {
                std::mem::swap(a, stage_src);
                std::mem::swap(b, stage_dst);
            })?;
        }
        scratch.active = n;
        Ok(())
    }

    /// Allocating convenience form of [`ShardMap::route_into`] (builds a
    /// fresh scratch per call — tests and cold paths only).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] on out-of-range rows.
    pub fn route(&self, index: &IndexArray) -> Result<Vec<IndexArray>, EmbeddingError> {
        let mut scratch = RouteScratch::default();
        self.route_into(index, &mut scratch)?;
        scratch.routed.truncate(scratch.active);
        Ok(scratch.routed)
    }
}

/// Reusable buffers for [`ShardMap::route_into`]: per-shard staging pair
/// vectors plus the routed [`IndexArray`]s themselves. One scratch per
/// (table, consumer) makes routing allocation-free after warm-up; the
/// same scratch may be reused across maps with different shard counts.
#[derive(Debug, Default)]
pub struct RouteScratch {
    src: Vec<Vec<u32>>,
    dst: Vec<Vec<u32>>,
    routed: Vec<IndexArray>,
    /// Shards filled by the most recent successful `route_into`.
    active: usize,
}

impl RouteScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        while self.src.len() < n {
            self.src.push(Vec::new());
            self.dst.push(Vec::new());
            self.routed
                .push(IndexArray::from_pairs(Vec::new(), Vec::new(), 0).expect("empty is valid"));
        }
    }

    /// The per-shard index arrays produced by the last successful
    /// [`ShardMap::route_into`] (empty before any routing).
    pub fn routed(&self) -> &[IndexArray] {
        &self.routed[..self.active]
    }
}

/// Reusable buffers for [`ShardedTable::gather_reduce_into`]: routing
/// scratch plus one staged lookup matrix and merge cursor per shard.
#[derive(Debug, Default)]
pub struct ShardedGatherScratch {
    route: RouteScratch,
    staged: Vec<Matrix>,
    cursors: Vec<usize>,
}

/// An embedding table split into contiguous row-range shards, one slab
/// per shard (the cross-node placement; the in-slab view used by the
/// trainer keeps one slab and shares the same [`ShardMap`]).
#[derive(Debug, Clone)]
pub struct ShardedTable {
    shards: Vec<EmbeddingTable>,
    map: ShardMap,
    dim: usize,
}

impl ShardedTable {
    /// Splits `table` into `num_shards` near-equal contiguous row ranges,
    /// copying each shard's row range as one bulk slice.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    pub fn from_table(table: &EmbeddingTable, num_shards: usize) -> Self {
        let map = ShardMap::new(table.rows(), num_shards);
        let dim = table.dim();
        let shards = (0..map.num_shards())
            .map(|s| {
                let (lo, hi) = (map.shard_base(s), map.shard_end(s));
                EmbeddingTable::from_vec(
                    hi - lo,
                    dim,
                    table.as_slice()[lo * dim..hi * dim].to_vec(),
                )
                .expect("shard data sized by construction")
            })
            .collect();
        Self { shards, map, dim }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total rows across shards.
    pub fn rows(&self) -> usize {
        self.map.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The placement plan shared by all per-shard kernels.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Immutable access to one shard.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn shard(&self, i: usize) -> &EmbeddingTable {
        &self.shards[i]
    }

    /// Which shard holds global row `row`, plus the local row id.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] for rows past the end.
    pub fn locate(&self, row: u32) -> Result<(usize, u32), EmbeddingError> {
        self.map.locate(row)
    }

    /// Splits a global index array into per-shard local index arrays
    /// (each keeping the full `num_outputs` so partial outputs align).
    /// Allocating convenience for [`ShardMap::route_into`].
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] on out-of-range rows.
    pub fn route(&self, index: &IndexArray) -> Result<Vec<IndexArray>, EmbeddingError> {
        self.map.route(index)
    }

    /// Fused gather-reduce across all shards, **bit-identical** to the
    /// single-table [`crate::gather::gather_reduce`]. Allocating
    /// convenience for [`ShardedTable::gather_reduce_into`].
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] on out-of-range rows.
    pub fn gather_reduce(&self, index: &IndexArray) -> Result<Matrix, EmbeddingError> {
        let mut out = Matrix::default();
        let mut scratch = ShardedGatherScratch::default();
        self.gather_reduce_into(index, &mut out, &mut scratch, Exec::Serial)?;
        Ok(out)
    }

    /// Fused gather-reduce across all shards, writing into `out` and
    /// reusing `scratch` (allocation-free once warm).
    ///
    /// Each shard first stages the rows it owns, in routed (= original
    /// relative) order — independently per shard, so with a pooled
    /// [`Exec`] the shards gather concurrently. The merge then replays
    /// the lookups in **original pair order**, pulling each staged row
    /// from its shard's cursor. Every output slot therefore accumulates
    /// exactly the addends of the unsharded serial kernel in exactly its
    /// order, making the result bit-identical for any shard count — this
    /// is the offsets-table cross-shard merge (f32 addition is not
    /// associative, so the order *is* the invariant).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] on out-of-range rows.
    pub fn gather_reduce_into(
        &self,
        index: &IndexArray,
        out: &mut Matrix,
        scratch: &mut ShardedGatherScratch,
        exec: Exec<'_>,
    ) -> Result<(), EmbeddingError> {
        self.map.route_into(index, &mut scratch.route)?;
        let n = self.map.num_shards();
        scratch.staged.resize_with(n, Matrix::default);
        scratch.cursors.clear();
        scratch.cursors.resize(n, 0);

        let dim = self.dim;
        let routed = scratch.route.routed();
        let stage = |shard: &EmbeddingTable, local: &IndexArray, staged: &mut Matrix| {
            staged.zero_into(local.len(), dim);
            for (i, (src, _)) in local.iter().enumerate() {
                staged.row_mut(i).copy_from_slice(shard.row(src as usize));
            }
        };
        match exec.pool() {
            Some(pool) if exec.threads() > 1 && n > 1 => pool.scope(|scope| {
                for ((shard, local), staged) in self
                    .shards
                    .iter()
                    .zip(routed.iter())
                    .zip(scratch.staged.iter_mut())
                {
                    scope.spawn(move || stage(shard, local, staged));
                }
            }),
            _ => {
                for ((shard, local), staged) in self
                    .shards
                    .iter()
                    .zip(routed.iter())
                    .zip(scratch.staged.iter_mut())
                {
                    stage(shard, local, staged);
                }
            }
        }

        out.zero_into(index.num_outputs(), dim);
        for (src, dst) in index.iter() {
            let s = self.map.shard_of(src);
            let staged_row = scratch.staged[s].row(scratch.cursors[s]);
            scratch.cursors[s] += 1;
            let acc = out.row_mut(dst as usize);
            for (a, &v) in acc.iter_mut().zip(staged_row.iter()) {
                *a += v;
            }
        }
        Ok(())
    }

    /// Scatters coalesced gradients through one **shared** optimizer:
    /// each update routes to the owning shard and applies with the
    /// shard-local row id. Correct for stateless optimizers (SGD); for
    /// stateful ones the shared state aliases equal local ids across
    /// shards — use [`ShardedTable::scatter_apply_sharded`] with
    /// per-shard state slabs instead.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError`] on out-of-range rows or dimension
    /// mismatches.
    pub fn scatter_apply(
        &mut self,
        coalesced: &CoalescedGradients,
        optimizer: &mut dyn SparseOptimizer,
    ) -> Result<(), EmbeddingError> {
        if coalesced.grads().cols() != self.dim {
            return Err(EmbeddingError::DimMismatch {
                expected: self.dim,
                found: coalesced.grads().cols(),
            });
        }
        for (i, &row) in coalesced.rows().iter().enumerate() {
            let (s, local) = self.locate(row)?;
            optimizer.update_row(
                local,
                self.shards[s].row_mut(local as usize),
                coalesced.grads().row(i),
            );
        }
        Ok(())
    }

    /// Scatters coalesced gradients through per-shard optimizer state —
    /// the production sharded update. Coalesced rows are ascending, so
    /// each shard's updates form one contiguous run; shards update their
    /// own slab and their own [`ShardedOptimizer`] state shard, serially
    /// or concurrently on a pooled [`Exec`]. Bit-identical to the
    /// unsharded serial scatter either way (per row, the exact same
    /// update against the exact same state values).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] if the optimizer's
    /// shard plan disagrees with this table, or the scatter validation
    /// errors of [`crate::scatter_apply_parallel`].
    pub fn scatter_apply_sharded(
        &mut self,
        coalesced: &CoalescedGradients,
        optimizer: &mut ShardedOptimizer,
        exec: Exec<'_>,
    ) -> Result<(), EmbeddingError> {
        if optimizer.map() != &self.map {
            return Err(EmbeddingError::InvalidIndex(
                "sharded scatter requires the optimizer and table to share one shard map".into(),
            ));
        }
        if coalesced.grads().cols() != self.dim {
            return Err(EmbeddingError::DimMismatch {
                expected: self.dim,
                found: coalesced.grads().cols(),
            });
        }
        let rows = coalesced.rows();
        let grads = coalesced.grads();
        if let Some(&last) = rows.last() {
            if last as usize >= self.map.rows() {
                return Err(EmbeddingError::SrcOutOfBounds {
                    src: last,
                    rows: self.map.rows(),
                });
            }
        }
        let (map, opts) = optimizer.parts_mut();
        match exec.pool() {
            Some(pool) if exec.threads() > 1 && self.shards.len() > 1 => pool.scope(|scope| {
                let mut rest = rows;
                let mut grad_lo = 0usize;
                for ((s, shard), opt) in self.shards.iter_mut().enumerate().zip(opts.iter_mut()) {
                    let end = map.shard_end(s);
                    let cut = rest.partition_point(|&r| (r as usize) < end);
                    let (shard_rows, tail) = rest.split_at(cut);
                    rest = tail;
                    let lo = grad_lo;
                    grad_lo += cut;
                    if shard_rows.is_empty() {
                        continue;
                    }
                    let base = map.shard_base(s) as u32;
                    scope.spawn(move || {
                        for (k, &row) in shard_rows.iter().enumerate() {
                            let local = row - base;
                            opt.update_row(local, shard.row_mut(local as usize), grads.row(lo + k));
                        }
                    });
                }
            }),
            _ => {
                for (i, &row) in rows.iter().enumerate() {
                    let (s, local) = map.locate(row)?;
                    opts[s].update_row(local, self.shards[s].row_mut(local as usize), grads.row(i));
                }
            }
        }
        Ok(())
    }

    /// Reassembles the full table (verification helper).
    pub fn to_table(&self) -> EmbeddingTable {
        let mut data = Vec::with_capacity(self.rows() * self.dim);
        for shard in &self.shards {
            data.extend_from_slice(shard.as_slice());
        }
        EmbeddingTable::from_vec(self.rows(), self.dim, data)
            .expect("shards concatenate to the original shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::gradient_expand_coalesce;
    use crate::gather::gather_reduce;
    use crate::optim::{Adam, Sgd, SplittableOptimizer};
    use crate::scatter::{scatter_apply, scatter_apply_dense};
    use tcast_pool::Pool;
    use tcast_tensor::SplitMix64;

    fn table() -> EmbeddingTable {
        EmbeddingTable::seeded(100, 8, 7)
    }

    fn index() -> IndexArray {
        let mut rng = SplitMix64::new(5);
        let samples: Vec<Vec<u32>> = (0..16)
            .map(|_| (0..4).map(|_| rng.next_below(100) as u32).collect())
            .collect();
        IndexArray::from_samples(&samples).unwrap()
    }

    #[test]
    fn sharding_roundtrips() {
        let t = table();
        for shards in [1, 2, 3, 7] {
            let sharded = ShardedTable::from_table(&t, shards);
            assert_eq!(sharded.rows(), 100);
            assert_eq!(sharded.to_table().max_abs_diff(&t).unwrap(), 0.0);
        }
    }

    #[test]
    fn locate_routes_rows_correctly() {
        let sharded = ShardedTable::from_table(&table(), 3);
        // 100 rows over 3 shards: 34/34/32.
        assert_eq!(sharded.locate(0).unwrap(), (0, 0));
        assert_eq!(sharded.locate(33).unwrap(), (0, 33));
        assert_eq!(sharded.locate(34).unwrap(), (1, 0));
        assert_eq!(sharded.locate(99).unwrap(), (2, 31));
        assert!(sharded.locate(100).is_err());
    }

    #[test]
    fn locate_boundary_and_out_of_range_cases() {
        let map = ShardMap::new(100, 3); // spans 34/34/32
        for s in 0..map.num_shards() {
            // First and last row of every shard, including the global
            // last row, land exactly on the shard's edges.
            let base = map.shard_base(s) as u32;
            let last = map.shard_end(s) as u32 - 1;
            assert_eq!(map.locate(base).unwrap(), (s, 0));
            assert_eq!(map.locate(last).unwrap(), (s, last - base));
        }
        // One past the end and far past the end return the typed error.
        for bad in [100u32, 101, u32::MAX] {
            assert_eq!(
                map.locate(bad),
                Err(EmbeddingError::SrcOutOfBounds {
                    src: bad,
                    rows: 100
                })
            );
        }
    }

    #[test]
    fn route_rejects_out_of_range_rows_with_typed_error() {
        let map = ShardMap::new(10, 2);
        let idx = IndexArray::from_samples(&[vec![3, 10]]).unwrap();
        let mut scratch = RouteScratch::default();
        assert_eq!(
            map.route_into(&idx, &mut scratch),
            Err(EmbeddingError::SrcOutOfBounds { src: 10, rows: 10 })
        );
        assert!(scratch.routed().is_empty());
        assert_eq!(
            map.route(&idx).unwrap_err(),
            EmbeddingError::SrcOutOfBounds { src: 10, rows: 10 }
        );
    }

    #[test]
    fn route_into_reuses_scratch_and_matches_route() {
        let map = ShardMap::new(100, 3);
        let mut scratch = RouteScratch::default();
        for seed in 0..4 {
            let mut rng = SplitMix64::new(seed);
            let samples: Vec<Vec<u32>> = (0..8)
                .map(|_| (0..3).map(|_| rng.next_below(100) as u32).collect())
                .collect();
            let idx = IndexArray::from_samples(&samples).unwrap();
            map.route_into(&idx, &mut scratch).unwrap();
            assert_eq!(scratch.routed(), map.route(&idx).unwrap().as_slice());
        }
    }

    #[test]
    fn route_scratch_survives_maps_with_different_shard_counts() {
        let idx = index();
        let mut scratch = RouteScratch::default();
        for shards in [7, 2, 3, 1] {
            let map = ShardMap::new(100, shards);
            map.route_into(&idx, &mut scratch).unwrap();
            assert_eq!(scratch.routed().len(), map.num_shards());
            assert_eq!(scratch.routed(), map.route(&idx).unwrap().as_slice());
        }
    }

    #[test]
    fn sharded_gather_is_bit_identical_to_single_table() {
        let t = table();
        let idx = index();
        let reference = gather_reduce(&t, &idx).unwrap();
        let pool = Pool::new(3);
        for shards in [1, 2, 3, 5, 7] {
            let sharded = ShardedTable::from_table(&t, shards);
            let pooled = sharded.gather_reduce(&idx).unwrap();
            assert_eq!(
                pooled.as_slice(),
                reference.as_slice(),
                "serial shards={shards}"
            );
            let mut out = Matrix::default();
            let mut scratch = ShardedGatherScratch::default();
            sharded
                .gather_reduce_into(&idx, &mut out, &mut scratch, Exec::pooled(&pool))
                .unwrap();
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "pooled shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_scatter_matches_single_table() {
        let t = table();
        let idx = index();
        let grads = Matrix::filled(16, 8, 0.25);
        let coalesced = gradient_expand_coalesce(&grads, &idx).unwrap();

        let mut reference = t.clone();
        scatter_apply(&mut reference, &coalesced, &mut Sgd::new(0.1)).unwrap();

        let mut sharded = ShardedTable::from_table(&t, 4);
        sharded
            .scatter_apply(&coalesced, &mut Sgd::new(0.1))
            .unwrap();
        assert!(sharded.to_table().max_abs_diff(&reference).unwrap() < 1e-6);
    }

    #[test]
    fn sharded_stateful_scatter_is_bit_identical() {
        let t = table();
        let pool = Pool::new(4);
        let mk = || Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8)) as Box<dyn SplittableOptimizer>;
        for shards in [1, 2, 3, 7] {
            for exec_pooled in [false, true] {
                let mut reference = t.clone();
                let mut ref_opt = mk();
                let mut sharded = ShardedTable::from_table(&t, shards);
                let mut opt = ShardedOptimizer::new(sharded.map().clone(), mk);
                // Several steps so per-shard state (moments, step counts)
                // accumulates; any aliasing would diverge bit patterns.
                for step in 0..3 {
                    let mut rng = SplitMix64::new(step);
                    let samples: Vec<Vec<u32>> = (0..8)
                        .map(|_| (0..4).map(|_| rng.next_below(100) as u32).collect())
                        .collect();
                    let idx = IndexArray::from_samples(&samples).unwrap();
                    let upstream = Matrix::filled(8, 8, 0.5 - step as f32 * 0.2);
                    let coalesced = gradient_expand_coalesce(&upstream, &idx).unwrap();
                    scatter_apply_dense(
                        &mut reference,
                        coalesced.rows(),
                        coalesced.grads(),
                        ref_opt.as_mut(),
                    )
                    .unwrap();
                    let exec = if exec_pooled {
                        Exec::pooled(&pool)
                    } else {
                        Exec::Serial
                    };
                    sharded
                        .scatter_apply_sharded(&coalesced, &mut opt, exec)
                        .unwrap();
                }
                assert_eq!(
                    sharded.to_table().as_slice(),
                    reference.as_slice(),
                    "shards={shards} pooled={exec_pooled}"
                );
            }
        }
    }

    #[test]
    fn more_shards_than_rows() {
        let t = EmbeddingTable::seeded(3, 4, 1);
        let sharded = ShardedTable::from_table(&t, 10);
        assert_eq!(sharded.num_shards(), 3); // one row each
        assert_eq!(sharded.to_table().max_abs_diff(&t).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardedTable::from_table(&table(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_spec_panics() {
        ShardSpec::new(0);
    }

    #[test]
    fn default_spec_is_one_shard() {
        assert_eq!(ShardSpec::default().shards(), 1);
        assert_eq!(ShardSpec::new(4).shards(), 4);
    }

    #[test]
    fn zero_row_map_has_one_empty_shard() {
        let map = ShardMap::new(0, 4);
        assert_eq!(map.num_shards(), 1);
        assert_eq!(map.shard_rows(0), 0);
        assert!(map.locate(0).is_err());
    }

    #[test]
    fn route_preserves_lookup_counts() {
        let sharded = ShardedTable::from_table(&table(), 3);
        let idx = index();
        let routed = sharded.route(&idx).unwrap();
        let total: usize = routed.iter().map(IndexArray::len).sum();
        assert_eq!(total, idx.len());
        for r in &routed {
            assert_eq!(r.num_outputs(), idx.num_outputs());
        }
    }
}

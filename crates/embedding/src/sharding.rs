//! Row-range sharding of embedding tables across memory nodes.
//!
//! The paper's motivation (Sections I-II) is that embedding tables reach
//! tens of GB to TBs, forcing them off-accelerator into pooled/host
//! memory — Facebook's Zion and Baidu's AIBox shard them across a memory
//! pool. [`ShardedTable`] models that placement: contiguous row ranges
//! live on different shards, lookups are routed by row id, and the
//! results merge back into one pooled output. All training primitives
//! remain exact (asserted against the single-table kernels).

use crate::coalesce::CoalescedGradients;
use crate::error::EmbeddingError;
use crate::index::IndexArray;
use crate::optim::SparseOptimizer;
use crate::scatter::scatter_apply;
use crate::table::EmbeddingTable;
use tcast_tensor::Matrix;

/// An embedding table split into contiguous row-range shards.
#[derive(Debug, Clone)]
pub struct ShardedTable {
    shards: Vec<EmbeddingTable>,
    /// Exclusive upper row bound of each shard (ascending).
    bounds: Vec<usize>,
    dim: usize,
}

impl ShardedTable {
    /// Splits `table` into `num_shards` near-equal contiguous row ranges.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    pub fn from_table(table: &EmbeddingTable, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let rows = table.rows();
        let per = rows.div_ceil(num_shards).max(1);
        let mut shards = Vec::new();
        let mut bounds = Vec::new();
        let mut lo = 0usize;
        while lo < rows {
            let hi = (lo + per).min(rows);
            let mut data = Vec::with_capacity((hi - lo) * table.dim());
            for r in lo..hi {
                data.extend_from_slice(table.row(r));
            }
            shards.push(
                EmbeddingTable::from_vec(hi - lo, table.dim(), data)
                    .expect("shard data sized by construction"),
            );
            bounds.push(hi);
            lo = hi;
        }
        Self {
            shards,
            bounds,
            dim: table.dim(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total rows across shards.
    pub fn rows(&self) -> usize {
        self.bounds.last().copied().unwrap_or(0)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable access to one shard.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn shard(&self, i: usize) -> &EmbeddingTable {
        &self.shards[i]
    }

    /// Which shard holds global row `row`, plus the local row id.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] for rows past the end.
    pub fn locate(&self, row: u32) -> Result<(usize, u32), EmbeddingError> {
        let r = row as usize;
        if r >= self.rows() {
            return Err(EmbeddingError::SrcOutOfBounds {
                src: row,
                rows: self.rows(),
            });
        }
        let shard = self.bounds.partition_point(|&b| b <= r);
        let base = if shard == 0 {
            0
        } else {
            self.bounds[shard - 1]
        };
        Ok((shard, (r - base) as u32))
    }

    /// Splits a global index array into per-shard local index arrays
    /// (each keeping the full `num_outputs` so partial outputs align).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] on out-of-range rows.
    pub fn route(&self, index: &IndexArray) -> Result<Vec<IndexArray>, EmbeddingError> {
        let mut per_shard: Vec<(Vec<u32>, Vec<u32>)> =
            vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (src, dst) in index.iter() {
            let (shard, local) = self.locate(src)?;
            per_shard[shard].0.push(local);
            per_shard[shard].1.push(dst);
        }
        per_shard
            .into_iter()
            .map(|(src, dst)| IndexArray::from_pairs(src, dst, index.num_outputs()))
            .collect()
    }

    /// Fused gather-reduce across all shards: each shard reduces the
    /// lookups it owns; partial outputs sum into the final pooled matrix
    /// (the cross-node combine a sharded deployment performs).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SrcOutOfBounds`] on out-of-range rows.
    pub fn gather_reduce(&self, index: &IndexArray) -> Result<Matrix, EmbeddingError> {
        let routed = self.route(index)?;
        let mut out = Matrix::zeros(index.num_outputs(), self.dim);
        for (shard, local_index) in self.shards.iter().zip(routed.iter()) {
            if local_index.is_empty() {
                continue;
            }
            let partial = crate::gather::gather_reduce(shard, local_index)?;
            out = out.add(&partial)?;
        }
        Ok(out)
    }

    /// Scatters coalesced gradients: each update routes to the owning
    /// shard and applies through the shared optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError`] on out-of-range rows or dimension
    /// mismatches.
    pub fn scatter_apply(
        &mut self,
        coalesced: &CoalescedGradients,
        optimizer: &mut dyn SparseOptimizer,
    ) -> Result<(), EmbeddingError> {
        // Group updates per shard, preserving coalesced (ascending-row)
        // order so the per-shard rows stay strictly increasing.
        let mut per_shard: Vec<(Vec<u32>, Vec<f32>)> =
            vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (i, &row) in coalesced.rows().iter().enumerate() {
            let (shard, local) = self.locate(row)?;
            per_shard[shard].0.push(local);
            per_shard[shard]
                .1
                .extend_from_slice(coalesced.grads().row(i));
        }
        for (shard, (rows, grads)) in self.shards.iter_mut().zip(per_shard) {
            if rows.is_empty() {
                continue;
            }
            let n = rows.len();
            let grads = Matrix::from_vec(n, self.dim, grads)?;
            let c = CoalescedGradients::new(rows, grads)?;
            scatter_apply(shard, &c, optimizer)?;
        }
        Ok(())
    }

    /// Reassembles the full table (verification helper).
    pub fn to_table(&self) -> EmbeddingTable {
        let mut data = Vec::with_capacity(self.rows() * self.dim);
        for shard in &self.shards {
            data.extend_from_slice(shard.as_slice());
        }
        EmbeddingTable::from_vec(self.rows(), self.dim, data)
            .expect("shards concatenate to the original shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::gradient_expand_coalesce;
    use crate::gather::gather_reduce;
    use crate::optim::Sgd;
    use tcast_tensor::SplitMix64;

    fn table() -> EmbeddingTable {
        EmbeddingTable::seeded(100, 8, 7)
    }

    fn index() -> IndexArray {
        let mut rng = SplitMix64::new(5);
        let samples: Vec<Vec<u32>> = (0..16)
            .map(|_| (0..4).map(|_| rng.next_below(100) as u32).collect())
            .collect();
        IndexArray::from_samples(&samples).unwrap()
    }

    #[test]
    fn sharding_roundtrips() {
        let t = table();
        for shards in [1, 2, 3, 7] {
            let sharded = ShardedTable::from_table(&t, shards);
            assert_eq!(sharded.rows(), 100);
            assert_eq!(sharded.to_table().max_abs_diff(&t).unwrap(), 0.0);
        }
    }

    #[test]
    fn locate_routes_rows_correctly() {
        let sharded = ShardedTable::from_table(&table(), 3);
        // 100 rows over 3 shards: 34/34/32.
        assert_eq!(sharded.locate(0).unwrap(), (0, 0));
        assert_eq!(sharded.locate(33).unwrap(), (0, 33));
        assert_eq!(sharded.locate(34).unwrap(), (1, 0));
        assert_eq!(sharded.locate(99).unwrap(), (2, 31));
        assert!(sharded.locate(100).is_err());
    }

    #[test]
    fn sharded_gather_matches_single_table() {
        let t = table();
        let idx = index();
        let reference = gather_reduce(&t, &idx).unwrap();
        for shards in [1, 2, 5] {
            let sharded = ShardedTable::from_table(&t, shards);
            let pooled = sharded.gather_reduce(&idx).unwrap();
            assert!(
                pooled.max_abs_diff(&reference).unwrap() < 1e-5,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_scatter_matches_single_table() {
        let t = table();
        let idx = index();
        let grads = Matrix::filled(16, 8, 0.25);
        let coalesced = gradient_expand_coalesce(&grads, &idx).unwrap();

        let mut reference = t.clone();
        scatter_apply(&mut reference, &coalesced, &mut Sgd::new(0.1)).unwrap();

        let mut sharded = ShardedTable::from_table(&t, 4);
        sharded
            .scatter_apply(&coalesced, &mut Sgd::new(0.1))
            .unwrap();
        assert!(sharded.to_table().max_abs_diff(&reference).unwrap() < 1e-6);
    }

    #[test]
    fn more_shards_than_rows() {
        let t = EmbeddingTable::seeded(3, 4, 1);
        let sharded = ShardedTable::from_table(&t, 10);
        assert_eq!(sharded.num_shards(), 3); // one row each
        assert_eq!(sharded.to_table().max_abs_diff(&t).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardedTable::from_table(&table(), 0);
    }

    #[test]
    fn route_preserves_lookup_counts() {
        let sharded = ShardedTable::from_table(&table(), 3);
        let idx = index();
        let routed = sharded.route(&idx).unwrap();
        let total: usize = routed.iter().map(IndexArray::len).sum();
        assert_eq!(total, idx.len());
        for r in &routed {
            assert_eq!(r.num_outputs(), idx.num_outputs());
        }
    }
}

//! Analytic memory-traffic model for the embedding-layer primitives
//! (Section III-C of the paper).
//!
//! "To quantify the microarchitecture independent behavior of embedding
//! layer's key primitives, we derive the amount of data the processor
//! loads and stores for each primitive, which can be derived analytically
//! by its algorithmic property." — this module is that derivation.
//!
//! The model is parameterized by the *workload shape*: number of lookups
//! `n`, number of pooled outputs `B` (the mini-batch), number of unique
//! `src` ids `U`, and the embedding dimension `D`. All counts are bytes
//! with `f32` (4 B) elements and `(u32, u32)` (8 B) index pairs.
//!
//! These formulas regenerate Fig. 6 and, combined with effective-bandwidth
//! numbers, the latency model behind Figs. 4/12/13.

use crate::index::IndexArray;

/// Bytes per embedding element (`f32`).
pub const ELEM_BYTES: u64 = 4;
/// Bytes per `(src, dst)` index pair (`u32` each).
pub const PAIR_BYTES: u64 = 8;
/// Bytes per single index (`u32`).
pub const INDEX_BYTES: u64 = 4;

/// The shape of one table's mini-batch workload, the independent variables
/// of the traffic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadShape {
    /// Total lookups `n` (index pairs).
    pub lookups: u64,
    /// Pooled output slots `B` (mini-batch size).
    pub outputs: u64,
    /// Unique `src` ids `U` (size of the coalesced gradient).
    pub unique: u64,
    /// Embedding dimension `D`.
    pub dim: u64,
}

impl WorkloadShape {
    /// Derives the shape of an actual index array.
    pub fn of(index: &IndexArray, dim: usize) -> Self {
        Self {
            lookups: index.len() as u64,
            outputs: index.num_outputs() as u64,
            unique: index.unique_src_count() as u64,
            dim: dim as u64,
        }
    }

    /// Bytes of one embedding row.
    pub fn row_bytes(&self) -> u64 {
        self.dim * ELEM_BYTES
    }
}

/// Read/write byte counts of one primitive invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Bytes loaded from memory.
    pub read_bytes: u64,
    /// Bytes stored to memory.
    pub write_bytes: u64,
}

impl Traffic {
    /// Creates a traffic record.
    pub fn new(read_bytes: u64, write_bytes: u64) -> Self {
        Self {
            read_bytes,
            write_bytes,
        }
    }

    /// Total moved bytes.
    pub fn total(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

impl std::ops::Add for Traffic {
    type Output = Traffic;

    fn add(self, rhs: Traffic) -> Traffic {
        Traffic::new(
            self.read_bytes + rhs.read_bytes,
            self.write_bytes + rhs.write_bytes,
        )
    }
}

impl std::iter::Sum for Traffic {
    fn sum<I: Iterator<Item = Traffic>>(iter: I) -> Traffic {
        iter.fold(Traffic::default(), |a, b| a + b)
    }
}

/// Fused tensor gather-reduce (forward): reads `n` embedding rows plus the
/// index pairs, writes `B` pooled rows. The fusion means no `n x D`
/// intermediate is ever written (Fig. 2a caption).
pub fn gather_reduce(s: &WorkloadShape) -> Traffic {
    Traffic::new(
        s.lookups * s.row_bytes() + s.lookups * PAIR_BYTES,
        s.outputs * s.row_bytes(),
    )
}

/// Unfused gather (ablation): like [`gather_reduce`] but writes all `n`
/// gathered rows.
pub fn gather_unfused(s: &WorkloadShape) -> Traffic {
    Traffic::new(
        s.lookups * s.row_bytes() + s.lookups * PAIR_BYTES,
        s.lookups * s.row_bytes(),
    )
}

/// Standalone reduce over gathered rows (second half of the unfused path).
pub fn reduce_unfused(s: &WorkloadShape) -> Traffic {
    Traffic::new(s.lookups * s.row_bytes(), s.outputs * s.row_bytes())
}

/// Gradient expand (backward step 1): reads the `B` backpropagated rows
/// and the `dst` indices, writes `n` expanded rows.
pub fn gradient_expand(s: &WorkloadShape) -> Traffic {
    Traffic::new(
        s.outputs * s.row_bytes() + s.lookups * INDEX_BYTES,
        s.lookups * s.row_bytes(),
    )
}

/// Gradient-coalesce accumulation (backward step 2, Step B of Algorithm 1
/// only): reads the `n` expanded rows, writes `U` coalesced rows.
///
/// Matches Fig. 6's convention: "the Coalesce bar only accounts for the
/// gradient accumulation step" — sorting traffic is reported separately by
/// [`coalesce_sort`].
pub fn coalesce_accumulate(s: &WorkloadShape) -> Traffic {
    Traffic::new(s.lookups * s.row_bytes(), s.unique * s.row_bytes())
}

/// Index-sorting traffic of Algorithm 1 Step A, modelled as an LSD radix
/// sort over the 8-byte `(src, position)` keys with `passes` read+write
/// sweeps (4 passes covers a 32-bit key with 8-bit digits).
pub fn coalesce_sort(s: &WorkloadShape, passes: u32) -> Traffic {
    let bytes = s.lookups * PAIR_BYTES * passes as u64;
    Traffic::new(bytes, bytes)
}

/// Gradient scatter (backward step 3) with an optimizer whose per-element
/// state traffic is `state_bytes_per_elem` (0 for SGD, 8 for
/// Adagrad/RMSprop/momentum — one f32 accumulator read + write).
///
/// Reads the `U` coalesced gradient rows, the `U` current table rows and
/// the row ids; writes the `U` updated table rows.
pub fn scatter(s: &WorkloadShape, state_bytes_per_elem: u64) -> Traffic {
    let state = s.unique * s.dim * state_bytes_per_elem;
    Traffic::new(
        2 * s.unique * s.row_bytes() + s.unique * INDEX_BYTES + state / 2,
        s.unique * s.row_bytes() + state / 2,
    )
}

/// The casted gradient gather-reduce (Algorithm 3): reads `n` rows of the
/// `B x D` gradient table (plus casted index pairs), writes `U` coalesced
/// rows. One fused pass — the expanded `n x D` intermediate never exists.
pub fn casted_gather_reduce(s: &WorkloadShape) -> Traffic {
    Traffic::new(
        s.lookups * s.row_bytes() + s.lookups * PAIR_BYTES,
        s.unique * s.row_bytes(),
    )
}

/// Index-transformation traffic of the casting step itself (Algorithm 2):
/// sort-by-key over `n` pairs plus the scan and cumulative-sum sweeps over
/// `n` `u32`s. This is *index-only* traffic — independent of `D` — which
/// is why it is cheap and hideable under forward propagation.
pub fn casting(s: &WorkloadShape, sort_passes: u32) -> Traffic {
    let sort = coalesce_sort(s, sort_passes);
    // scan: read n u32, write n u32; cumsum: read n, write n.
    let sweep = 2 * s.lookups * INDEX_BYTES;
    Traffic::new(sort.read_bytes + sweep, sort.write_bytes + sweep)
}

/// Total baseline backward traffic before scatter: expand + coalesce
/// accumulation (the quantity Tensor Casting halves).
pub fn expand_coalesce_total(s: &WorkloadShape) -> Traffic {
    gradient_expand(s) + coalesce_accumulate(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 5/6 setup: pooling factor 10, so `n = 10 B`, with
    /// `U ~ n` for the uniform-random dataset.
    fn fig6_random_shape() -> WorkloadShape {
        WorkloadShape {
            lookups: 10 * 2048,
            outputs: 2048,
            unique: (10.0 * 2048.0 * 0.95) as u64, // near-distinct under uniform
            dim: 64,
        }
    }

    #[test]
    fn shape_from_index_array() {
        let idx = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
        let s = WorkloadShape::of(&idx, 16);
        assert_eq!(s.lookups, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.unique, 4);
        assert_eq!(s.dim, 16);
        assert_eq!(s.row_bytes(), 64);
    }

    #[test]
    fn gather_reduce_reads_dominate_writes_at_high_pooling() {
        let s = fig6_random_shape();
        let t = gather_reduce(&s);
        // n = 10B: read ~10x write.
        let ratio = t.read_bytes as f64 / t.write_bytes as f64;
        assert!(ratio > 9.0 && ratio < 11.5, "ratio {ratio}");
    }

    #[test]
    fn expand_mirrors_gather_reduce() {
        // Expand is the dual: writes what gather-reduce reads (rows), reads
        // what it writes.
        let s = fig6_random_shape();
        let g = gather_reduce(&s);
        let e = gradient_expand(&s);
        assert_eq!(e.write_bytes, s.lookups * s.row_bytes());
        assert_eq!(g.write_bytes, s.outputs * s.row_bytes());
        assert!(e.write_bytes > e.read_bytes);
    }

    #[test]
    fn expand_coalesce_is_about_3x_gather_reduce() {
        // The paper: "the gradient expand-coalesce step in aggregate incurs
        // an around 3x higher memory traffic than embedding gather-reduce".
        let s = fig6_random_shape();
        let ec = expand_coalesce_total(&s).total() as f64;
        let gr = gather_reduce(&s).total() as f64;
        let ratio = ec / gr;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "expand-coalesce / gather-reduce = {ratio}, expected ~3"
        );
    }

    #[test]
    fn casting_halves_backward_traffic() {
        // The headline claim: casted gather-reduce moves ~2x less data than
        // expand + coalesce (exactly 2x when U << n; >=1.5x when U ~ n).
        for unique_frac in [0.05, 0.5, 0.95] {
            let mut s = fig6_random_shape();
            s.unique = (s.lookups as f64 * unique_frac) as u64;
            let baseline = expand_coalesce_total(&s).total() as f64;
            let casted = casted_gather_reduce(&s).total() as f64;
            let ratio = baseline / casted;
            assert!(
                (1.45..=2.3).contains(&ratio),
                "unique_frac={unique_frac}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn fusion_saves_an_intermediate() {
        let s = fig6_random_shape();
        let fused = gather_reduce(&s).total();
        let unfused = (gather_unfused(&s) + reduce_unfused(&s)).total();
        // Unfused writes + re-reads the n x D intermediate.
        assert_eq!(unfused - fused, 2 * s.lookups * s.row_bytes());
    }

    #[test]
    fn scatter_traffic_scales_with_unique_not_lookups() {
        let mut a = fig6_random_shape();
        a.unique = 100;
        let mut b = fig6_random_shape();
        b.unique = 10_000;
        assert!(scatter(&b, 0).total() > scatter(&a, 0).total());
        // Lookup count does not appear in scatter at all.
        let mut c = a;
        c.lookups *= 10;
        assert_eq!(scatter(&a, 0).total(), scatter(&c, 0).total());
    }

    #[test]
    fn stateful_optimizer_increases_scatter_traffic() {
        let s = fig6_random_shape();
        let sgd = scatter(&s, 0).total();
        let adagrad = scatter(&s, 8).total();
        assert_eq!(adagrad - sgd, s.unique * s.dim * 8);
    }

    #[test]
    fn casting_traffic_is_dim_independent() {
        let mut a = fig6_random_shape();
        let mut b = fig6_random_shape();
        a.dim = 32;
        b.dim = 256;
        assert_eq!(casting(&a, 4), casting(&b, 4));
    }

    #[test]
    fn casting_is_much_cheaper_than_coalesce_for_wide_rows() {
        let s = fig6_random_shape();
        // Index-only work vs row-granular work: > 5x lighter at D=64.
        assert!(coalesce_accumulate(&s).total() > 5 * casting(&s, 4).total());
    }

    #[test]
    fn traffic_arithmetic() {
        let a = Traffic::new(10, 20);
        let b = Traffic::new(1, 2);
        assert_eq!((a + b).total(), 33);
        let sum: Traffic = [a, b].into_iter().sum();
        assert_eq!(sum, Traffic::new(11, 22));
    }
}

//! Embedding tables and the *baseline* training primitives of
//! recommendation models, exactly as characterized in Section II-B / III of
//! the Tensor Casting paper:
//!
//! * **tensor gather-reduce** (forward propagation, Fig. 2a) — fused lookup
//!   and reduction of embedding rows, driven by a `(src, dst)`
//!   [`IndexArray`];
//! * **gradient expand** (backward, Fig. 2b step 1) — the dual of reduce;
//! * **gradient coalesce** (backward, Fig. 2b step 2, Algorithm 1) —
//!   argsort the `src` indices, then accumulate gradients that share a
//!   `src`;
//! * **gradient scatter** (backward, Fig. 2b step 3) — apply the coalesced
//!   gradients to the table through a sparse [`optim::SparseOptimizer`]
//!   (SGD / momentum / Adagrad Eq. 2 / RMSprop Eq. 1 / Adam). Coalesced
//!   rows are unique, so the scatter is band-parallelizable: every
//!   optimizer's state is splittable at row boundaries
//!   ([`optim::SplittableOptimizer`]) and [`scatter_apply_parallel`]
//!   updates disjoint table/state bands on the `tcast-pool`,
//!   bit-identically to the serial scatter.
//!
//! The *casted* backward path (Algorithms 2-3) lives in the `tcast-core`
//! crate; this crate deliberately contains only what existing ML frameworks
//! (PyTorch / TensorFlow) do today, so the two can be benchmarked against
//! each other.
//!
//! [`traffic`] implements the paper's analytic memory-traffic model
//! (Section III-C, Fig. 6): every primitive's read/write byte counts as a
//! function of batch size, pooling factor, embedding dimension and the
//! number of unique indices.
//!
//! # Example: one forward/backward step over a single table
//!
//! ```
//! use tcast_embedding::{EmbeddingTable, IndexArray, gather_reduce,
//!                       gradient_expand, gradient_coalesce, scatter_apply,
//!                       optim::Sgd};
//! use tcast_tensor::Matrix;
//!
//! # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
//! let mut table = EmbeddingTable::seeded(100, 8, 42);
//! // Two samples: sample 0 gathers rows {1,2,4}, sample 1 gathers {0,2}.
//! let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]])?;
//! let pooled = gather_reduce(&table, &index)?;      // 2 x 8
//!
//! let upstream = Matrix::filled(2, 8, 0.1);          // dL/d(pooled)
//! let expanded = gradient_expand(&upstream, &index)?; // 5 x 8
//! let coalesced = gradient_coalesce(&expanded, &index)?; // 4 unique rows
//! scatter_apply(&mut table, &coalesced, &mut Sgd::new(0.01))?;
//! # Ok(())
//! # }
//! ```

mod bag;
mod coalesce;
mod error;
mod expand;
mod gather;
mod index;
pub mod optim;
mod parallel;
mod scatter;
mod sharding;
pub mod simd;
mod table;
pub mod traffic;

pub use bag::EmbeddingBagCollection;
pub use coalesce::{
    gradient_coalesce, gradient_coalesce_into, gradient_expand_coalesce, CoalesceScratch,
    CoalescedGradients,
};
pub use error::EmbeddingError;
pub use expand::{gradient_expand, gradient_expand_into};
pub use gather::{gather, gather_reduce, gather_reduce_into, reduce_by_dst};
pub use index::IndexArray;
pub use optim::ShardedOptimizer;
pub use parallel::{
    gather_reduce_parallel, gather_reduce_parallel_in, gradient_coalesce_parallel,
    gradient_coalesce_parallel_in,
};
pub use scatter::{
    scatter_apply, scatter_apply_dense, scatter_apply_parallel, scatter_apply_per_shard,
    scatter_apply_sharded,
};
pub use sharding::{RouteScratch, ShardMap, ShardSpec, ShardedGatherScratch, ShardedTable};
pub use table::EmbeddingTable;

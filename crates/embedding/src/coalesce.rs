//! Gradient coalescing (Fig. 2b step 2): the paper's Algorithm 1,
//! faithfully implemented as the two-step argsort + accumulate procedure
//! used by today's ML frameworks.
//!
//! Gradients whose lookups shared a `src` row must be *accumulated into a
//! single value* before the optimizer update (Section II-B explains why:
//! RMSprop/Adagrad-style optimizers consume one accumulated gradient `G_i`
//! per parameter per iteration).

use crate::error::EmbeddingError;
use crate::expand::gradient_expand;
use crate::index::IndexArray;
use tcast_tensor::Matrix;

/// The output of gradient coalescing: one gradient row per *unique* `src`
/// id, paired with that id, sorted by id ascending.
///
/// This is the sparse `(indices, values)` gradient PyTorch/TensorFlow
/// produce for `EmbeddingBag`-style layers.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalescedGradients {
    rows: Vec<u32>,
    grads: Matrix,
}

impl CoalescedGradients {
    /// Creates coalesced gradients from parts.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] if `rows.len()` differs
    /// from `grads.rows()`, or [`EmbeddingError::InvalidIndex`] if `rows`
    /// is not strictly increasing (which would mean it was not coalesced).
    pub fn new(rows: Vec<u32>, grads: Matrix) -> Result<Self, EmbeddingError> {
        if rows.len() != grads.rows() {
            return Err(EmbeddingError::LengthMismatch {
                expected: rows.len(),
                found: grads.rows(),
            });
        }
        if rows.windows(2).any(|w| w[0] >= w[1]) {
            return Err(EmbeddingError::InvalidIndex(
                "coalesced rows must be strictly increasing".to_string(),
            ));
        }
        Ok(Self { rows, grads })
    }

    /// The unique table-row ids, ascending.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// The accumulated gradient matrix (`rows.len() x dim`).
    pub fn grads(&self) -> &Matrix {
        &self.grads
    }

    /// Number of unique rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no gradients are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Maximum absolute difference against another coalesced set; errors if
    /// the row sets differ. Used by the equivalence tests between this
    /// baseline path and the casted path.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidIndex`] if the row-id sets differ.
    pub fn max_abs_diff(&self, other: &CoalescedGradients) -> Result<f32, EmbeddingError> {
        if self.rows != other.rows {
            return Err(EmbeddingError::InvalidIndex(
                "coalesced row sets differ".to_string(),
            ));
        }
        Ok(self.grads.max_abs_diff(&other.grads)?)
    }
}

/// Algorithm 1 (gradient coalescing): given the *expanded* gradients (one
/// row per lookup, in pair order) and the index array, sort the lookups by
/// `src` and accumulate rows sharing a `src`.
///
/// Step A is the `ArgSort(src)` of the paper (implemented as a stable
/// sort-by-key returning the permutation); Step B is the sequential
/// accumulation over the sorted order.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `expanded.rows()` differs
/// from `index.len()`.
pub fn gradient_coalesce(
    expanded: &Matrix,
    index: &IndexArray,
) -> Result<CoalescedGradients, EmbeddingError> {
    let mut scratch = CoalesceScratch::default();
    gradient_coalesce_into(expanded, index, &mut scratch)?;
    let CoalesceScratch { rows, grads, .. } = scratch;
    CoalescedGradients::new(rows, grads)
}

/// Reusable buffers for [`gradient_coalesce_into`]: the argsort
/// permutation plus the coalesced `(rows, grads)` output. Holding one per
/// table across training steps makes the *baseline* backward's coalesce
/// stage allocation-free in steady state (mirroring the casted path's
/// `CoalescedScratch` in `tcast-core`).
#[derive(Debug, Clone, Default)]
pub struct CoalesceScratch {
    /// Touched (unique, ascending) table rows — matches
    /// [`CoalescedGradients::rows`].
    pub rows: Vec<u32>,
    /// One accumulated gradient row per entry of `rows` — matches
    /// [`CoalescedGradients::grads`].
    pub grads: Matrix,
    /// Packed `(src, position)` sort keys (Step A's argsort scratch).
    keys: Vec<u64>,
}

/// [`gradient_coalesce`] into caller-owned scratch, reusing every buffer
/// whose capacity suffices.
///
/// The argsort runs as an *unstable* sort over packed `(src, position)`
/// keys — positions are distinct, so the order is total and exactly
/// reproduces the stable sort-by-`src` the allocating path uses (std's
/// stable sort allocates its merge buffer; the packed unstable sort does
/// not). Results are bit-identical.
///
/// # Errors
///
/// Returns [`EmbeddingError::LengthMismatch`] if `expanded.rows()` differs
/// from `index.len()`.
pub fn gradient_coalesce_into(
    expanded: &Matrix,
    index: &IndexArray,
    scratch: &mut CoalesceScratch,
) -> Result<(), EmbeddingError> {
    if expanded.rows() != index.len() {
        return Err(EmbeddingError::LengthMismatch {
            expected: index.len(),
            found: expanded.rows(),
        });
    }
    let dim = expanded.cols();

    // Step A: argsort the src array (stable via the packed position).
    let src = index.src();
    scratch.keys.clear();
    scratch.keys.extend(
        src.iter()
            .enumerate()
            .map(|(pos, &s)| ((s as u64) << 32) | pos as u64),
    );
    scratch.keys.sort_unstable();

    // Step B: accumulate coalescable gradients. The unique-src count is
    // read off the sorted keys (unique_src_count() would clone + re-sort,
    // an allocation this hot path cannot afford).
    let unique = if scratch.keys.is_empty() {
        0
    } else {
        1 + scratch
            .keys
            .windows(2)
            .filter(|w| (w[0] >> 32) != (w[1] >> 32))
            .count()
    };
    scratch.rows.clear();
    scratch.grads.zero_into(unique, dim);
    let mut out_i = usize::MAX; // "i <- -1" in the paper's pseudocode
    let kernel = tcast_tensor::simd::dispatch();
    let mut prev: Option<u32> = None;
    for (i, &key) in scratch.keys.iter().enumerate() {
        let curr = (key >> 32) as u32;
        let pos = (key & 0xFFFF_FFFF) as usize;
        if let Some(&next) = scratch.keys.get(i + 1) {
            tcast_tensor::simd::prefetch(expanded.row((next & 0xFFFF_FFFF) as usize));
        }
        if prev != Some(curr) {
            out_i = out_i.wrapping_add(1);
            scratch.rows.push(curr);
            scratch
                .grads
                .row_mut(out_i)
                .copy_from_slice(expanded.row(pos));
        } else {
            let acc = scratch.grads.row_mut(out_i);
            tcast_tensor::simd::add_assign(kernel, acc, expanded.row(pos));
        }
        prev = Some(curr);
    }
    Ok(())
}

/// Baseline two-step backward path: expand then coalesce, returning the
/// coalesced gradients (what Fig. 2b computes before the scatter).
///
/// # Errors
///
/// Propagates errors from [`gradient_expand`] and [`gradient_coalesce`].
pub fn gradient_expand_coalesce(
    grads: &Matrix,
    index: &IndexArray,
) -> Result<CoalescedGradients, EmbeddingError> {
    let expanded = gradient_expand(grads, index)?;
    gradient_coalesce(&expanded, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_index() -> IndexArray {
        IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap()
    }

    #[test]
    fn coalesce_matches_fig2b() {
        // G[0] = [1], G[1] = [2]. Coalesced:
        //   row 0 <- G[1], row 1 <- G[0], row 2 <- G[0]+G[1], row 4 <- G[0].
        let index = fig2_index();
        let grads = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let c = gradient_expand_coalesce(&grads, &index).unwrap();
        assert_eq!(c.rows(), &[0, 1, 2, 4]);
        assert_eq!(c.grads().row(0), &[2.0]);
        assert_eq!(c.grads().row(1), &[1.0]);
        assert_eq!(c.grads().row(2), &[3.0]);
        assert_eq!(c.grads().row(3), &[1.0]);
    }

    #[test]
    fn coalesce_into_reuses_dirty_scratch_bit_identically() {
        let index = fig2_index();
        let grads = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -0.25]]).unwrap();
        let expanded = gradient_expand(&grads, &index).unwrap();
        let fresh = gradient_coalesce(&expanded, &index).unwrap();
        let mut scratch = CoalesceScratch::default();
        // Two passes through the SAME scratch: the second starts dirty.
        for _ in 0..2 {
            gradient_coalesce_into(&expanded, &index, &mut scratch).unwrap();
            assert_eq!(scratch.rows.as_slice(), fresh.rows());
            assert_eq!(scratch.grads.as_slice(), fresh.grads().as_slice());
        }
    }

    #[test]
    fn coalesce_into_unstable_argsort_matches_stable_order_on_ties() {
        // Heavy duplication: every lookup hits one of two rows, so the
        // accumulation order (and its float rounding) is only right if
        // the packed-key sort reproduces the stable order exactly.
        let n = 64;
        let src: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let dst: Vec<u32> = (0..n as u32).collect();
        let index = IndexArray::from_pairs(src, dst, n).unwrap();
        let mut grads = Matrix::zeros(n, 3);
        for (i, v) in grads.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32).sin() * 1e3; // magnitudes that expose reorder
        }
        let expanded = gradient_expand(&grads, &index).unwrap();
        let fresh = gradient_coalesce(&expanded, &index).unwrap();
        let mut scratch = CoalesceScratch::default();
        gradient_coalesce_into(&expanded, &index, &mut scratch).unwrap();
        assert_eq!(scratch.grads.as_slice(), fresh.grads().as_slice());
    }

    #[test]
    fn coalesce_validates_row_count() {
        let index = fig2_index();
        let wrong = Matrix::zeros(4, 1);
        assert!(gradient_coalesce(&wrong, &index).is_err());
    }

    #[test]
    fn all_duplicate_srcs_collapse_to_one_row() {
        let index = IndexArray::from_pairs(vec![3; 6], (0..6).collect(), 6).unwrap();
        let grads = Matrix::from_vec(6, 1, vec![1.0; 6]).unwrap();
        let c = gradient_expand_coalesce(&grads, &index).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.rows(), &[3]);
        assert_eq!(c.grads().row(0), &[6.0]);
    }

    #[test]
    fn all_unique_srcs_pass_through() {
        let index = IndexArray::from_pairs(vec![5, 1, 9], vec![0, 1, 2], 3).unwrap();
        let grads = Matrix::from_rows(&[&[0.1], &[0.2], &[0.3]]).unwrap();
        let c = gradient_expand_coalesce(&grads, &index).unwrap();
        assert_eq!(c.rows(), &[1, 5, 9]);
        // Sorted by row id, carrying the right gradient.
        assert_eq!(c.grads().row(0), &[0.2]);
        assert_eq!(c.grads().row(1), &[0.1]);
        assert_eq!(c.grads().row(2), &[0.3]);
    }

    #[test]
    fn coalesced_gradients_constructor_validates() {
        assert!(CoalescedGradients::new(vec![0, 1], Matrix::zeros(3, 1)).is_err());
        assert!(CoalescedGradients::new(vec![1, 0], Matrix::zeros(2, 1)).is_err());
        assert!(CoalescedGradients::new(vec![0, 0], Matrix::zeros(2, 1)).is_err());
        assert!(CoalescedGradients::new(vec![0, 1], Matrix::zeros(2, 1)).is_ok());
    }

    #[test]
    fn coalesce_sum_preserves_total_gradient_mass() {
        // Coalescing only regroups rows: the column sums are invariant.
        let index = fig2_index();
        let grads = Matrix::from_rows(&[&[1.5, -0.5], &[2.5, 0.25]]).unwrap();
        let expanded = gradient_expand(&grads, &index).unwrap();
        let c = gradient_coalesce(&expanded, &index).unwrap();
        let before = expanded.sum_rows();
        let after = c.grads().sum_rows();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - a).abs() < 1e-5);
        }
    }

    #[test]
    fn max_abs_diff_requires_same_rows() {
        let a = CoalescedGradients::new(vec![0, 2], Matrix::zeros(2, 1)).unwrap();
        let b = CoalescedGradients::new(vec![0, 3], Matrix::zeros(2, 1)).unwrap();
        assert!(a.max_abs_diff(&b).is_err());
        assert_eq!(a.max_abs_diff(&a).unwrap(), 0.0);
    }
}

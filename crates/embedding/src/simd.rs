//! Runtime-dispatched per-row optimizer kernels (x86-64 AVX2 with the
//! scalar loop as the bit-exact oracle).
//!
//! The optimizer scatter is the write half of the embedding data plane:
//! after coalescing, every touched table row gets exactly one
//! `update_row`, which walks the row lane-wise. These kernels vectorize
//! that walk across `dim` while keeping the per-element operation
//! sequence exactly the scalar one, so the AVX2 tier is **bit-identical**
//! for all five [`crate::optim::SplittableOptimizer`]s:
//!
//! * every lane is independent (no reduction, so no reassociation), and
//! * `vmulps`/`vaddps`/`vsubps`/`vdivps`/`vsqrtps` are correctly rounded,
//!   matching their scalar counterparts per IEEE-754 — including for the
//!   `sqrt`/`div` in Adagrad/RMSprop/Adam.
//!
//! [`KernelDispatch::Fma`] deliberately runs these row kernels on the
//! non-contracted AVX2 path: FMA contraction is reserved for the GEMM /
//! dot kernels in [`tcast_tensor::simd`], so the optimizer state (and
//! with it every bit-identity invariant over training trajectories)
//! never depends on the tier beyond scalar-vs-SIMD, which are equal.
//!
//! Scalar bias-correction work (Adam's `powi(t)`) stays per-row scalar in
//! `optim.rs`; only the lane-parallel part lives here.

pub use tcast_tensor::simd::{dispatch, force, KernelDispatch};

// ---------------------------------------------------------------------------
// Scalar row kernels: the oracles. Exact transcriptions of the optimizer
// update loops they replaced.
//
// `#[inline(never)]` is load-bearing for the bit-identity invariant: the
// AVX2 kernels call these same functions for their sub-8-lane tails, and
// LLVM's NaN-payload choice for a float expression is unspecified *per
// compilation* — two inlined copies of identical source can legally
// disagree on which NaN `p - step` returns when `sqrt` of a negative
// accumulator mints a fresh one. One compiled instance shared by the
// scalar tier and every SIMD tail makes that divergence impossible (the
// call is per row, amortized over the whole `dim` loop).
// ---------------------------------------------------------------------------

#[inline(never)]
fn sgd_scalar(lr: f32, param: &mut [f32], grad: &[f32]) {
    for (p, &g) in param.iter_mut().zip(grad.iter()) {
        *p -= lr * g;
    }
}

#[inline(never)]
fn momentum_scalar(lr: f32, mu: f32, v: &mut [f32], param: &mut [f32], grad: &[f32]) {
    for ((p, &g), vi) in param.iter_mut().zip(grad.iter()).zip(v.iter_mut()) {
        *vi = mu * *vi + g;
        *p -= lr * *vi;
    }
}

#[inline(never)]
fn adagrad_scalar(lr: f32, eps: f32, a: &mut [f32], param: &mut [f32], grad: &[f32]) {
    for ((p, &g), ai) in param.iter_mut().zip(grad.iter()).zip(a.iter_mut()) {
        *ai += g * g;
        *p -= lr * g / (eps + *ai).sqrt();
    }
}

#[inline(never)]
fn rmsprop_scalar(lr: f32, gamma: f32, eps: f32, a: &mut [f32], param: &mut [f32], grad: &[f32]) {
    for ((p, &g), ai) in param.iter_mut().zip(grad.iter()).zip(a.iter_mut()) {
        *ai = gamma * *ai + (1.0 - gamma) * g * g;
        *p -= lr * g / (eps + *ai).sqrt();
    }
}

/// Per-row Adam hyperparameters plus the (scalar, per-row) bias
/// corrections `bc1 = 1 - beta1^t`, `bc2 = 1 - beta2^t`.
#[derive(Debug, Clone, Copy)]
pub struct AdamRow {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabilizer.
    pub eps: f32,
    /// `1 - beta1^t` for this row's step count.
    pub bc1: f32,
    /// `1 - beta2^t` for this row's step count.
    pub bc2: f32,
}

#[inline(never)]
fn adam_scalar(h: AdamRow, m: &mut [f32], v: &mut [f32], param: &mut [f32], grad: &[f32]) {
    for (((p, &g), mi), vi) in param
        .iter_mut()
        .zip(grad.iter())
        .zip(m.iter_mut())
        .zip(v.iter_mut())
    {
        *mi = h.beta1 * *mi + (1.0 - h.beta1) * g;
        *vi = h.beta2 * *vi + (1.0 - h.beta2) * g * g;
        let mhat = *mi / h.bc1;
        let vhat = *vi / h.bc2;
        *p -= h.lr * mhat / (vhat.sqrt() + h.eps);
    }
}

// ---------------------------------------------------------------------------
// AVX2 row kernels: lane-wise transcriptions of the scalar loops above,
// operation for operation, in the same order. Sub-8-lane tails call the
// scalar oracles (the single `#[inline(never)]` instances), never an
// open-coded copy of them.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::AdamRow;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub fn sgd(lr: f32, param: &mut [f32], grad: &[f32]) {
        let n = param.len().min(grad.len());
        let vlr = _mm256_set1_ps(lr);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds the 8-lane loads and store.
            unsafe {
                let p = _mm256_loadu_ps(param.as_ptr().add(j));
                let g = _mm256_loadu_ps(grad.as_ptr().add(j));
                _mm256_storeu_ps(
                    param.as_mut_ptr().add(j),
                    _mm256_sub_ps(p, _mm256_mul_ps(vlr, g)),
                );
            }
            j += 8;
        }
        super::sgd_scalar(lr, &mut param[j..n], &grad[j..n]);
    }

    #[target_feature(enable = "avx2")]
    pub fn momentum(lr: f32, mu: f32, v: &mut [f32], param: &mut [f32], grad: &[f32]) {
        let n = param.len().min(grad.len()).min(v.len());
        let vlr = _mm256_set1_ps(lr);
        let vmu = _mm256_set1_ps(mu);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds the 8-lane loads and stores.
            unsafe {
                let vv = _mm256_loadu_ps(v.as_ptr().add(j));
                let g = _mm256_loadu_ps(grad.as_ptr().add(j));
                let p = _mm256_loadu_ps(param.as_ptr().add(j));
                let vnew = _mm256_add_ps(_mm256_mul_ps(vmu, vv), g);
                _mm256_storeu_ps(v.as_mut_ptr().add(j), vnew);
                _mm256_storeu_ps(
                    param.as_mut_ptr().add(j),
                    _mm256_sub_ps(p, _mm256_mul_ps(vlr, vnew)),
                );
            }
            j += 8;
        }
        super::momentum_scalar(lr, mu, &mut v[j..n], &mut param[j..n], &grad[j..n]);
    }

    #[target_feature(enable = "avx2")]
    pub fn adagrad(lr: f32, eps: f32, a: &mut [f32], param: &mut [f32], grad: &[f32]) {
        let n = param.len().min(grad.len()).min(a.len());
        let vlr = _mm256_set1_ps(lr);
        let veps = _mm256_set1_ps(eps);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds the 8-lane loads and stores.
            unsafe {
                let av = _mm256_loadu_ps(a.as_ptr().add(j));
                let g = _mm256_loadu_ps(grad.as_ptr().add(j));
                let p = _mm256_loadu_ps(param.as_ptr().add(j));
                let anew = _mm256_add_ps(av, _mm256_mul_ps(g, g));
                _mm256_storeu_ps(a.as_mut_ptr().add(j), anew);
                let denom = _mm256_sqrt_ps(_mm256_add_ps(veps, anew));
                let step = _mm256_div_ps(_mm256_mul_ps(vlr, g), denom);
                _mm256_storeu_ps(param.as_mut_ptr().add(j), _mm256_sub_ps(p, step));
            }
            j += 8;
        }
        super::adagrad_scalar(lr, eps, &mut a[j..n], &mut param[j..n], &grad[j..n]);
    }

    #[target_feature(enable = "avx2")]
    pub fn rmsprop(lr: f32, gamma: f32, eps: f32, a: &mut [f32], param: &mut [f32], grad: &[f32]) {
        let n = param.len().min(grad.len()).min(a.len());
        let vlr = _mm256_set1_ps(lr);
        let vgamma = _mm256_set1_ps(gamma);
        let vomg = _mm256_set1_ps(1.0 - gamma);
        let veps = _mm256_set1_ps(eps);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds the 8-lane loads and stores.
            unsafe {
                let av = _mm256_loadu_ps(a.as_ptr().add(j));
                let g = _mm256_loadu_ps(grad.as_ptr().add(j));
                let p = _mm256_loadu_ps(param.as_ptr().add(j));
                // gamma*a + ((1-gamma)*g)*g, matching the scalar
                // left-to-right product order.
                let anew = _mm256_add_ps(
                    _mm256_mul_ps(vgamma, av),
                    _mm256_mul_ps(_mm256_mul_ps(vomg, g), g),
                );
                _mm256_storeu_ps(a.as_mut_ptr().add(j), anew);
                let denom = _mm256_sqrt_ps(_mm256_add_ps(veps, anew));
                let step = _mm256_div_ps(_mm256_mul_ps(vlr, g), denom);
                _mm256_storeu_ps(param.as_mut_ptr().add(j), _mm256_sub_ps(p, step));
            }
            j += 8;
        }
        super::rmsprop_scalar(lr, gamma, eps, &mut a[j..n], &mut param[j..n], &grad[j..n]);
    }

    #[target_feature(enable = "avx2")]
    pub fn adam(h: AdamRow, m: &mut [f32], v: &mut [f32], param: &mut [f32], grad: &[f32]) {
        let n = param.len().min(grad.len()).min(m.len()).min(v.len());
        let vb1 = _mm256_set1_ps(h.beta1);
        let vomb1 = _mm256_set1_ps(1.0 - h.beta1);
        let vb2 = _mm256_set1_ps(h.beta2);
        let vomb2 = _mm256_set1_ps(1.0 - h.beta2);
        let vlr = _mm256_set1_ps(h.lr);
        let veps = _mm256_set1_ps(h.eps);
        let vbc1 = _mm256_set1_ps(h.bc1);
        let vbc2 = _mm256_set1_ps(h.bc2);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds the 8-lane loads and stores.
            unsafe {
                let mv = _mm256_loadu_ps(m.as_ptr().add(j));
                let vv = _mm256_loadu_ps(v.as_ptr().add(j));
                let g = _mm256_loadu_ps(grad.as_ptr().add(j));
                let p = _mm256_loadu_ps(param.as_ptr().add(j));
                let mnew = _mm256_add_ps(_mm256_mul_ps(vb1, mv), _mm256_mul_ps(vomb1, g));
                let vnew = _mm256_add_ps(
                    _mm256_mul_ps(vb2, vv),
                    _mm256_mul_ps(_mm256_mul_ps(vomb2, g), g),
                );
                _mm256_storeu_ps(m.as_mut_ptr().add(j), mnew);
                _mm256_storeu_ps(v.as_mut_ptr().add(j), vnew);
                let mhat = _mm256_div_ps(mnew, vbc1);
                let vhat = _mm256_div_ps(vnew, vbc2);
                let denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
                let step = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
                _mm256_storeu_ps(param.as_mut_ptr().add(j), _mm256_sub_ps(p, step));
            }
            j += 8;
        }
        super::adam_scalar(h, &mut m[j..n], &mut v[j..n], &mut param[j..n], &grad[j..n]);
    }
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn avx2_ok() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

// ---------------------------------------------------------------------------
// Dispatching row kernels. `Fma` runs the AVX2 path (see module docs).
// ---------------------------------------------------------------------------

/// One SGD row update: `param -= lr * grad`.
#[inline]
pub fn sgd_row(d: KernelDispatch, lr: f32, param: &mut [f32], grad: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if d != KernelDispatch::Scalar && avx2_ok() {
        // SAFETY: AVX2 support verified on the line above.
        unsafe { x86::sgd(lr, param, grad) };
        return;
    }
    let _ = d;
    sgd_scalar(lr, param, grad);
}

/// One momentum row update: `v = mu*v + g; param -= lr*v`.
#[inline]
pub fn momentum_row(
    d: KernelDispatch,
    lr: f32,
    mu: f32,
    v: &mut [f32],
    param: &mut [f32],
    grad: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    if d != KernelDispatch::Scalar && avx2_ok() {
        // SAFETY: AVX2 support verified on the line above.
        unsafe { x86::momentum(lr, mu, v, param, grad) };
        return;
    }
    let _ = d;
    momentum_scalar(lr, mu, v, param, grad);
}

/// One Adagrad row update: `a += g^2; param -= lr*g / sqrt(eps + a)`.
#[inline]
pub fn adagrad_row(
    d: KernelDispatch,
    lr: f32,
    eps: f32,
    a: &mut [f32],
    param: &mut [f32],
    grad: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    if d != KernelDispatch::Scalar && avx2_ok() {
        // SAFETY: AVX2 support verified on the line above.
        unsafe { x86::adagrad(lr, eps, a, param, grad) };
        return;
    }
    let _ = d;
    adagrad_scalar(lr, eps, a, param, grad);
}

/// One RMSprop row update (the paper's Eq. 1).
#[inline]
pub fn rmsprop_row(
    d: KernelDispatch,
    lr: f32,
    gamma: f32,
    eps: f32,
    a: &mut [f32],
    param: &mut [f32],
    grad: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    if d != KernelDispatch::Scalar && avx2_ok() {
        // SAFETY: AVX2 support verified on the line above.
        unsafe { x86::rmsprop(lr, gamma, eps, a, param, grad) };
        return;
    }
    let _ = d;
    rmsprop_scalar(lr, gamma, eps, a, param, grad);
}

/// One Adam row update; the caller computes the per-row bias corrections
/// (`bc1`/`bc2`, a scalar `powi` per row) and passes them in [`AdamRow`].
#[inline]
pub fn adam_row(
    d: KernelDispatch,
    h: AdamRow,
    m: &mut [f32],
    v: &mut [f32],
    param: &mut [f32],
    grad: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    if d != KernelDispatch::Scalar && avx2_ok() {
        // SAFETY: AVX2 support verified on the line above.
        unsafe { x86::adam(h, m, v, param, grad) };
        return;
    }
    let _ = d;
    adam_scalar(h, m, v, param, grad);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn grads(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.83).sin() * 0.3).collect()
    }

    #[test]
    fn all_row_kernels_bit_identical_across_tiers() {
        for n in [1, 4, 8, 9, 16, 33, 64, 67] {
            let g = grads(n);
            let p0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.41).cos()).collect();
            let s0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).abs()).collect();
            for d in KernelDispatch::available() {
                // SGD
                let mut p_ref = p0.clone();
                sgd_row(KernelDispatch::Scalar, 0.05, &mut p_ref, &g);
                let mut p = p0.clone();
                sgd_row(d, 0.05, &mut p, &g);
                assert_eq!(bits(&p_ref), bits(&p), "sgd n={n} d={}", d.name());

                // Momentum
                let (mut pr, mut vr) = (p0.clone(), s0.clone());
                momentum_row(KernelDispatch::Scalar, 0.05, 0.9, &mut vr, &mut pr, &g);
                let (mut p, mut v) = (p0.clone(), s0.clone());
                momentum_row(d, 0.05, 0.9, &mut v, &mut p, &g);
                assert_eq!(bits(&pr), bits(&p), "momentum n={n} d={}", d.name());
                assert_eq!(bits(&vr), bits(&v), "momentum state n={n} d={}", d.name());

                // Adagrad
                let (mut pr, mut ar) = (p0.clone(), s0.clone());
                adagrad_row(KernelDispatch::Scalar, 0.05, 1e-8, &mut ar, &mut pr, &g);
                let (mut p, mut a) = (p0.clone(), s0.clone());
                adagrad_row(d, 0.05, 1e-8, &mut a, &mut p, &g);
                assert_eq!(bits(&pr), bits(&p), "adagrad n={n} d={}", d.name());
                assert_eq!(bits(&ar), bits(&a), "adagrad state n={n} d={}", d.name());

                // RMSprop
                let (mut pr, mut ar) = (p0.clone(), s0.clone());
                rmsprop_row(
                    KernelDispatch::Scalar,
                    0.05,
                    0.99,
                    1e-8,
                    &mut ar,
                    &mut pr,
                    &g,
                );
                let (mut p, mut a) = (p0.clone(), s0.clone());
                rmsprop_row(d, 0.05, 0.99, 1e-8, &mut a, &mut p, &g);
                assert_eq!(bits(&pr), bits(&p), "rmsprop n={n} d={}", d.name());
                assert_eq!(bits(&ar), bits(&a), "rmsprop state n={n} d={}", d.name());

                // Adam (t = 3)
                let h = AdamRow {
                    lr: 0.001,
                    beta1: 0.9,
                    beta2: 0.999,
                    eps: 1e-8,
                    bc1: 1.0 - 0.9f32.powi(3),
                    bc2: 1.0 - 0.999f32.powi(3),
                };
                let (mut pr, mut mr, mut vr) = (p0.clone(), s0.clone(), s0.clone());
                adam_row(KernelDispatch::Scalar, h, &mut mr, &mut vr, &mut pr, &g);
                let (mut p, mut m, mut v) = (p0.clone(), s0.clone(), s0.clone());
                adam_row(d, h, &mut m, &mut v, &mut p, &g);
                assert_eq!(bits(&pr), bits(&p), "adam n={n} d={}", d.name());
                assert_eq!(bits(&mr), bits(&m), "adam m n={n} d={}", d.name());
                assert_eq!(bits(&vr), bits(&v), "adam v n={n} d={}", d.name());
            }
        }
    }

    #[test]
    fn special_values_propagate_identically() {
        if !KernelDispatch::Avx2.supported() {
            return;
        }
        let g = [
            f32::NAN,
            -0.0,
            1e-42,
            f32::MIN_POSITIVE,
            -3.5,
            0.0,
            2.0,
            -1e-40,
            7.25,
        ];
        let p0 = [-0.0f32, 1.0, f32::NAN, 1e-41, 0.5, -2.0, 0.0, 4.0, -0.125];
        let s0 = [0.0f32; 9];

        let (mut pr, mut ar) = (p0, s0);
        adagrad_row(KernelDispatch::Scalar, 0.1, 1e-8, &mut ar, &mut pr, &g);
        let (mut p, mut a) = (p0, s0);
        adagrad_row(KernelDispatch::Avx2, 0.1, 1e-8, &mut a, &mut p, &g);
        assert_eq!(bits(&pr), bits(&p));
        assert_eq!(bits(&ar), bits(&a));
    }

    /// Regression: a *negative* accumulator at a tail index (element 64
    /// of 65) makes `sqrt(eps + a)` mint a fresh NaN, and `NaN - NaN`'s
    /// payload is an unspecified per-compilation LLVM choice — the
    /// scalar oracle's own tail and an open-coded copy of it inside the
    /// AVX2 kernel used to pick *different* NaNs (0xffc00000 vs
    /// 0x7fc00000). The tails now call the one `#[inline(never)]`
    /// scalar instance, so the tiers cannot diverge; this pins the
    /// exact inputs that caught it.
    #[test]
    fn fresh_nan_from_negative_state_is_tier_identical() {
        if !KernelDispatch::Avx2.supported() {
            return;
        }
        let n = 65;
        let tail = n - 1;
        let mut p0 = vec![0.25f32; n];
        let mut g = vec![0.5f32; n];
        let mut s0 = vec![0.0f32; n];
        p0[tail] = f32::from_bits(0x7fc00000); // NaN param...
        g[tail] = f32::from_bits(0x3f9b2610); // finite grad...
        s0[tail] = f32::from_bits(0xbfe71036); // negative accumulator
        s0[3] = -2.5; // and one in the vector body too

        for d in KernelDispatch::available() {
            // Adagrad and RMSprop hit sqrt(eps + negative) directly.
            let (mut pr, mut ar) = (p0.clone(), s0.clone());
            adagrad_row(KernelDispatch::Scalar, 0.05, 1e-8, &mut ar, &mut pr, &g);
            let (mut p, mut a) = (p0.clone(), s0.clone());
            adagrad_row(d, 0.05, 1e-8, &mut a, &mut p, &g);
            assert_eq!(bits(&pr), bits(&p), "adagrad param d={}", d.name());
            assert_eq!(bits(&ar), bits(&a), "adagrad state d={}", d.name());

            let (mut pr, mut ar) = (p0.clone(), s0.clone());
            rmsprop_row(
                KernelDispatch::Scalar,
                0.05,
                0.95,
                1e-8,
                &mut ar,
                &mut pr,
                &g,
            );
            let (mut p, mut a) = (p0.clone(), s0.clone());
            rmsprop_row(d, 0.05, 0.95, 1e-8, &mut a, &mut p, &g);
            assert_eq!(bits(&pr), bits(&p), "rmsprop param d={}", d.name());
            assert_eq!(bits(&ar), bits(&a), "rmsprop state d={}", d.name());

            // Adam's sqrt sees the negative second moment.
            let h = AdamRow {
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                bc1: 1.0 - 0.9f32.powi(3),
                bc2: 1.0 - 0.999f32.powi(3),
            };
            let (mut pr, mut mr, mut vr) = (p0.clone(), s0.clone(), s0.clone());
            adam_row(KernelDispatch::Scalar, h, &mut mr, &mut vr, &mut pr, &g);
            let (mut p, mut m, mut v) = (p0.clone(), s0.clone(), s0.clone());
            adam_row(d, h, &mut m, &mut v, &mut p, &g);
            assert_eq!(bits(&pr), bits(&p), "adam param d={}", d.name());
            assert_eq!(bits(&mr), bits(&m), "adam m d={}", d.name());
            assert_eq!(bits(&vr), bits(&v), "adam v d={}", d.name());
        }
    }
}

//! Error type for embedding-layer operations.

use std::error::Error;
use std::fmt;
use tcast_tensor::ShapeError;

/// Error returned by embedding-table primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum EmbeddingError {
    /// A `src` index referenced a row outside the table.
    SrcOutOfBounds {
        /// The offending row id.
        src: u32,
        /// Number of rows in the table.
        rows: usize,
    },
    /// A `dst` slot referenced an output row outside the batch.
    DstOutOfBounds {
        /// The offending output slot.
        dst: u32,
        /// Number of output slots.
        outputs: usize,
    },
    /// The embedding dimension of two operands disagreed.
    DimMismatch {
        /// Expected embedding dimension.
        expected: usize,
        /// Dimension actually found.
        found: usize,
    },
    /// The number of gradient rows did not match the index array.
    LengthMismatch {
        /// Expected row count.
        expected: usize,
        /// Row count actually found.
        found: usize,
    },
    /// An index array was built from inconsistent inputs.
    InvalidIndex(String),
    /// A dense tensor operation failed.
    Shape(ShapeError),
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SrcOutOfBounds { src, rows } => {
                write!(
                    f,
                    "src index {src} out of bounds for table with {rows} rows"
                )
            }
            Self::DstOutOfBounds { dst, outputs } => {
                write!(f, "dst slot {dst} out of bounds for {outputs} outputs")
            }
            Self::DimMismatch { expected, found } => {
                write!(
                    f,
                    "embedding dimension mismatch: expected {expected}, found {found}"
                )
            }
            Self::LengthMismatch { expected, found } => {
                write!(f, "row count mismatch: expected {expected}, found {found}")
            }
            Self::InvalidIndex(msg) => write!(f, "invalid index array: {msg}"),
            Self::Shape(e) => write!(f, "tensor shape error: {e}"),
        }
    }
}

impl Error for EmbeddingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for EmbeddingError {
    fn from(e: ShapeError) -> Self {
        Self::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EmbeddingError::SrcOutOfBounds { src: 9, rows: 4 };
        assert!(e.to_string().contains("src index 9"));
        let e = EmbeddingError::DstOutOfBounds { dst: 3, outputs: 2 };
        assert!(e.to_string().contains("dst slot 3"));
        let e = EmbeddingError::DimMismatch {
            expected: 8,
            found: 4,
        };
        assert!(e.to_string().contains("expected 8"));
    }

    #[test]
    fn shape_error_converts_and_sources() {
        let inner = ShapeError::new("matmul", (1, 2), (3, 4));
        let e: EmbeddingError = inner.clone().into();
        assert_eq!(e, EmbeddingError::Shape(inner));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmbeddingError>();
    }
}
